"""Deterministic synthetic DNA sequences.

All generation is seeded, so every run of the examples, tests and benchmarks
sees the same data — which is what lets EXPERIMENTS.md quote stable numbers.
"""

from __future__ import annotations

import random
from typing import List, Tuple

__all__ = ["SequenceGenerator", "reverse_complement", "gc_content"]

_BASES = "ACGT"
_COMPLEMENT = {"A": "T", "T": "A", "C": "G", "G": "C", "N": "N"}


def reverse_complement(sequence: str) -> str:
    """Return the reverse complement of a DNA sequence."""
    return "".join(_COMPLEMENT.get(base, "N") for base in reversed(sequence.upper()))


def gc_content(sequence: str) -> float:
    """Fraction of G/C bases (0.0 for the empty sequence)."""
    if not sequence:
        return 0.0
    upper = sequence.upper()
    return (upper.count("G") + upper.count("C")) / len(upper)


class SequenceGenerator:
    """Seeded generator of DNA sequences and derived (mutated) homologues."""

    def __init__(self, seed: int = 22):
        self._random = random.Random(seed)

    def random_sequence(self, length: int) -> str:
        """A uniformly random DNA sequence of the given length."""
        return "".join(self._random.choice(_BASES) for _ in range(length))

    def mutate(self, sequence: str, substitution_rate: float = 0.05,
               indel_rate: float = 0.01) -> str:
        """Derive a homologue by point substitutions and occasional indels."""
        result: List[str] = []
        for base in sequence:
            roll = self._random.random()
            if roll < indel_rate / 2:
                continue  # deletion
            if roll < indel_rate:
                result.append(self._random.choice(_BASES))  # insertion before the base
            if self._random.random() < substitution_rate:
                choices = [b for b in _BASES if b != base]
                result.append(self._random.choice(choices))
            else:
                result.append(base)
        return "".join(result)

    def fragment(self, sequence: str, minimum: int = 50, maximum: int = 200) -> str:
        """A random contiguous fragment of ``sequence``."""
        if len(sequence) <= minimum:
            return sequence
        length = self._random.randint(minimum, min(maximum, len(sequence)))
        start = self._random.randint(0, len(sequence) - length)
        return sequence[start:start + length]

    def family(self, length: int, members: int,
               substitution_rate: float = 0.08) -> List[str]:
        """An ancestor plus ``members - 1`` mutated homologues (a gene family)."""
        ancestor = self.random_sequence(length)
        sequences = [ancestor]
        for _ in range(members - 1):
            sequences.append(self.mutate(ancestor, substitution_rate))
        return sequences

    def choice(self, items: List[object]) -> object:
        return self._random.choice(items)

    def randint(self, low: int, high: int) -> int:
        return self._random.randint(low, high)

    def random(self) -> float:
        return self._random.random()

    def sample(self, items: List[object], count: int) -> List[object]:
        return self._random.sample(items, count)
