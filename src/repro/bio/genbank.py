"""A GenBank-shaped Entrez server.

GenBank entries are ASN.1 ``Seq-entry`` values; Entrez exposes them through
pre-computed indexes and neighbour links.  :func:`build_genbank` generates
Seq-entries whose accessions line up with the GDB loci from
:func:`repro.bio.gdb.build_gdb`, plus homologous entries from other organisms
(derived by mutating the human sequences), and computes NA-Links between them
with the Smith–Waterman/k-mer machinery — the same pipeline NCBI ran with
BLAST to precompute its links.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..asn1.entrez import EntrezServer
from ..asn1.typespec import Asn1Schema, parse_asn1_schema
from ..core.values import CList, CSet, Record, Variant
from .gdb import accession_for_locus
from .sequences import SequenceGenerator
from .similarity import similarity_search

__all__ = ["SEQ_ENTRY_SPEC", "build_genbank", "seq_entry_schema"]

# The (abridged) Seq-entry type used by the reproduction, in ASN.1 notation.
SEQ_ENTRY_SPEC = """
Seq-entry ::= SEQUENCE {
    accession VisibleString,
    title VisibleString,
    organism VisibleString,
    chromosome VisibleString,
    seq SEQUENCE {
        id SET OF CHOICE { giim INTEGER, genbank VisibleString, local VisibleString },
        length INTEGER,
        data VisibleString
    },
    keywd SET OF VisibleString
}
"""

_ORGANISMS = ["Mus musculus", "Rattus norvegicus", "Gallus gallus", "Danio rerio",
              "Drosophila melanogaster", "Saccharomyces cerevisiae"]

_GENE_WORDS = ["perforin", "immunoglobulin lambda", "myoglobin", "CYP2D6", "BCR",
               "NF2 tumor suppressor", "catechol-O-methyltransferase", "crystallin",
               "PDGF beta", "SOX10 transcription factor"]


def seq_entry_schema() -> Asn1Schema:
    """Parse and return the Seq-entry schema."""
    return parse_asn1_schema(SEQ_ENTRY_SPEC, name="ncbi-seq")


def build_genbank(locus_ids: List[int], homologues_per_entry: int = 2,
                  sequence_length: int = 300,
                  generator: Optional[SequenceGenerator] = None,
                  compute_links: bool = True,
                  min_link_score: int = 40) -> EntrezServer:
    """Build an Entrez server whose ``na`` division covers the given GDB loci.

    For every locus id a human Seq-entry is generated (accession
    ``accession_for_locus(id)``); for each, ``homologues_per_entry`` entries
    from other organisms are derived by mutating its sequence.  When
    ``compute_links`` is true, NA-Links are precomputed by running the
    similarity search of each human entry against the non-human entries —
    exactly the role BLAST plays for NCBI.
    """
    generator = generator or SequenceGenerator(seed=2202)
    schema = seq_entry_schema()
    entry_type = schema.cpl_type("Seq-entry")
    server = EntrezServer("NCBI")
    division = server.create_division("na", entry_type)

    human_entries: Dict[int, Tuple[str, str]] = {}     # uid -> (accession, sequence)
    other_entries: Dict[int, Tuple[str, str, str]] = {}  # uid -> (accession, organism, sequence)
    next_giim = 5000

    for locus_id in locus_ids:
        accession = accession_for_locus(locus_id)
        gene = generator.choice(_GENE_WORDS)
        sequence = generator.random_sequence(sequence_length)
        next_giim += 1
        value = _seq_entry(accession, f"Human {gene} gene", "Homo sapiens", "22",
                           next_giim, sequence, keywords=[gene, "chromosome 22"])
        # The entry's Entrez UID is its giim identifier, so NA-Links can be
        # keyed directly by the ids the ASN-IDs path extraction returns.
        uid = division.add_entry(value, {
            "accession": [accession],
            "organism": ["Homo sapiens"],
            "chromosome": ["22"],
            "keyword": [gene],
        }, uid=next_giim)
        human_entries[uid] = (accession, sequence)

        for index in range(homologues_per_entry):
            organism = generator.choice(_ORGANISMS)
            derived = generator.mutate(sequence, substitution_rate=0.10, indel_rate=0.02)
            next_giim += 1
            homolog_accession = f"X{locus_id * 10 + index}"
            homolog = _seq_entry(homolog_accession, f"{organism} {gene} homolog", organism,
                                 "", next_giim, derived, keywords=[gene])
            homolog_uid = division.add_entry(homolog, {
                "accession": [homolog_accession],
                "organism": [organism],
                "keyword": [gene],
            }, uid=next_giim)
            other_entries[homolog_uid] = (homolog_accession, organism, derived)

    if compute_links:
        _precompute_links(server, human_entries, other_entries, min_link_score)
    return server


def _seq_entry(accession: str, title: str, organism: str, chromosome: str,
               giim: int, sequence: str, keywords: List[str]) -> Record:
    return Record({
        "accession": accession,
        "title": title,
        "organism": organism,
        "chromosome": chromosome,
        "seq": Record({
            "id": CSet([Variant("giim", giim), Variant("genbank", accession)]),
            "length": len(sequence),
            "data": sequence,
        }),
        "keywd": CSet(keywords),
    })


def _precompute_links(server: EntrezServer, human_entries, other_entries,
                      min_link_score: int) -> None:
    division = server.division("na")
    library = {str(uid): sequence for uid, (_, _, sequence) in other_entries.items()}
    for uid, (accession, sequence) in human_entries.items():
        hits = similarity_search(sequence, library, min_score=min_link_score)
        for hit in hits:
            target_uid = int(hit.subject_id)
            target_accession, organism, _ = other_entries[target_uid]
            division.add_link(uid, target_uid, "na", float(hit.score),
                              organism=organism,
                              title=f"{organism} homolog of {accession}")
