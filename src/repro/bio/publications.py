"""Data of the paper's ``Publication`` type.

The introduction's running example is the GenBank Publication entity::

    Publications =
      {[title: string,
        authors: [|[name: string, initial: string]|],
        journal: <uncontrolled: string,
                  controlled: <medline-jta: string, iso-jta: string,
                               journal-title: string, issn: string>>,
        volume: string, issue: string, year: int, pages: string,
        abstract: string, keywd: {string}]}

:func:`build_publications` generates a set of such records (including the
paper's own perforin example as the first element), used by the quickstart
example, the rewrite-rule benchmarks and many tests.
"""

from __future__ import annotations

from typing import List, Optional

from ..core import types as T
from ..core.values import CList, CSet, Record, Variant
from .sequences import SequenceGenerator

__all__ = ["PUBLICATION_TYPE", "build_publications", "perforin_publication"]

PUBLICATION_TYPE = T.SetType(T.RecordType({
    "title": T.STRING,
    "authors": T.ListType(T.RecordType({"name": T.STRING, "initial": T.STRING})),
    "journal": T.VariantType({
        "uncontrolled": T.STRING,
        "controlled": T.VariantType({
            "medline-jta": T.STRING,
            "iso-jta": T.STRING,
            "journal-title": T.STRING,
            "issn": T.STRING,
        }),
    }),
    "volume": T.STRING,
    "issue": T.STRING,
    "year": T.INT,
    "pages": T.STRING,
    "abstract": T.STRING,
    "keywd": T.SetType(T.STRING),
}))

_SURNAMES = ["Lichtenheld", "Podack", "Buneman", "Davidson", "Hart", "Overton", "Wong",
             "Tanaka", "Mueller", "Garcia", "Okafor", "Ivanova", "Chen", "Dubois"]
_INITIALS = ["MG", "ER", "P", "SB", "K", "C", "L", "T", "A", "J", "R", "N"]
_JOURNALS_MEDLINE = ["J Immunol", "Nucleic Acids Res", "Genomics", "Hum Mol Genet",
                     "Proc Natl Acad Sci U S A", "Cell"]
_JOURNALS_UNCONTROLLED = ["Genome Center Internal Reports", "Chromosome 22 Workshop Notes",
                          "HGP Data Curation Memos"]
_TOPICS = ["perforin", "immunoglobulin lambda locus", "BCR region", "NF2 gene",
           "cosmid contig mapping", "CpG island detection", "exon prediction",
           "YAC library screening", "somatic cell hybrid mapping"]
_KEYWORDS = ["Amino Acid Sequence", "Base Sequence", "Exons", "Genes, Structural",
             "Chromosome 22", "Physical Mapping", "DNA Sequencing", "Gene Expression",
             "Restriction Mapping", "Cosmids"]


def perforin_publication() -> Record:
    """The paper's own example record (the human perforin gene publication)."""
    return Record({
        "title": "Structure of the human perforin gene",
        "authors": CList([
            Record({"name": "Lichtenheld", "initial": "MG"}),
            Record({"name": "Podack", "initial": "ER"}),
        ]),
        "journal": Variant("controlled", Variant("medline-jta", "J Immunol")),
        "volume": "143",
        "issue": "12",
        "year": 1989,
        "pages": "4267-4274",
        "abstract": "We have cloned the human perforin (P1) gene....",
        "keywd": CSet(["Amino Acid Sequence", "Base Sequence", "Exons", "Genes, Structural"]),
    })


def build_publications(count: int = 200,
                       generator: Optional[SequenceGenerator] = None) -> CSet:
    """Generate ``count`` publications of the Publication type (perforin first)."""
    generator = generator or SequenceGenerator(seed=1995)
    records: List[Record] = [perforin_publication()]
    for index in range(1, count):
        year = 1985 + generator.randint(0, 10)
        topic = generator.choice(_TOPICS)
        author_count = generator.randint(1, 4)
        authors = CList([
            Record({"name": generator.choice(_SURNAMES),
                    "initial": generator.choice(_INITIALS)})
            for _ in range(author_count)
        ])
        if generator.random() < 0.75:
            journal = Variant("controlled",
                              Variant("medline-jta", generator.choice(_JOURNALS_MEDLINE)))
        else:
            journal = Variant("uncontrolled", generator.choice(_JOURNALS_UNCONTROLLED))
        keyword_count = generator.randint(2, 5)
        keywords = CSet(generator.sample(list(_KEYWORDS), keyword_count))
        records.append(Record({
            "title": f"Analysis of {topic} ({index})",
            "authors": authors,
            "journal": journal,
            "volume": str(generator.randint(1, 300)),
            "issue": str(generator.randint(1, 12)),
            "year": year,
            "pages": f"{generator.randint(1, 900)}-{generator.randint(901, 1800)}",
            "abstract": f"We report results concerning {topic} relevant to human chromosome 22.",
            "keywd": keywords,
        }))
    return CSet(records)
