"""Synthetic Human-Genome-Project-shaped data and sequence analysis.

The paper's system integrates GDB (a Sybase relational database of loci and
map locations), GenBank (ASN.1 sequence entries behind Entrez) and sequence
analysis packages (BLAST/FASTA).  None of those 1995 data sets are available
here, so this package *generates* data with the same shape:

* :mod:`repro.bio.sequences` — deterministic random DNA with mutation /
  fragment derivation, so homologies actually exist to be found;
* :mod:`repro.bio.similarity` — a Smith–Waterman local aligner with a k-mer
  prefilter, standing in for BLAST both as a data generator (similarity links)
  and as an "application program" driver;
* :mod:`repro.bio.gdb` — a GDB-shaped relational database (locus,
  object_genbank_eref, locus_cyto_location);
* :mod:`repro.bio.genbank` — an Entrez server loaded with Seq-entry values and
  precomputed neighbour links;
* :mod:`repro.bio.publications` — data of the paper's Publication type;
* :mod:`repro.bio.chromosome22` — one call that wires all of the above into the
  "Center for Chromosome 22" scenario used by the examples and benchmarks.
"""

from .sequences import SequenceGenerator
from .similarity import align_local, kmer_prefilter, similarity_search
from .gdb import build_gdb
from .genbank import build_genbank
from .publications import build_publications, PUBLICATION_TYPE
from .chromosome22 import Chromosome22Dataset, build_chromosome22

__all__ = [
    "SequenceGenerator",
    "align_local", "kmer_prefilter", "similarity_search",
    "build_gdb", "build_genbank",
    "build_publications", "PUBLICATION_TYPE",
    "Chromosome22Dataset", "build_chromosome22",
]
