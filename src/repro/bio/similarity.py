"""Sequence similarity: the BLAST/FASTA stand-in.

The paper treats BLAST and FASTA as black boxes reachable through drivers and
as the origin of GenBank's precomputed "links to homologous sequences".  Here
the same roles are filled by:

* :func:`align_local` — Smith–Waterman local alignment (score + aligned span),
* :func:`kmer_prefilter` — a shared-k-mer count used to avoid aligning every
  pair (the heuristic seed step of BLAST-like tools),
* :func:`similarity_search` — query one sequence against a library, returning
  scored hits above a threshold.  The GenBank builder uses it to mint
  NA-Links; the ``blast`` Kleisli driver exposes it as an application program.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple

__all__ = ["AlignmentResult", "align_local", "kmer_prefilter", "similarity_search", "SimilarityHit"]


class AlignmentResult(NamedTuple):
    score: int
    query_start: int
    query_end: int
    subject_start: int
    subject_end: int
    identity: float


class SimilarityHit(NamedTuple):
    subject_id: str
    score: int
    identity: float
    kmer_hits: int


def align_local(query: str, subject: str, match: int = 2, mismatch: int = -1,
                gap: int = -2) -> AlignmentResult:
    """Smith–Waterman local alignment with linear gap penalties.

    Returns the best local score and the matching spans.  Complexity is
    O(len(query) × len(subject)); the k-mer prefilter keeps the number of
    pairs we run it on small.
    """
    rows = len(query) + 1
    cols = len(subject) + 1
    # One flat score matrix; we also track the best cell for traceback bounds.
    previous = [0] * cols
    best_score = 0
    best_cell = (0, 0)
    matrix: List[List[int]] = [previous]
    for i in range(1, rows):
        current = [0] * cols
        query_base = query[i - 1]
        for j in range(1, cols):
            diagonal = previous[j - 1] + (match if query_base == subject[j - 1] else mismatch)
            up = previous[j] + gap
            left = current[j - 1] + gap
            value = max(0, diagonal, up, left)
            current[j] = value
            if value > best_score:
                best_score = value
                best_cell = (i, j)
        matrix.append(current)
        previous = current

    if best_score == 0:
        return AlignmentResult(0, 0, 0, 0, 0, 0.0)

    # Traceback to recover the aligned spans and identity.
    i, j = best_cell
    end_i, end_j = i, j
    matches = 0
    length = 0
    while i > 0 and j > 0 and matrix[i][j] > 0:
        diagonal = matrix[i - 1][j - 1]
        up = matrix[i - 1][j]
        left = matrix[i][j - 1]
        score_here = matrix[i][j]
        pair_score = match if query[i - 1] == subject[j - 1] else mismatch
        if score_here == diagonal + pair_score:
            if query[i - 1] == subject[j - 1]:
                matches += 1
            length += 1
            i -= 1
            j -= 1
        elif score_here == up + gap:
            length += 1
            i -= 1
        else:
            length += 1
            j -= 1
    identity = matches / length if length else 0.0
    return AlignmentResult(best_score, i, end_i, j, end_j, identity)


def _kmers(sequence: str, k: int) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for start in range(0, max(0, len(sequence) - k + 1)):
        kmer = sequence[start:start + k]
        counts[kmer] = counts.get(kmer, 0) + 1
    return counts


def kmer_prefilter(query: str, subject: str, k: int = 8) -> int:
    """Number of k-mers shared between query and subject (the seeding heuristic)."""
    query_kmers = _kmers(query.upper(), k)
    subject_kmers = _kmers(subject.upper(), k)
    return sum(min(count, subject_kmers.get(kmer, 0)) for kmer, count in query_kmers.items())


def similarity_search(query: str, library: Dict[str, str], k: int = 8,
                      min_kmer_hits: int = 3, min_score: int = 30,
                      max_hits: Optional[int] = None) -> List[SimilarityHit]:
    """Search ``query`` against a library of named sequences.

    Subjects sharing fewer than ``min_kmer_hits`` k-mers are skipped without
    alignment; the rest are aligned with Smith–Waterman and reported when the
    score reaches ``min_score``.  Hits are sorted by descending score.
    """
    hits: List[SimilarityHit] = []
    query = query.upper()
    for subject_id, subject in library.items():
        shared = kmer_prefilter(query, subject, k)
        if shared < min_kmer_hits:
            continue
        alignment = align_local(query, subject.upper())
        if alignment.score >= min_score:
            hits.append(SimilarityHit(subject_id, alignment.score, alignment.identity, shared))
    hits.sort(key=lambda hit: (-hit.score, hit.subject_id))
    if max_hits is not None:
        hits = hits[:max_hits]
    return hits
