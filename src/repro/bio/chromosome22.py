"""The "Center for Chromosome 22" scenario.

One call builds every data source the paper's prototype integrates, sized as
requested, so examples, integration tests and benchmarks all start from the
same wiring:

* a GDB-shaped relational database (loci, map locations, GenBank references),
* a GenBank-shaped Entrez server with human chromosome-22 Seq-entries, their
  non-human homologues and precomputed NA-Links,
* an ACE database of clones/contigs referencing the loci (object identity),
* the Publication set from the introduction,
* a FASTA library of the human sequences (for the BLAST-style driver).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..ace.database import AceDatabase
from ..asn1.entrez import EntrezServer
from ..core.values import CSet
from ..formats.fasta import FastaRecord
from ..relational import Database
from .gdb import build_gdb, accession_for_locus
from .genbank import build_genbank
from .publications import build_publications
from .sequences import SequenceGenerator

__all__ = ["Chromosome22Dataset", "build_chromosome22"]


@dataclass
class Chromosome22Dataset:
    """Everything the Center-for-Chromosome-22 examples need, in one object."""

    gdb: Database
    genbank: EntrezServer
    acedb: AceDatabase
    publications: CSet
    fasta_library: List[FastaRecord] = field(default_factory=list)

    def chromosome22_locus_ids(self) -> List[int]:
        """Locus ids of chromosome-22 loci that carry a GenBank reference."""
        rows = self.gdb.sql(
            "select locus.locus_id from locus, object_genbank_eref "
            "where locus.locus_id = object_genbank_eref.object_id "
            "and locus.chromosome = '22'"
        )
        return sorted(row["locus_id"] for row in rows)


def build_chromosome22(locus_count: int = 120, chromosome22_fraction: float = 0.35,
                       homologues_per_entry: int = 2, sequence_length: int = 240,
                       publication_count: int = 150,
                       compute_links: bool = True,
                       seed: int = 22) -> Chromosome22Dataset:
    """Build the full multi-source scenario (deterministic for a given seed)."""
    generator = SequenceGenerator(seed)
    gdb = build_gdb(locus_count, chromosome22_fraction, generator=generator)

    chr22_rows = gdb.sql(
        "select locus.locus_id from locus, object_genbank_eref "
        "where locus.locus_id = object_genbank_eref.object_id "
        "and locus.chromosome = '22'"
    )
    chr22_ids = sorted(row["locus_id"] for row in chr22_rows)
    genbank = build_genbank(chr22_ids, homologues_per_entry=homologues_per_entry,
                            sequence_length=sequence_length, generator=generator,
                            compute_links=compute_links)

    acedb = _build_acedb(gdb, generator)
    publications = build_publications(publication_count, generator=generator)
    fasta_library = _build_fasta_library(genbank)
    return Chromosome22Dataset(gdb, genbank, acedb, publications, fasta_library)


def _build_acedb(gdb: Database, generator: SequenceGenerator) -> AceDatabase:
    """An ACE database of clones and contigs referencing GDB loci by symbol."""
    from ..ace.model import AceObject, AceObjectRef

    acedb = AceDatabase("chr22-ace")
    loci = gdb.sql("select locus_id, locus_symbol, chromosome from locus where chromosome = '22'")
    contig_count = max(1, len(loci) // 8)
    for contig_index in range(contig_count):
        contig = AceObject("Contig", f"ctg22_{contig_index + 1}")
        contig.add("Chromosome", "22")
        contig.add("Length_kb", generator.randint(100, 900))
        acedb.add_object(contig)
    for row in loci:
        locus_obj = AceObject("Locus", row["locus_symbol"])
        locus_obj.add("GDB_id", row["locus_id"])
        locus_obj.add("Genbank_ref", accession_for_locus(row["locus_id"]))
        contig_name = f"ctg22_{generator.randint(1, contig_count)}"
        locus_obj.add("Contig", AceObjectRef("Contig", contig_name))
        acedb.add_object(locus_obj)

        clone = AceObject("Clone", f"cos{row['locus_id']}")
        clone.add("Locus", AceObjectRef("Locus", row["locus_symbol"]))
        clone.add("Library", generator.choice(["LL22NC01", "LL22NC03", "ICRFc108"]))
        acedb.add_object(clone)
    return acedb


def _build_fasta_library(genbank: EntrezServer) -> List[FastaRecord]:
    division = genbank.division("na")
    records: List[FastaRecord] = []
    for uid in sorted(division.entries):
        value = division.fetch(uid)
        accession = value.project("accession")
        title = value.project("title")
        sequence = value.project("seq").project("data")
        records.append(FastaRecord(str(accession), str(title), str(sequence)))
    return records
