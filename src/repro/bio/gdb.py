"""A GDB-shaped relational database.

GDB (the Genome Data Base at Johns Hopkins) is the paper's relational source:
"a central repository of information on physical and genetic maps of all human
chromosomes", accessed through Sybase.  The Loci22 query joins three of its
tables::

    locus(locus_id, locus_symbol, chromosome)
    object_genbank_eref(object_id, genbank_ref, object_class_key)
    locus_cyto_location(locus_cyto_location_id, loc_cyto_chrom_num, loc_cyto_band_start)

:func:`build_gdb` populates those tables (plus indexes and statistics) with
synthetic loci spread across chromosomes, a configurable share of which sit on
chromosome 22 and carry GenBank accession references.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..relational import Database
from .sequences import SequenceGenerator

__all__ = ["build_gdb", "GDB_BANDS"]

# Cytogenetic bands used for chromosome 22 loci (as shown in the paper's Figure 1 form).
GDB_BANDS = [
    "22q11.1", "22q11.2", "22q12.1", "22q12.2", "22q12.3",
    "22q13.1", "22q13.2", "22q13.31", "22q13.32", "22q13.33",
]

_OTHER_CHROMOSOMES = [str(number) for number in range(1, 22)] + ["X", "Y"]


def build_gdb(locus_count: int = 500, chromosome22_fraction: float = 0.3,
              generator: Optional[SequenceGenerator] = None,
              with_indexes: bool = True) -> Database:
    """Build and populate a GDB-shaped database.

    ``locus_count`` loci are generated; roughly ``chromosome22_fraction`` of
    them land on chromosome 22 with a cytogenetic band from :data:`GDB_BANDS`,
    and every chromosome-22 locus gets a GenBank accession reference of the
    form ``M8xxxx`` (matching the accessions :func:`repro.bio.genbank.build_genbank`
    indexes).
    """
    generator = generator or SequenceGenerator(seed=2201)
    database = Database("GDB")

    locus = database.create_table_from_spec(
        "locus",
        {"locus_id": "int", "locus_symbol": "string", "chromosome": "string"},
        primary_key=["locus_id"],
    )
    genbank_ref = database.create_table_from_spec(
        "object_genbank_eref",
        {"object_id": "int", "genbank_ref": "string", "object_class_key": "int"},
    )
    cyto = database.create_table_from_spec(
        "locus_cyto_location",
        {"locus_cyto_location_id": "int", "loc_cyto_chrom_num": "string",
         "loc_cyto_band_start": "string"},
    )

    for locus_id in range(1, locus_count + 1):
        on_22 = generator.random() < chromosome22_fraction
        chromosome = "22" if on_22 else generator.choice(_OTHER_CHROMOSOMES)
        symbol = f"D{chromosome}S{locus_id}"
        locus.insert({"locus_id": locus_id, "locus_symbol": symbol, "chromosome": chromosome})
        band = generator.choice(GDB_BANDS) if on_22 else f"{chromosome}q{generator.randint(11, 25)}"
        cyto.insert({
            "locus_cyto_location_id": locus_id,
            "loc_cyto_chrom_num": chromosome,
            "loc_cyto_band_start": band,
        })
        # object_class_key 1 = "locus has a GenBank sequence entry".
        if on_22 or generator.random() < 0.4:
            genbank_ref.insert({
                "object_id": locus_id,
                "genbank_ref": accession_for_locus(locus_id),
                "object_class_key": 1,
            })

    if with_indexes:
        locus.create_hash_index("locus_id")
        locus.create_hash_index("chromosome")
        genbank_ref.create_hash_index("object_id")
        cyto.create_hash_index("locus_cyto_location_id")
        cyto.create_hash_index("loc_cyto_chrom_num")
    database.analyze()
    return database


def accession_for_locus(locus_id: int) -> str:
    """The GenBank accession number associated with a GDB locus id."""
    return f"M{81000 + locus_id}"
