"""repro — a reproduction of the Kleisli/CPL data transformation system.

*A Data Transformation System for Biological Data Sources*, Buneman, Davidson,
Hart, Overton and Wong, VLDB 1995.

The package is organised as the paper's system is:

* :mod:`repro.core` — CPL (the Collection Programming Language), the NRC monad
  algebra it is compiled to, and the rewrite-rule optimizer.
* :mod:`repro.kleisli` — the extensible query engine: sessions, drivers, token
  streams, the scheduler and the subquery cache.
* :mod:`repro.relational`, :mod:`repro.asn1`, :mod:`repro.ace`,
  :mod:`repro.formats` — the external data-source substrates (a small
  relational engine standing in for Sybase/GDB, an ASN.1 + Entrez model
  standing in for GenBank, ACE, and the flat-file formats).
* :mod:`repro.bio` — synthetic Human-Genome-Project-shaped data generators and
  a small sequence-similarity implementation standing in for BLAST.
* :mod:`repro.net` — simulated remote-source latency and concurrency caps.

Quickstart::

    from repro import Session
    session = Session()
    session.bind("DB", [{"title": "...", "year": 1989, "keywd": {"Exons"}}])
    result = session.run('{ [title = t] | [title = \\\\t, year = 1989, ...] <- DB }')
"""

__version__ = "1.0.0"

from .core import (
    CSet,
    CBag,
    CList,
    Record,
    Variant,
    Ref,
    from_python,
    to_python,
)
from .kleisli.session import Session
from .kleisli.engine import KleisliEngine

__all__ = [
    "Session", "KleisliEngine",
    "CSet", "CBag", "CList", "Record", "Variant", "Ref",
    "from_python", "to_python",
    "__version__",
]
