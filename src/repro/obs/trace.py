"""Hierarchical query tracing: query → plan → stage → driver-request spans.

A :class:`QueryTrace` is one tree of :class:`Span` objects describing a
single engine run.  Spans are opened/closed at the engine's existing choke
points (``driver_executor``, ``EvalScope`` open/close, resilience retries,
…), which is what lets all three lowerings — eager closures, per-element
streams, chunked streams — inherit tracing with zero compiled-code
changes: the compiled artifacts never see a span, they only call the same
context hooks they always called.

Design constraints:

* **Injectable clock.**  Every timestamp comes from the trace's ``clock``
  callable (default ``time.perf_counter``); tests drive a fake clock for
  deterministic durations.

* **Bounded span count.**  A trace holds at most ``max_spans`` real spans.
  Past the bound, :meth:`QueryTrace.begin` hands out a *dropped* span that
  still participates in open/close pairing (so the nesting invariant
  survives) but is never linked into the tree and ignores annotations; the
  ``dropped`` counter says how many were shed.  Each dropped span is a
  fresh object — a shared sentinel would appear at several stack depths at
  once, making identity-based fault unwinding ambiguous — but it lives
  only on the thread's stack, so a pathological million-request query can
  never balloon its trace.

* **Thread-aware nesting.**  The current open span is tracked per thread;
  a span opened on a worker thread (parallel chunk prefetch) parents onto
  that thread's own stack, falling back to the trace root.  Open/close
  pairing is enforced per thread, and :meth:`QueryTrace.open_spans`
  exposes the live count for the property tests' "every opened span is
  closed, even on fault paths" invariant.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Optional

__all__ = ["Span", "QueryTrace", "Tracer", "DEFAULT_MAX_SPANS"]

DEFAULT_MAX_SPANS = 512


class Span:
    """One timed node in a trace tree."""

    __slots__ = ("name", "kind", "started", "ended", "status", "attributes",
                 "children")

    def __init__(self, name: str, kind: str, started: float) -> None:
        self.name = name
        self.kind = kind
        self.started = started
        self.ended: Optional[float] = None
        self.status = "ok"
        self.attributes: Dict[str, object] = {}
        self.children: List["Span"] = []

    @property
    def duration(self) -> Optional[float]:
        if self.ended is None:
            return None
        return self.ended - self.started

    def annotate(self, **attributes: object) -> "Span":
        self.attributes.update(attributes)
        return self

    def as_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "name": self.name,
            "kind": self.kind,
            "started": self.started,
            "ended": self.ended,
            "duration": self.duration,
            "status": self.status,
        }
        if self.attributes:
            out["attributes"] = dict(self.attributes)
        if self.children:
            out["children"] = [child.as_dict() for child in self.children]
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Span({self.name!r}, {self.kind!r}, status={self.status!r})"


class _DroppedSpan(Span):
    """Placeholder returned once ``max_spans`` is reached.

    It pairs with :meth:`QueryTrace.end` like a real span (keeping the
    nesting discipline intact) but is never linked into the tree and
    ignores annotations.  Instances are per-``begin`` — identity is what
    lets a fault path unwind to exactly the right stack depth — and are
    garbage the moment they leave the thread's stack.
    """

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__("<dropped>", "dropped", 0.0)

    def annotate(self, **attributes: object) -> "Span":
        return self


class QueryTrace:
    """One query's span tree, with a bounded span budget and injectable clock."""

    def __init__(self, name: str = "query",
                 clock: Callable[[], float] = time.perf_counter,
                 max_spans: int = DEFAULT_MAX_SPANS,
                 on_finish: Optional[Callable[["QueryTrace"], None]] = None) -> None:
        self.clock = clock
        self.max_spans = max_spans
        self._on_finish = on_finish
        self._lock = threading.Lock()
        self._local = threading.local()
        self.dropped = 0
        self._open = 0
        self._count = 1  # the root
        self.finished = False
        self.root = Span(name, "query", clock())

    # -- per-thread parent stack ------------------------------------------

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def current(self) -> Span:
        stack = self._stack()
        return stack[-1] if stack else self.root

    # -- span lifecycle ----------------------------------------------------

    def begin(self, name: str, kind: str = "internal",
              **attributes: object) -> Span:
        """Open a child of this thread's current span (root if none)."""
        parent = self.current()
        with self._lock:
            if self.finished or self._count >= self.max_spans:
                self.dropped += 1
                span: Span = _DroppedSpan()
            else:
                span = Span(name, kind, self.clock())
                if attributes:
                    span.attributes.update(attributes)
                parent.children.append(span)
                self._count += 1
            self._open += 1
        self._stack().append(span)
        return span

    def end(self, span: Span, status: str = "ok") -> None:
        """Close ``span``; tolerant of fault paths unwinding several levels.

        Ending a span that an earlier unwind already closed (so it is no
        longer on this thread's stack) is a no-op on the open-span ledger —
        double-close must not drive the count negative.
        """
        stack = self._stack()
        popped = 0
        if any(entry is span for entry in stack):
            while stack:
                top = stack.pop()
                popped += 1
                if top is span:
                    break
                # a fault unwound past an inner span: close it as errored
                if top.ended is None:
                    top.ended = self.clock()
                    top.status = "error"
        freshly_closed = span.ended is None
        if freshly_closed:
            span.ended = self.clock()
            span.status = status
        if popped == 0 and freshly_closed:
            # opened on another thread (or in an unusual order): still one
            # open span retired, just not via this thread's stack
            popped = 1
        if popped:
            with self._lock:
                self._open -= popped

    @contextmanager
    def span(self, name: str, kind: str = "internal",
             **attributes: object) -> Iterator[Span]:
        span = self.begin(name, kind, **attributes)
        try:
            yield span
        except BaseException as exc:
            span.annotate(error=type(exc).__name__)
            self.end(span, status="error")
            raise
        else:
            self.end(span)

    def event(self, name: str, kind: str = "event",
              **attributes: object) -> None:
        """A zero-duration annotation (retry, breaker flip, spill, …)."""
        span = self.begin(name, kind, **attributes)
        self.end(span)

    def finish(self, status: str = "ok") -> None:
        """Close the root span (idempotent) and publish to the tracer."""
        with self._lock:
            if self.finished:
                return
            self.finished = True
        if self.root.ended is None:
            self.root.ended = self.clock()
            self.root.status = status
        if self._on_finish is not None:
            self._on_finish(self)

    # -- introspection -----------------------------------------------------

    def open_spans(self) -> int:
        """Spans begun but not yet ended (excludes the root)."""
        with self._lock:
            return self._open

    def span_count(self) -> int:
        """Real spans recorded in the tree, including the root."""
        with self._lock:
            return self._count

    @property
    def duration(self) -> Optional[float]:
        return self.root.duration

    def as_dict(self) -> Dict[str, object]:
        return {
            "trace": self.root.as_dict(),
            "span_count": self.span_count(),
            "dropped_spans": self.dropped,
            "finished": self.finished,
        }


class Tracer:
    """Recorder handing out bounded traces and keeping a ring of recent ones."""

    def __init__(self, clock: Callable[[], float] = time.perf_counter,
                 keep: int = 32, max_spans: int = DEFAULT_MAX_SPANS) -> None:
        self.clock = clock
        self.max_spans = max_spans
        self._lock = threading.Lock()
        self._recent: deque = deque(maxlen=keep)
        self.started = 0
        self.finished = 0
        self.spans_dropped = 0

    def start(self, name: str = "query", **attributes: object) -> QueryTrace:
        trace = QueryTrace(name, clock=self.clock, max_spans=self.max_spans,
                           on_finish=self._record)
        if attributes:
            trace.root.attributes.update(attributes)
        with self._lock:
            self.started += 1
        return trace

    def _record(self, trace: QueryTrace) -> None:
        with self._lock:
            self.finished += 1
            self.spans_dropped += trace.dropped
            self._recent.append(trace.as_dict())

    def recent(self, limit: Optional[int] = None) -> List[Dict[str, object]]:
        with self._lock:
            traces = list(self._recent)
        if limit is not None and limit >= 0:
            traces = traces[-limit:] if limit else []
        return traces

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            return {
                "started": self.started,
                "finished": self.finished,
                "spans_dropped": self.spans_dropped,
                "recent": len(self._recent),
            }
