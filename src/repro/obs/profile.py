"""EXPLAIN ANALYZE: per-operator timings, actual vs. estimated rows, annotations.

A :class:`QueryProfile` is the post-hoc record of one engine run: the
physical plan the planner chose, per-stage wall time and row counts, the
actual result cardinality next to the planner's estimate, and annotations
for everything that deviated from the happy path (retries, recovered
faults, compiled fallbacks, spills, cancellation).

Profiles are *observation only*.  ``engine.stream(..., profile=True)``
collects one by teeing the run's plan probe (chunked lowering) and trace
(driver-request spans, covering the eager and per-element lowerings, whose
compiled artifacts have no chunk boundaries to report) — the values the
query produces are bit-identical to an unprofiled run, which the
acceptance tests pin across all three lowerings.

The :class:`SlowQueryLog` is a bounded ring of completed profiles above a
latency threshold — the operator's first stop for "what was slow last
night" — surfaced through the server's ``stats`` op.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Callable, Dict, List, Optional

__all__ = ["StageCollector", "ProbeTee", "QueryProfile", "SlowQueryLog",
           "aggregate_driver_spans"]


class StageCollector:
    """Plan-probe-shaped sink accumulating per-stage rows/seconds/chunks.

    Quacks like :class:`repro.core.planner.feedback.PlanProbe` (``note_chunk``
    / ``complete``) so the chunked lowering's existing probe calls feed the
    profile with zero compiled-code changes.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._stages: Dict[str, List[float]] = {}
        self.cardinality: Optional[float] = None

    def note_chunk(self, stage: str, rows: int, seconds: float) -> None:
        with self._lock:
            cell = self._stages.get(stage)
            if cell is None:
                cell = [0.0, 0.0, 0]
                self._stages[stage] = cell
            cell[0] += rows
            cell[1] += seconds
            cell[2] += 1

    def complete(self, cardinality: Optional[float] = None) -> None:
        if cardinality is not None:
            with self._lock:
                self.cardinality = cardinality

    def stages(self) -> Dict[str, Dict[str, float]]:
        with self._lock:
            return {
                stage: {"rows": rows, "seconds": seconds, "chunks": chunks}
                for stage, (rows, seconds, chunks) in sorted(self._stages.items())
            }


class ProbeTee:
    """Fan one probe stream out to several sinks (real feedback + profile).

    ``inner`` is the engine's real :class:`PlanProbe` (or ``None`` when the
    run records no feedback); every sink sees the same calls.  This is how
    ``profile=True`` observes the chunked pump without disturbing the
    planner's feedback loop.
    """

    def __init__(self, inner, *sinks) -> None:
        self._inner = inner
        self._sinks = tuple(sinks)

    def note_chunk(self, stage: str, rows: int, seconds: float) -> None:
        if self._inner is not None:
            self._inner.note_chunk(stage, rows, seconds)
        for sink in self._sinks:
            sink.note_chunk(stage, rows, seconds)

    def complete(self, cardinality: Optional[float] = None) -> None:
        if self._inner is not None:
            self._inner.complete(cardinality)
        for sink in self._sinks:
            sink.complete(cardinality)


def aggregate_driver_spans(trace_dict: Dict[str, object]) -> Dict[str, Dict[str, float]]:
    """Fold a trace's driver-request spans into per-driver request/time totals.

    This is what gives the eager and per-element lowerings their per-stage
    timings: their compiled artifacts report no chunks, but every remote
    round trip still flows through ``driver_executor``, which opens one
    ``driver`` span per request.
    """
    totals: Dict[str, Dict[str, float]] = {}

    def walk(node: Dict[str, object]) -> None:
        if node.get("kind") in ("driver", "driver-batch"):
            name = str(node.get("name", ""))
            cell = totals.setdefault(name, {"requests": 0, "seconds": 0.0})
            cell["requests"] += 1
            duration = node.get("duration")
            if isinstance(duration, (int, float)):
                cell["seconds"] += duration
        for child in node.get("children", ()):
            walk(child)

    root = trace_dict.get("trace")
    if isinstance(root, dict):
        walk(root)
    return totals


# Statistics counters worth calling out when non-zero, in render order.
_ANNOTATION_KEYS = (
    "retries", "recovered_faults", "compiled_fallbacks", "stream_fallbacks",
    "scalar_stages", "warnings",
)
_BOOK_KEYS = ("spills", "bytes_spilled", "rows_spilled", "spill_fallbacks",
              "cancellations", "budget_rejections")


class QueryProfile:
    """One completed run's EXPLAIN ANALYZE record."""

    def __init__(self, mode: str,
                 plan: Optional[Dict[str, object]] = None,
                 estimated_rows: Optional[float] = None,
                 actual_rows: Optional[float] = None,
                 elapsed: Optional[float] = None,
                 stages: Optional[Dict[str, Dict[str, float]]] = None,
                 drivers: Optional[Dict[str, Dict[str, float]]] = None,
                 statistics: Optional[Dict[str, object]] = None,
                 books: Optional[Dict[str, int]] = None,
                 trace: Optional[Dict[str, object]] = None,
                 status: str = "ok") -> None:
        self.mode = mode
        self.plan = plan
        self.estimated_rows = estimated_rows
        self.actual_rows = actual_rows
        self.elapsed = elapsed
        self.stages = stages or {}
        self.drivers = drivers or {}
        self.statistics = statistics or {}
        self.books = books or {}
        self.trace = trace
        self.status = status

    # -- annotations -------------------------------------------------------

    def annotations(self) -> List[str]:
        """Non-zero deviations from the happy path, as ``key=value`` strings."""
        notes: List[str] = []
        stats = self.statistics
        for key in _ANNOTATION_KEYS:
            value = stats.get(key)
            if isinstance(value, list):
                value = len(value)
            if value:
                notes.append(f"{key}={value}")
        for key in _BOOK_KEYS:
            value = self.books.get(key)
            if value:
                notes.append(f"{key}={value}")
        return notes

    def cardinality_error(self) -> Optional[float]:
        """Signed relative estimation error, e.g. +0.25 = actual 25% above."""
        if self.estimated_rows is None or self.actual_rows is None:
            return None
        if self.estimated_rows <= 0:
            return None
        return (self.actual_rows - self.estimated_rows) / self.estimated_rows

    # -- rendering ---------------------------------------------------------

    @staticmethod
    def _fmt_seconds(seconds: Optional[float]) -> str:
        if seconds is None:
            return "?"
        if seconds >= 1.0:
            return f"{seconds:.3f}s"
        return f"{seconds * 1e3:.2f}ms"

    def render(self) -> str:
        """The annotated physical-plan tree, one line per operator/stage."""
        elapsed = self._fmt_seconds(self.elapsed)
        lines = [f"EXPLAIN ANALYZE ({self.mode}) — {elapsed}, status={self.status}"]
        body: List[str] = []
        if self.plan:
            knobs = " ".join(f"{key}={value}" for key, value in self.plan.items()
                             if key != "estimated_rows" and value is not None)
            body.append(f"plan: {knobs}")
        actual = "?" if self.actual_rows is None else f"{self.actual_rows:g}"
        estimated = ("?" if self.estimated_rows is None
                     else f"{self.estimated_rows:g}")
        error = self.cardinality_error()
        suffix = "" if error is None else f" (error {error:+.1%})"
        body.append(f"rows: actual={actual} estimated={estimated}{suffix}")
        for stage, cell in sorted(self.stages.items()):
            body.append(
                f"stage {stage}: {cell.get('rows', 0):g} rows / "
                f"{cell.get('chunks', 0):g} chunks in "
                f"{self._fmt_seconds(cell.get('seconds'))}")
        for driver, cell in sorted(self.drivers.items()):
            body.append(
                f"driver {driver}: {cell.get('requests', 0):g} requests in "
                f"{self._fmt_seconds(cell.get('seconds'))}")
        notes = self.annotations()
        body.append("annotations: " + (" ".join(notes) if notes else "none"))
        for i, line in enumerate(body):
            branch = "└─ " if i == len(body) - 1 else "├─ "
            lines.append(branch + line)
        return "\n".join(lines)

    def as_dict(self) -> Dict[str, object]:
        return {
            "mode": self.mode,
            "status": self.status,
            "plan": self.plan,
            "estimated_rows": self.estimated_rows,
            "actual_rows": self.actual_rows,
            "elapsed": self.elapsed,
            "cardinality_error": self.cardinality_error(),
            "stages": self.stages,
            "drivers": self.drivers,
            "statistics": self.statistics,
            "books": self.books,
            "annotations": self.annotations(),
            "trace": self.trace,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (f"QueryProfile({self.mode!r}, rows={self.actual_rows}, "
                f"elapsed={self.elapsed})")


class SlowQueryLog:
    """Bounded ring of completed profiles above a latency threshold."""

    def __init__(self, threshold: float = 0.25, keep: int = 32) -> None:
        self.threshold = threshold
        self._lock = threading.Lock()
        self._ring: deque = deque(maxlen=keep)
        self.considered = 0
        self.logged = 0

    def record(self, profile: QueryProfile) -> bool:
        """Consider one profile; keep it when its latency crosses the bar."""
        with self._lock:
            self.considered += 1
            if profile.elapsed is None or profile.elapsed < self.threshold:
                return False
            self.logged += 1
            self._ring.append(profile)
            return True

    def entries(self, limit: Optional[int] = None) -> List[Dict[str, object]]:
        with self._lock:
            profiles = list(self._ring)
        if limit is not None and limit >= 0:
            profiles = profiles[-limit:] if limit else []
        return [profile.as_dict() for profile in profiles]

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            return {
                "threshold": self.threshold,
                "considered": self.considered,
                "logged": self.logged,
                "kept": len(self._ring),
            }
