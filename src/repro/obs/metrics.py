"""Thread-safe metrics primitives: counters, gauges, exponential histograms.

One registry absorbs the scattered per-subsystem books (engine statistics,
resilience counters, governance books, server stats) behind a single
interface.  The design constraints, in order:

* **Zero-recorder contract.**  Nothing in this module is consulted unless an
  :class:`~repro.obs.Observability` hub has been attached to the engine.
  Every hook site in the engine/server is ``None``-guarded, so an
  unobserved run takes the exact pre-observability code path.

* **`_CompileCache` lock pattern.**  The registry holds ONE lock guarding
  its name→metric map; each metric instance carries its own lock guarding
  its mutable cells.  Readers always snapshot under the lock and return
  plain data, never live references — the same discipline
  ``repro.core.nrc.compile._CompileCache`` uses for its maps and counters.

* **Fixed exponential buckets.**  Histograms use a fixed, strictly
  increasing bound ladder (``start * growth**i``) plus an implicit +Inf
  overflow bucket.  Fixed bounds make merges associative and exact: two
  histograms with identical bounds merge by adding their per-bucket counts,
  so fan-in from worker threads or federated servers never loses counts
  (property-tested in ``tests/properties``).

* **Prometheus-style exposition.**  :meth:`MetricsRegistry.render` emits
  the standard text format (``# HELP``/``# TYPE``, cumulative ``le``
  buckets, ``_sum``/``_count``) so the ``metrics`` wire op can be scraped
  by anything that speaks Prometheus.

The module also hosts :class:`RowWidthEstimator` — the sampled row-width
model that replaces the constant ``NOMINAL_ROW_BYTES`` spill gate.  With
zero samples it returns its default verbatim, so an engine that never
spilled reproduces the historical constant bit-for-bit.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RowWidthEstimator",
    "exponential_buckets",
]


def exponential_buckets(start: float, growth: float, count: int) -> Tuple[float, ...]:
    """A fixed exponential bound ladder: ``start * growth**i`` for ``count`` bounds.

    ``start`` must be positive and ``growth`` strictly greater than 1 so the
    ladder is strictly increasing — the invariant every histogram operation
    (observe via bisect, cumulative rendering, exact merge) relies on.
    """
    if count < 1:
        raise ValueError("bucket count must be >= 1")
    if start <= 0:
        raise ValueError("bucket start must be > 0")
    if growth <= 1.0:
        raise ValueError("bucket growth must be > 1")
    bounds = tuple(start * growth ** i for i in range(count))
    for lo, hi in zip(bounds, bounds[1:]):
        if not lo < hi:  # pragma: no cover - float overflow guard
            raise ValueError("bucket bounds must be strictly increasing")
    return bounds


class Counter:
    """A monotonically increasing count.  ``inc`` is thread-safe."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def snapshot(self) -> Dict[str, object]:
        return {"kind": self.kind, "value": self.value}


class Gauge:
    """A value that can go up and down.  ``set``/``add`` are thread-safe."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, amount: float) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def snapshot(self) -> Dict[str, object]:
        return {"kind": self.kind, "value": self.value}


class Histogram:
    """Fixed-bucket histogram with an implicit +Inf overflow bucket.

    ``counts`` has ``len(bounds) + 1`` cells; an observation lands in the
    first bucket whose upper bound is ``>= value`` (Prometheus ``le``
    semantics), or in the overflow cell when it exceeds every bound.
    """

    kind = "histogram"

    def __init__(self, name: str, bounds: Sequence[float], help: str = "") -> None:
        bounds = tuple(float(b) for b in bounds)
        if not bounds:
            raise ValueError("histogram needs at least one bound")
        for lo, hi in zip(bounds, bounds[1:]):
            if not lo < hi:
                raise ValueError("histogram bounds must be strictly increasing")
        self.name = name
        self.help = help
        self.bounds = bounds
        self._lock = threading.Lock()
        self._counts = [0] * (len(bounds) + 1)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        index = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    def merge(self, other: "Histogram") -> None:
        """Fold ``other``'s counts into this histogram (exact, associative).

        Requires identical bucket bounds — merging differently shaped
        histograms would silently smear counts, so it is an error instead.
        """
        if other.bounds != self.bounds:
            raise ValueError("cannot merge histograms with different bounds")
        other_counts, other_sum, other_count = other._snapshot_cells()
        with self._lock:
            for i, c in enumerate(other_counts):
                self._counts[i] += c
            self._sum += other_sum
            self._count += other_count

    def _snapshot_cells(self) -> Tuple[List[int], float, int]:
        with self._lock:
            return list(self._counts), self._sum, self._count

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def snapshot(self) -> Dict[str, object]:
        counts, total, count = self._snapshot_cells()
        return {
            "kind": self.kind,
            "bounds": list(self.bounds),
            "counts": counts,
            "sum": total,
            "count": count,
        }


class MetricsRegistry:
    """Get-or-create metric store guarded by one lock (`_CompileCache` pattern).

    Metric names are unique across kinds; asking for an existing name with a
    different kind (or different histogram bounds) raises instead of
    silently aliasing two instruments.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, object] = {}

    def _get_or_create(self, name, factory, kind):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if existing.kind != kind:
                    raise ValueError(
                        f"metric {name!r} already registered as {existing.kind}")
                return existing
            metric = factory()
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(name, lambda: Counter(name, help), "counter")

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(name, lambda: Gauge(name, help), "gauge")

    def histogram(self, name: str, bounds: Sequence[float],
                  help: str = "") -> Histogram:
        metric = self._get_or_create(
            name, lambda: Histogram(name, bounds, help), "histogram")
        if metric.bounds != tuple(float(b) for b in bounds):
            raise ValueError(
                f"histogram {name!r} already registered with different bounds")
        return metric

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._metrics)

    def get(self, name: str) -> Optional[object]:
        with self._lock:
            return self._metrics.get(name)

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Plain-data snapshot of every metric, wire- and JSON-safe."""
        with self._lock:
            metrics = list(self._metrics.items())
        return {name: metric.snapshot() for name, metric in sorted(metrics)}

    def render(self) -> str:
        """Prometheus text exposition of every registered metric."""
        with self._lock:
            metrics = sorted(self._metrics.items())
        lines: List[str] = []
        for name, metric in metrics:
            if metric.help:
                lines.append(f"# HELP {name} {metric.help}")
            lines.append(f"# TYPE {name} {metric.kind}")
            if isinstance(metric, Histogram):
                counts, total, count = metric._snapshot_cells()
                cumulative = 0
                for bound, cell in zip(metric.bounds, counts):
                    cumulative += cell
                    lines.append(f'{name}_bucket{{le="{bound:g}"}} {cumulative}')
                cumulative += counts[-1]
                lines.append(f'{name}_bucket{{le="+Inf"}} {cumulative}')
                lines.append(f"{name}_sum {total:g}")
                lines.append(f"{name}_count {count}")
            else:
                lines.append(f"{name} {metric.value:g}")
        return "\n".join(lines) + ("\n" if lines else "")


class RowWidthEstimator:
    """Sampled bytes-per-row model for the governance spill gate.

    Fed from spill bookkeeping (every spilled frame knows both its encoded
    byte length and how many rows it carried), so the estimate reflects the
    *actual* serialized width of this workload's rows.  The differential
    pin: with zero samples :meth:`row_bytes` returns the constructor
    default verbatim — historically ``governance.NOMINAL_ROW_BYTES`` — so
    an engine that never observed a row reproduces the constant-gate
    behaviour bit-for-bit.
    """

    def __init__(self, default: float) -> None:
        self._default = default
        self._lock = threading.Lock()
        self._bytes = 0.0
        self._rows = 0

    def observe(self, nbytes: float, rows: int) -> None:
        if rows <= 0 or nbytes < 0:
            return
        with self._lock:
            self._bytes += nbytes
            self._rows += rows

    def row_bytes(self) -> float:
        with self._lock:
            if self._rows == 0:
                return self._default
            return max(1.0, self._bytes / self._rows)

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            rows, nbytes = self._rows, self._bytes
        return {
            "default": self._default,
            "sampled_rows": rows,
            "sampled_bytes": nbytes,
            "row_bytes": self.row_bytes(),
        }
