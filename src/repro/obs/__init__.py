"""Observability: tracing, metrics, and EXPLAIN ANALYZE for the query engine.

The package is three orthogonal layers plus a hub that bundles them:

* :mod:`repro.obs.trace` — hierarchical query traces (query → plan → stage
  → driver-request spans) with an injectable clock and a bounded per-query
  span budget.
* :mod:`repro.obs.metrics` — a thread-safe registry of counters, gauges,
  and fixed-exponential-bucket histograms with a Prometheus-style text
  renderer.
* :mod:`repro.obs.profile` — EXPLAIN ANALYZE profiles (per-stage wall
  time, actual vs. planner-estimated cardinality, fallback/spill/retry
  annotations) and the slow-query log.

**The zero-recorder contract** (mirrors governance's zero-governance rule):
an engine with no :class:`Observability` hub attached and ``profile=False``
takes the exact pre-observability code paths — every hook site is
``None``-guarded, differential-pinned by the test suite, and the fault-free
overhead of an *attached* hub is CI-gated at ≤5% by
``benchmarks/bench_observability.py``.

All three lowerings (eager closures, per-element streams, chunked streams)
inherit the instrumentation from the same choke points — driver dispatch,
``EvalScope`` open/close, the plan probe, resilience retries and breaker
transitions, governance spills/cancellations, server admission/drain — so
no compiled artifact changes when observability is switched on.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional

from .metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                      RowWidthEstimator, exponential_buckets)
from .profile import ProbeTee, QueryProfile, SlowQueryLog, StageCollector
from .trace import QueryTrace, Span, Tracer

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "RowWidthEstimator",
    "exponential_buckets", "ProbeTee", "QueryProfile", "SlowQueryLog",
    "StageCollector", "QueryTrace", "Span", "Tracer", "Observability",
]

# Preset bucket ladders for the hub's standard instruments.
LATENCY_BUCKETS = exponential_buckets(0.0001, 2.0, 18)    # 100µs .. ~13s
CHUNK_BUCKETS = exponential_buckets(1.0, 2.0, 16)         # 1 .. 32768 rows
QUEUE_WAIT_BUCKETS = exponential_buckets(0.001, 2.0, 14)  # 1ms .. ~8s
SPILL_BUCKETS = exponential_buckets(1024.0, 4.0, 12)      # 1KiB .. ~4GiB


class _ChunkSizeSink:
    """Plan-probe-shaped adapter feeding the chunk-size histogram."""

    def __init__(self, histogram: Histogram) -> None:
        self._histogram = histogram

    def note_chunk(self, stage: str, rows: int, seconds: float) -> None:
        self._histogram.observe(rows)

    def complete(self, cardinality: Optional[float] = None) -> None:
        pass


class Observability:
    """One engine's observability hub: metrics + tracer + slow-query log.

    Attach with ``engine.attach_observability(hub)``.  Every standard
    instrument is pre-registered here so hook sites stay single calls, and
    the whole hub shares one injectable ``clock`` for deterministic tests.
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter,
                 slow_query_threshold: float = 0.25,
                 keep_traces: int = 32, keep_slow_queries: int = 32,
                 max_spans: int = 512) -> None:
        self.clock = clock
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(clock=clock, keep=keep_traces, max_spans=max_spans)
        self.slow_queries = SlowQueryLog(threshold=slow_query_threshold,
                                         keep=keep_slow_queries)
        m = self.metrics
        self.request_latency = m.histogram(
            "repro_driver_request_seconds", LATENCY_BUCKETS,
            "Wall time of one driver request (through resilience)")
        self.chunk_size = m.histogram(
            "repro_chunk_rows", CHUNK_BUCKETS,
            "Rows per chunk observed by the chunked pump")
        self.queue_wait = m.histogram(
            "repro_server_queue_wait_seconds", QUEUE_WAIT_BUCKETS,
            "Time an admitted request waited for a server slot")
        self.spilled_bytes = m.histogram(
            "repro_query_spilled_bytes", SPILL_BUCKETS,
            "Bytes spilled to disk per governed query")
        self.driver_requests = m.counter(
            "repro_driver_requests_total", "Driver requests dispatched")
        self.driver_failures = m.counter(
            "repro_driver_failures_total", "Driver requests that raised")
        self.retries = m.counter(
            "repro_retries_total", "Resilience retry attempts")
        self.breaker_transitions = m.counter(
            "repro_breaker_transitions_total", "Circuit-breaker state changes")
        self.queries = m.counter(
            "repro_queries_total", "Engine runs started under the hub")
        self.cancellations = m.counter(
            "repro_cancellations_total", "Queries ended by cancellation")
        self.budget_rejections = m.counter(
            "repro_budget_rejections_total", "Queries killed by memory budget")
        self.spills = m.counter(
            "repro_spills_total", "Spill events across governed queries")
        self.admissions_immediate = m.counter(
            "repro_server_admissions_immediate_total",
            "Requests admitted without queueing")
        self.admissions_queued = m.counter(
            "repro_server_admissions_queued_total",
            "Requests admitted after waiting in the queue")
        self.admissions_rejected = m.counter(
            "repro_server_admissions_rejected_total",
            "Requests shed by admission control")
        self.drains = m.counter(
            "repro_server_drains_total", "Server drain (graceful stop) events")

    # -- hook helpers (each a single call at the engine/server hook site) --

    def start_trace(self, name: str = "query", **attributes: object) -> QueryTrace:
        self.queries.inc()
        return self.tracer.start(name, **attributes)

    def observe_request(self, driver: str, seconds: float,
                        failed: bool = False) -> None:
        self.driver_requests.inc()
        if failed:
            self.driver_failures.inc()
        self.request_latency.observe(seconds)

    def chunk_sink(self) -> _ChunkSizeSink:
        return _ChunkSizeSink(self.chunk_size)

    def note_retry(self, driver: str, attempt: int) -> None:
        self.retries.inc()

    def note_breaker(self, driver: str, state: str) -> None:
        self.breaker_transitions.inc()

    def note_governance(self, key: str, amount: int = 1) -> None:
        counter = {"cancellations": self.cancellations,
                   "budget_rejections": self.budget_rejections}.get(key)
        if counter is not None:
            counter.inc(amount)

    def record_spill_books(self, books: Dict[str, int]) -> None:
        spills = books.get("spills", 0)
        if spills:
            self.spills.inc(spills)
        nbytes = books.get("bytes_spilled", 0)
        if nbytes:
            self.spilled_bytes.observe(nbytes)

    def observe_admission(self, outcome: str,
                          queue_wait: Optional[float] = None) -> None:
        counter = {"immediate": self.admissions_immediate,
                   "queued": self.admissions_queued,
                   "rejected": self.admissions_rejected}.get(outcome)
        if counter is not None:
            counter.inc()
        if queue_wait is not None:
            self.queue_wait.observe(queue_wait)

    def note_drain(self) -> None:
        self.drains.inc()

    def snapshot(self) -> Dict[str, object]:
        """Compact wire-safe summary for the server's ``stats`` section."""
        return {
            "attached": True,
            "tracer": self.tracer.snapshot(),
            "slow_queries": self.slow_queries.snapshot(),
            "metric_count": len(self.metrics.names()),
        }
