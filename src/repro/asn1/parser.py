"""Type-directed parser for the ASN.1 text form of values.

Because ``{ ... }`` is used both for constructed types (SEQUENCE) and for
collections (SET OF / SEQUENCE OF), parsing is driven by the expected type,
exactly as in real ASN.1 value notation.

Two entry points:

* :func:`parse_value` — parse the whole value.
* :func:`parse_value_with_path` — parse only what a
  :class:`~repro.asn1.path.PathExpression` needs, *skipping* the text of every
  field that is not on the path.  This is the paper's "pruning at the level of
  the ASN.1 driver ... to minimize the cost of parsing and copying ASN.1
  values", and it is what benchmark E5 measures against retrieve-then-prune.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from ..core import types as T
from ..core.errors import ASN1ParseError, PathApplicationError
from ..core.values import CBag, CList, CSet, Record, UNIT_VALUE, Variant, make_collection
from .path import PathExpression, PathStep, ProjectStep, VariantStep

__all__ = ["parse_value", "parse_value_with_path"]


def parse_value(text: str, ty: T.Type) -> object:
    """Parse ASN.1 text of type ``ty`` into a CPL value."""
    cursor = _Cursor(text)
    value = _parse(cursor, ty, steps=None)
    cursor.skip_whitespace()
    if not cursor.at_end():
        raise ASN1ParseError(f"trailing text after ASN.1 value: {cursor.rest()[:30]!r}")
    return value


def parse_value_with_path(text: str, ty: T.Type, path: PathExpression) -> object:
    """Parse only the parts of the value that ``path`` selects.

    The result equals ``path.apply(parse_value(text, ty))`` but fields off the
    path are skipped textually instead of being parsed into values.
    """
    cursor = _Cursor(text)
    value = _parse(cursor, ty, steps=tuple(path.steps))
    cursor.skip_whitespace()
    if not cursor.at_end():
        raise ASN1ParseError(f"trailing text after ASN.1 value: {cursor.rest()[:30]!r}")
    return value


class _Cursor:
    """A position in the input text with primitive scanning operations."""

    __slots__ = ("text", "pos")

    def __init__(self, text: str):
        self.text = text
        self.pos = 0

    def at_end(self) -> bool:
        return self.pos >= len(self.text)

    def rest(self) -> str:
        return self.text[self.pos:]

    def skip_whitespace(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos].isspace():
            self.pos += 1

    def peek(self) -> str:
        self.skip_whitespace()
        if self.at_end():
            return ""
        return self.text[self.pos]

    def expect(self, char: str) -> None:
        self.skip_whitespace()
        if self.at_end() or self.text[self.pos] != char:
            found = self.text[self.pos:self.pos + 10] if not self.at_end() else "<end>"
            raise ASN1ParseError(f"expected {char!r} at position {self.pos}, found {found!r}")
        self.pos += 1

    def accept(self, char: str) -> bool:
        self.skip_whitespace()
        if not self.at_end() and self.text[self.pos] == char:
            self.pos += 1
            return True
        return False

    def read_name(self) -> str:
        self.skip_whitespace()
        start = self.pos
        while self.pos < len(self.text) and (self.text[self.pos].isalnum()
                                             or self.text[self.pos] in "_-"):
            self.pos += 1
        if start == self.pos:
            raise ASN1ParseError(f"expected a name at position {start}")
        return self.text[start:self.pos]

    def read_string(self) -> str:
        self.expect('"')
        parts = []
        while True:
            if self.pos >= len(self.text):
                raise ASN1ParseError("unterminated string in ASN.1 value")
            char = self.text[self.pos]
            if char == '"':
                if self.pos + 1 < len(self.text) and self.text[self.pos + 1] == '"':
                    parts.append('"')
                    self.pos += 2
                    continue
                self.pos += 1
                return "".join(parts)
            parts.append(char)
            self.pos += 1

    def read_number(self) -> object:
        self.skip_whitespace()
        start = self.pos
        if not self.at_end() and self.text[self.pos] in "+-":
            self.pos += 1
        while self.pos < len(self.text) and (self.text[self.pos].isdigit()
                                             or self.text[self.pos] in ".eE+-"):
            self.pos += 1
        literal = self.text[start:self.pos]
        if not literal:
            raise ASN1ParseError(f"expected a number at position {start}")
        if any(ch in literal for ch in ".eE"):
            return float(literal)
        return int(literal)

    def skip_value(self) -> None:
        """Skip a complete value without building it (the pruning fast path)."""
        self.skip_whitespace()
        if self.at_end():
            raise ASN1ParseError("unexpected end of input while skipping a value")
        char = self.text[self.pos]
        if char == '"':
            self.read_string()
            return
        if char == "{":
            depth = 0
            while self.pos < len(self.text):
                char = self.text[self.pos]
                if char == '"':
                    self.read_string()
                    continue
                if char == "{":
                    depth += 1
                elif char == "}":
                    depth -= 1
                    if depth == 0:
                        self.pos += 1
                        return
                self.pos += 1
            raise ASN1ParseError("unbalanced braces while skipping a value")
        # Scalar or variant: scan to the next ',' or '}' at this level.
        while self.pos < len(self.text) and self.text[self.pos] not in ",}":
            if self.text[self.pos] == '"':
                self.read_string()
                continue
            if self.text[self.pos] == "{":
                self.skip_value()
                continue
            self.pos += 1


# ---------------------------------------------------------------------------
# Type-directed parsing with optional path pruning
# ---------------------------------------------------------------------------

def _parse(cursor: _Cursor, ty: T.Type, steps: Optional[Tuple[PathStep, ...]]) -> object:
    if isinstance(ty, T.RecordType):
        return _parse_record(cursor, ty, steps)
    if isinstance(ty, (T.SetType, T.BagType, T.ListType)):
        return _parse_collection(cursor, ty, steps)
    if isinstance(ty, T.VariantType):
        return _parse_variant(cursor, ty, steps)
    return _parse_scalar(cursor, ty)


def _parse_scalar(cursor: _Cursor, ty: T.Type) -> object:
    char = cursor.peek()
    if isinstance(ty, T.StringType):
        return cursor.read_string()
    if isinstance(ty, (T.IntType, T.FloatType)):
        return cursor.read_number()
    if isinstance(ty, T.BoolType):
        name = cursor.read_name()
        if name not in ("TRUE", "FALSE"):
            raise ASN1ParseError(f"expected TRUE or FALSE, found {name!r}")
        return name == "TRUE"
    if isinstance(ty, T.UnitType):
        name = cursor.read_name()
        if name != "NULL":
            raise ASN1ParseError(f"expected NULL, found {name!r}")
        return UNIT_VALUE
    if isinstance(ty, T.TypeVar):
        # Untyped hole: best-effort scalar parse.
        if char == '"':
            return cursor.read_string()
        return cursor.read_number()
    raise ASN1ParseError(f"cannot parse a value of type {ty}")


def _parse_record(cursor: _Cursor, ty: T.RecordType,
                  steps: Optional[Tuple[PathStep, ...]]) -> object:
    wanted_field = None
    rest_steps: Optional[Tuple[PathStep, ...]] = None
    if steps:
        first = steps[0]
        if isinstance(first, ProjectStep):
            wanted_field = first.label
            rest_steps = steps[1:]
        else:
            raise PathApplicationError(
                f"path step {first!r} cannot apply to a SEQUENCE value"
            )

    cursor.expect("{")
    fields = {}
    selected = None
    if not cursor.accept("}"):
        while True:
            label = cursor.read_name()
            field_type = ty.fields.get(label, T.fresh_type_var())
            if wanted_field is None:
                fields[label] = _parse(cursor, field_type, None)
            elif label == wanted_field:
                selected = _parse(cursor, field_type, rest_steps)
            else:
                cursor.skip_value()
            if cursor.accept(","):
                continue
            cursor.expect("}")
            break
    if wanted_field is not None:
        if selected is None:
            raise PathApplicationError(f"value has no field {wanted_field!r} on the path")
        return selected
    return Record(fields)


def _parse_collection(cursor: _Cursor, ty: T.Type,
                      steps: Optional[Tuple[PathStep, ...]]) -> object:
    kind = {T.SetType: "set", T.BagType: "bag", T.ListType: "list"}[type(ty)]
    element_type = ty.element
    elements = []
    cursor.expect("{")
    if not cursor.accept("}"):
        while True:
            if steps and isinstance(steps[0], VariantStep) and isinstance(element_type, T.VariantType):
                element = _parse_variant_filtered(cursor, element_type, steps[0], steps[1:])
                if element is not _SKIPPED:
                    elements.append(element)
            else:
                elements.append(_parse(cursor, element_type, steps))
            if cursor.accept(","):
                continue
            cursor.expect("}")
            break
    return make_collection(kind, elements)


_SKIPPED = object()


def _parse_variant_filtered(cursor: _Cursor, ty: T.VariantType, step: VariantStep,
                            rest: Tuple[PathStep, ...]):
    """Parse a CHOICE element under a ``..tag`` step: keep matching tags, skip others."""
    tag = cursor.read_name()
    case_type = ty.cases.get(tag, T.fresh_type_var())
    if isinstance(case_type, T.UnitType):
        payload_needed = False
    else:
        payload_needed = cursor.peek() not in ",}"
    if tag != step.tag:
        if payload_needed:
            cursor.skip_value()
        return _SKIPPED
    if not payload_needed:
        return UNIT_VALUE if not rest else _SKIPPED
    return _parse(cursor, case_type, rest or None)


def _parse_variant(cursor: _Cursor, ty: T.VariantType,
                   steps: Optional[Tuple[PathStep, ...]]) -> object:
    tag = cursor.read_name()
    case_type = ty.cases.get(tag, T.fresh_type_var())
    if isinstance(case_type, T.UnitType):
        payload: object = UNIT_VALUE
    elif cursor.peek() in ",}" or cursor.at_end():
        payload = UNIT_VALUE
    else:
        if steps and isinstance(steps[0], VariantStep):
            if steps[0].tag != tag:
                raise PathApplicationError(
                    f"variant carries tag {tag!r}, not {steps[0].tag!r}"
                )
            return _parse(cursor, case_type, steps[1:] or None)
        payload = _parse(cursor, case_type, None)
    if steps:
        first = steps[0]
        if isinstance(first, VariantStep):
            if first.tag != tag:
                raise PathApplicationError(f"variant carries tag {tag!r}, not {first.tag!r}")
            value = payload
            for remaining in steps[1:]:
                value = remaining.apply(value)
            return value
        raise PathApplicationError(f"path step {first!r} cannot apply to a CHOICE value")
    return Variant(tag, payload)
