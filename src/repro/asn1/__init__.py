"""An ASN.1-style data substrate standing in for GenBank/NCBI.

The paper's GenBank source is a repository of ASN.1 *values* reachable only
through Entrez-style index lookups — no server-side query language, so the
Kleisli ASN.1 driver prunes values with a *path extraction* language while it
parses them.  This package provides all of those pieces:

* :mod:`repro.asn1.typespec` — named ASN.1 type definitions (SEQUENCE, SET OF,
  CHOICE, ...) and their mapping onto CPL types;
* :mod:`repro.asn1.values` / :mod:`repro.asn1.parser` /
  :mod:`repro.asn1.printer` — the type-directed text form of values;
* :mod:`repro.asn1.path` — the path-extraction language
  (``Seq-entry.seq.id..giim``) with both post-hoc application and
  pruning-during-parse;
* :mod:`repro.asn1.entrez` — an Entrez-like retrieval service with boolean
  index lookups and precomputed neighbour links.
"""

from .typespec import Asn1Schema, parse_asn1_schema
from .parser import parse_value, parse_value_with_path
from .printer import print_value
from .path import PathExpression, parse_path
from .entrez import EntrezDivision, EntrezServer, LinkSet

__all__ = [
    "Asn1Schema", "parse_asn1_schema",
    "parse_value", "parse_value_with_path", "print_value",
    "PathExpression", "parse_path",
    "EntrezDivision", "EntrezServer", "LinkSet",
]
