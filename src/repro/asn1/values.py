"""ASN.1 values.

ASN.1 values are simply CPL values (records, variants, sets, lists, scalars);
this module provides the helpers the parser, printer and Entrez service share:
type-directed validation and a few construction conveniences.
"""

from __future__ import annotations

from typing import Iterable

from ..core import types as T
from ..core.errors import ASN1Error
from ..core.values import CBag, CList, CSet, Record, UNIT_VALUE, Unit, Variant

__all__ = ["validate_value", "conforms"]


def validate_value(value: object, ty: T.Type) -> None:
    """Raise :class:`ASN1Error` unless ``value`` conforms to ``ty``."""
    if isinstance(ty, T.TypeVar):
        return
    if isinstance(ty, T.StringType):
        if not isinstance(value, str):
            raise ASN1Error(f"expected a string, got {type(value).__name__}")
        return
    if isinstance(ty, T.IntType):
        if isinstance(value, bool) or not isinstance(value, int):
            raise ASN1Error(f"expected an integer, got {value!r}")
        return
    if isinstance(ty, T.FloatType):
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ASN1Error(f"expected a real, got {value!r}")
        return
    if isinstance(ty, T.BoolType):
        if not isinstance(value, bool):
            raise ASN1Error(f"expected a boolean, got {value!r}")
        return
    if isinstance(ty, T.UnitType):
        if not isinstance(value, Unit):
            raise ASN1Error(f"expected NULL, got {value!r}")
        return
    if isinstance(ty, T.SetType):
        if not isinstance(value, CSet):
            raise ASN1Error(f"expected a SET OF value, got {type(value).__name__}")
        for element in value:
            validate_value(element, ty.element)
        return
    if isinstance(ty, T.ListType):
        if not isinstance(value, CList):
            raise ASN1Error(f"expected a SEQUENCE OF value, got {type(value).__name__}")
        for element in value:
            validate_value(element, ty.element)
        return
    if isinstance(ty, T.BagType):
        if not isinstance(value, CBag):
            raise ASN1Error(f"expected a bag value, got {type(value).__name__}")
        for element in value:
            validate_value(element, ty.element)
        return
    if isinstance(ty, T.RecordType):
        if not isinstance(value, Record):
            raise ASN1Error(f"expected a SEQUENCE value, got {type(value).__name__}")
        for label, field_type in ty.fields.items():
            if not value.has_field(label):
                # OPTIONAL fields may be absent.
                continue
            validate_value(value.project(label), field_type)
        if not ty.is_open:
            extra = set(value.labels) - set(ty.fields)
            if extra:
                raise ASN1Error(f"unexpected fields {sorted(extra)} in SEQUENCE value")
        return
    if isinstance(ty, T.VariantType):
        if not isinstance(value, Variant):
            raise ASN1Error(f"expected a CHOICE value, got {type(value).__name__}")
        if value.tag not in ty.cases:
            if ty.is_open:
                return
            raise ASN1Error(f"unknown CHOICE alternative {value.tag!r}")
        validate_value(value.value, ty.cases[value.tag])
        return
    raise ASN1Error(f"cannot validate against type {ty}")


def conforms(value: object, ty: T.Type) -> bool:
    """True when ``value`` conforms to ``ty``."""
    try:
        validate_value(value, ty)
        return True
    except ASN1Error:
        return False
