"""The path-extraction language of the ASN.1 driver.

From the paper: *"we have developed a path extraction syntax that allows for a
terse description of successive record projections, variant selections, and
extractions of elements from collections"*, with the example
``Seq-entry.seq.id..giim`` — two projections followed by a variant extraction
applied to each element of the resulting set.

Syntax::

    path  := root step*
    step  := "." label        -- record projection (mapped over collections)
           | ".." label       -- variant extraction, mapped + filtered over collections

Applying a projection step to a collection maps it over the elements; applying
a variant step to a collection keeps only the elements carrying that tag and
extracts their payloads.  Applied to a single variant, a variant step either
extracts the payload or raises :class:`PathApplicationError`.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..core.errors import PathApplicationError, PathSyntaxError
from ..core.values import CBag, CList, CSet, Record, Variant, make_collection

__all__ = ["PathStep", "ProjectStep", "VariantStep", "PathExpression", "parse_path"]


class PathStep:
    """Base class for path steps."""

    def apply(self, value: object) -> object:
        raise NotImplementedError


class ProjectStep(PathStep):
    """``.label`` — project a record field (mapping over collections)."""

    __slots__ = ("label",)

    def __init__(self, label: str):
        self.label = label

    def apply(self, value: object) -> object:
        if isinstance(value, (CSet, CBag, CList)):
            return make_collection(value.kind, (self.apply(element) for element in value))
        if isinstance(value, Record):
            if not value.has_field(self.label):
                raise PathApplicationError(f"record has no field {self.label!r}")
            return value.project(self.label)
        raise PathApplicationError(
            f"cannot project {self.label!r} from {type(value).__name__}"
        )

    def __repr__(self) -> str:
        return f".{self.label}"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ProjectStep) and other.label == self.label

    def __hash__(self) -> int:
        return hash((".", self.label))


class VariantStep(PathStep):
    """``..tag`` — extract a variant payload, filtering collections by tag."""

    __slots__ = ("tag",)

    def __init__(self, tag: str):
        self.tag = tag

    def apply(self, value: object) -> object:
        if isinstance(value, (CSet, CBag, CList)):
            extracted = [element.value for element in value
                         if isinstance(element, Variant) and element.tag == self.tag]
            return make_collection(value.kind, extracted)
        if isinstance(value, Variant):
            if value.tag != self.tag:
                raise PathApplicationError(
                    f"variant carries tag {value.tag!r}, not {self.tag!r}"
                )
            return value.value
        raise PathApplicationError(
            f"cannot extract variant case {self.tag!r} from {type(value).__name__}"
        )

    def __repr__(self) -> str:
        return f"..{self.tag}"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, VariantStep) and other.tag == self.tag

    def __hash__(self) -> int:
        return hash(("..", self.tag))


class PathExpression:
    """A parsed path: a root type name plus a sequence of steps."""

    def __init__(self, root: str, steps: Sequence[PathStep]):
        self.root = root
        self.steps: Tuple[PathStep, ...] = tuple(steps)

    def apply(self, value: object) -> object:
        """Apply every step in order to ``value``."""
        current = value
        for step in self.steps:
            current = step.apply(current)
        return current

    def __repr__(self) -> str:
        return self.root + "".join(repr(step) for step in self.steps)

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, PathExpression)
                and (self.root, self.steps) == (other.root, other.steps))

    def __hash__(self) -> int:
        return hash((self.root, self.steps))

    def extended(self, step: PathStep) -> "PathExpression":
        """Return a new path with ``step`` appended (used by pushdown rewriting)."""
        return PathExpression(self.root, self.steps + (step,))


def parse_path(text: str) -> PathExpression:
    """Parse ``Root.step1.step2..tag`` into a :class:`PathExpression`."""
    text = text.strip()
    if not text:
        raise PathSyntaxError("empty path expression")
    parts: List[str] = []
    index = 0
    # Split on '.' while remembering doubled dots (variant steps).
    current = []
    dots = 0
    for char in text:
        if char == ".":
            if current:
                parts.append(("label", "".join(current)))
                current = []
            dots += 1
            continue
        if dots == 1:
            parts.append(("project", ""))
            dots = 0
        elif dots == 2:
            parts.append(("variant", ""))
            dots = 0
        elif dots > 2:
            raise PathSyntaxError(f"too many consecutive dots in path {text!r}")
        current.append(char)
    if dots:
        raise PathSyntaxError(f"path {text!r} ends with a dot")
    if current:
        parts.append(("label", "".join(current)))

    # parts is an alternating sequence: label, (project|variant), label, ...
    if not parts or parts[0][0] != "label":
        raise PathSyntaxError(f"path {text!r} must start with a root type name")
    root = parts[0][1]
    steps: List[PathStep] = []
    index = 1
    while index < len(parts):
        kind, _ = parts[index]
        if kind == "label":
            raise PathSyntaxError(f"malformed path {text!r}")
        if index + 1 >= len(parts) or parts[index + 1][0] != "label":
            raise PathSyntaxError(f"path {text!r} has a dangling {kind} step")
        label = parts[index + 1][1]
        if not label:
            raise PathSyntaxError(f"empty step label in path {text!r}")
        steps.append(ProjectStep(label) if kind == "project" else VariantStep(label))
        index += 2
    return PathExpression(root, steps)
