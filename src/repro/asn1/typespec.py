"""ASN.1 type specifications.

The NCBI ASN.1 specification "consists of a syntax for types and a
prescription of how data conforming to an ASN.1 type is to be physically
represented".  We implement the type half with the constructors the paper
lists (its table maps them onto CPL):

=============  =====================  ==================
CPL             notation               ASN.1 terminology
=============  =====================  ==================
list            ``[| t |]``            SEQUENCE OF
set             ``{ t }``              SET OF
record          ``[l: t, ...]``        SEQUENCE (labelled fields)
variant         ``<l: t, ...>``        CHOICE (tagged union)
=============  =====================  ==================

A schema is a set of *named* type definitions (``Seq-entry ::= SEQUENCE {...}``)
with references between them; :meth:`Asn1Schema.cpl_type` resolves a name to
the corresponding :mod:`repro.core.types` type, which is what the Kleisli
driver reports to the CPL type checker.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from ..core import types as T
from ..core.errors import ASN1ParseError

__all__ = ["Asn1Schema", "parse_asn1_schema"]

_PRIMITIVES = {
    "VisibleString": T.STRING,
    "UTF8String": T.STRING,
    "INTEGER": T.INT,
    "REAL": T.FLOAT,
    "BOOLEAN": T.BOOL,
    "NULL": T.UNIT,
}


class Asn1Schema:
    """A collection of named ASN.1 type definitions."""

    def __init__(self, name: str = "schema"):
        self.name = name
        self.definitions: Dict[str, T.Type] = {}

    def define(self, type_name: str, ty: T.Type) -> None:
        self.definitions[type_name] = ty

    def cpl_type(self, type_name: str) -> T.Type:
        """Resolve a named type (following references) into a CPL type."""
        try:
            ty = self.definitions[type_name]
        except KeyError:
            raise ASN1ParseError(f"schema {self.name!r} does not define type {type_name!r}")
        return self._resolve(ty, seen=(type_name,))

    def type_names(self) -> List[str]:
        return sorted(self.definitions)

    def _resolve(self, ty: T.Type, seen: Tuple[str, ...]) -> T.Type:
        if isinstance(ty, _TypeReference):
            if ty.name in seen:
                raise ASN1ParseError(
                    f"recursive ASN.1 type {ty.name!r} cannot be mapped to a finite CPL type"
                )
            if ty.name not in self.definitions:
                raise ASN1ParseError(f"reference to undefined ASN.1 type {ty.name!r}")
            return self._resolve(self.definitions[ty.name], seen + (ty.name,))
        if isinstance(ty, T.SetType):
            return T.SetType(self._resolve(ty.element, seen))
        if isinstance(ty, T.BagType):
            return T.BagType(self._resolve(ty.element, seen))
        if isinstance(ty, T.ListType):
            return T.ListType(self._resolve(ty.element, seen))
        if isinstance(ty, T.RecordType):
            return T.RecordType({label: self._resolve(field, seen)
                                 for label, field in ty.fields.items()}, ty.row)
        if isinstance(ty, T.VariantType):
            return T.VariantType({label: self._resolve(case, seen)
                                  for label, case in ty.cases.items()}, ty.row)
        return ty


class _TypeReference(T.Type):
    """A reference to another named type inside a schema."""

    def __init__(self, name: str):
        self.name = name

    def __str__(self) -> str:
        return self.name

    def _key(self):
        return (self.name,)


# ---------------------------------------------------------------------------
# Parsing the ASN.1-flavoured type syntax
# ---------------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"\s*(::=|\{|\}|,|SEQUENCE OF|SET OF|SEQUENCE|SET|CHOICE|OPTIONAL|"
    r"[A-Za-z][A-Za-z0-9_-]*|--[^\n]*)"
)


def _tokenize(text: str) -> List[str]:
    tokens: List[str] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            remaining = text[position:].strip()
            if not remaining:
                break
            raise ASN1ParseError(f"cannot tokenise ASN.1 near {remaining[:30]!r}")
        token = match.group(1)
        position = match.end()
        if token.startswith("--"):
            continue
        tokens.append(token)
    return tokens


def parse_asn1_schema(text: str, name: str = "schema") -> Asn1Schema:
    """Parse a module of ``Name ::= TYPE`` definitions into a schema.

    Example::

        Publication ::= SEQUENCE {
            title VisibleString,
            authors SEQUENCE OF SEQUENCE { name VisibleString, initial VisibleString },
            journal CHOICE { uncontrolled VisibleString,
                             controlled CHOICE { medline-jta VisibleString } },
            year INTEGER,
            keywd SET OF VisibleString
        }
    """
    parser = _SchemaParser(_tokenize(text))
    schema = Asn1Schema(name)
    while not parser.at_end():
        type_name = parser.expect_name()
        parser.expect("::=")
        schema.define(type_name, parser.parse_type())
    return schema


class _SchemaParser:

    def __init__(self, tokens: List[str]):
        self.tokens = tokens
        self.position = 0

    def at_end(self) -> bool:
        return self.position >= len(self.tokens)

    def peek(self) -> Optional[str]:
        if self.at_end():
            return None
        return self.tokens[self.position]

    def advance(self) -> str:
        token = self.peek()
        if token is None:
            raise ASN1ParseError("unexpected end of ASN.1 specification")
        self.position += 1
        return token

    def expect(self, token: str) -> None:
        found = self.advance()
        if found != token:
            raise ASN1ParseError(f"expected {token!r} in ASN.1 specification, found {found!r}")

    def expect_name(self) -> str:
        token = self.advance()
        if not re.match(r"[A-Za-z]", token):
            raise ASN1ParseError(f"expected a type name, found {token!r}")
        return token

    def accept(self, token: str) -> bool:
        if self.peek() == token:
            self.position += 1
            return True
        return False

    def parse_type(self) -> T.Type:
        token = self.advance()
        if token == "SEQUENCE OF":
            return T.ListType(self.parse_type())
        if token == "SET OF":
            return T.SetType(self.parse_type())
        if token in ("SEQUENCE", "SET"):
            fields = self._parse_fields()
            return T.RecordType(fields)
        if token == "CHOICE":
            cases = self._parse_fields()
            return T.VariantType(cases)
        if token in _PRIMITIVES:
            return _PRIMITIVES[token]
        # Anything else is a reference to another named type.
        return _TypeReference(token)

    def _parse_fields(self) -> Dict[str, T.Type]:
        self.expect("{")
        fields: Dict[str, T.Type] = {}
        while True:
            label = self.expect_name()
            fields[label] = self.parse_type()
            self.accept("OPTIONAL")
            if self.accept(","):
                continue
            self.expect("}")
            return fields
