"""Printer for the ASN.1 text form of values.

The concrete syntax mirrors ASN.1 value notation as NCBI prints it:

* SEQUENCE (record): ``{ field value, field value }``
* SET OF / SEQUENCE OF: ``{ value, value }``
* CHOICE (variant): ``tag value`` (or just ``tag`` for a NULL payload)
* strings in double quotes, INTEGER / REAL literals, TRUE / FALSE, NULL.

The grammar is type-directed on the way back in (see
:mod:`repro.asn1.parser`), exactly because ``{ ... }`` is used both for
constructed types and collections — as in real ASN.1 print form.
"""

from __future__ import annotations

from typing import List

from ..core.values import CBag, CList, CSet, Record, Unit, Variant

__all__ = ["print_value"]


def print_value(value: object, indent: int = 0, width: int = 100) -> str:
    """Render ``value`` in ASN.1 text form."""
    flat = _print_flat(value)
    if len(flat) + indent <= width:
        return flat
    return _print_indented(value, indent, width)


def _print_flat(value: object) -> str:
    if isinstance(value, str):
        return '"%s"' % value.replace('"', '""')
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, Unit):
        return "NULL"
    if isinstance(value, (int, float)):
        return repr(value)
    if isinstance(value, Record):
        inner = ", ".join(f"{label} {_print_flat(field)}" for label, field in value.items())
        return "{ %s }" % inner if inner else "{ }"
    if isinstance(value, Variant):
        if isinstance(value.value, Unit):
            return value.tag
        return f"{value.tag} {_print_flat(value.value)}"
    if isinstance(value, (CSet, CBag, CList)):
        inner = ", ".join(_print_flat(element) for element in value)
        return "{ %s }" % inner if inner else "{ }"
    raise TypeError(f"cannot print {type(value).__name__} as ASN.1 text")


def _print_indented(value: object, indent: int, width: int) -> str:
    pad = " " * indent
    child_pad = " " * (indent + 2)
    if isinstance(value, Record):
        lines: List[str] = []
        for label, field in value.items():
            rendered = print_value(field, indent + 2, width)
            lines.append(f"{child_pad}{label} {rendered.lstrip()}")
        return "{\n" + ",\n".join(lines) + f"\n{pad}}}"
    if isinstance(value, (CSet, CBag, CList)):
        lines = []
        for element in value:
            rendered = print_value(element, indent + 2, width)
            lines.append(f"{child_pad}{rendered.lstrip()}")
        return "{\n" + ",\n".join(lines) + f"\n{pad}}}"
    if isinstance(value, Variant):
        rendered = print_value(value.value, indent, width)
        if isinstance(value.value, Unit):
            return value.tag
        return f"{value.tag} {rendered.lstrip()}"
    return _print_flat(value)
