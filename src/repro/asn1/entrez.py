"""An Entrez-like retrieval service over ASN.1 entries.

The real Entrez "simply selects ASN.1 values through pre-computed indexes; no
pruning or field selection from values can be performed".  This module
reproduces that interface:

* entries live in *divisions* (``na`` — nucleic acid / GenBank, ``aa`` —
  protein, ``ml`` — MEDLINE), stored as ASN.1 **text** plus their numeric UID;
* selection is by boolean combinations of ``index value`` pairs over
  pre-computed hash indexes (accession, organism, keyword, chromosome, ...);
* precomputed **neighbour links** (the NA-Links of the paper) connect a UID to
  records describing similar entries;
* the service hands back entry text; pruning happens client-side in the
  Kleisli driver via :func:`repro.asn1.parser.parse_value_with_path`.

The query syntax for :meth:`EntrezDivision.select`::

    query  := clause ("AND" clause)*  ("OR" also accepted between clauses)
    clause := index value             e.g.  accession M81409
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..core import types as T
from ..core.errors import ASN1Error
from ..core.values import CSet, Record
from .parser import parse_value, parse_value_with_path
from .path import PathExpression, parse_path
from .printer import print_value

__all__ = ["EntrezEntry", "LinkSet", "EntrezDivision", "EntrezServer"]


class EntrezEntry:
    """One stored entry: a UID, its ASN.1 text, and its indexable attributes."""

    __slots__ = ("uid", "text", "attributes")

    def __init__(self, uid: int, text: str, attributes: Dict[str, Sequence[str]]):
        self.uid = uid
        self.text = text
        # attribute name -> list of values this entry is indexed under
        self.attributes = {key: list(values) for key, values in attributes.items()}

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"EntrezEntry(uid={self.uid})"


class LinkSet:
    """Precomputed neighbour links from one entry to others (NA-Links)."""

    __slots__ = ("uid", "links")

    def __init__(self, uid: int):
        self.uid = uid
        # Each link is a dict: target uid, target division, score, organism...
        self.links: List[Dict[str, object]] = []

    def add(self, target_uid: int, division: str, score: float,
            organism: str = "", title: str = "") -> None:
        self.links.append({
            "uid": target_uid,
            "db": division,
            "score": score,
            "organism": organism,
            "title": title,
        })

    def __len__(self) -> int:
        return len(self.links)


class EntrezDivision:
    """One division (database) of the server: entries + indexes + links."""

    def __init__(self, name: str, entry_type: T.Type):
        self.name = name
        self.entry_type = entry_type
        self.entries: Dict[int, EntrezEntry] = {}
        self.indexes: Dict[str, Dict[str, Set[int]]] = {}
        self.links: Dict[int, LinkSet] = {}
        self._next_uid = 1

    # -- loading ------------------------------------------------------------------

    def add_entry(self, value: object, attributes: Dict[str, Sequence[str]],
                  uid: Optional[int] = None) -> int:
        """Store a CPL value as ASN.1 text, indexing it under ``attributes``."""
        if uid is None:
            uid = self._next_uid
        self._next_uid = max(self._next_uid, uid + 1)
        text = print_value(value)
        entry = EntrezEntry(uid, text, attributes)
        self.entries[uid] = entry
        for index_name, values in attributes.items():
            index = self.indexes.setdefault(index_name, {})
            for index_value in values:
                index.setdefault(str(index_value).lower(), set()).add(uid)
        return uid

    def add_link(self, source_uid: int, target_uid: int, division: str,
                 score: float, organism: str = "", title: str = "") -> None:
        self.links.setdefault(source_uid, LinkSet(source_uid)).add(
            target_uid, division, score, organism, title)

    # -- the Entrez interface --------------------------------------------------------

    def select(self, query: str) -> List[int]:
        """Evaluate a boolean index query and return matching UIDs (sorted)."""
        if not query.strip():
            return sorted(self.entries)
        tokens = query.split()
        result: Optional[Set[int]] = None
        operator = "AND"
        index = 0
        while index < len(tokens):
            token = tokens[index]
            if token.upper() in ("AND", "OR"):
                operator = token.upper()
                index += 1
                continue
            if index + 1 >= len(tokens):
                raise ASN1Error(f"malformed Entrez query {query!r}: index without a value")
            index_name, value = token, tokens[index + 1]
            index += 2
            matches = self._lookup(index_name, value)
            if result is None:
                result = matches
            elif operator == "AND":
                result &= matches
            else:
                result |= matches
        return sorted(result or set())

    def _lookup(self, index_name: str, value: str) -> Set[int]:
        index = self.indexes.get(index_name)
        if index is None:
            raise ASN1Error(
                f"division {self.name!r} has no pre-computed index {index_name!r} "
                f"(available: {sorted(self.indexes)})"
            )
        return set(index.get(value.lower(), set()))

    def fetch_text(self, uid: int) -> str:
        try:
            return self.entries[uid].text
        except KeyError:
            raise ASN1Error(f"division {self.name!r} has no entry with uid {uid}")

    def fetch(self, uid: int, path: Optional[PathExpression] = None) -> object:
        """Fetch an entry as a CPL value, optionally pruning with ``path`` during the parse."""
        text = self.fetch_text(uid)
        if path is None:
            return parse_value(text, self.entry_type)
        return parse_value_with_path(text, self.entry_type, path)

    def neighbours(self, uid: int) -> List[Dict[str, object]]:
        """Return the precomputed link records for ``uid`` (NA-Links)."""
        link_set = self.links.get(uid)
        if link_set is None:
            return []
        return [dict(link) for link in link_set.links]

    def __len__(self) -> int:
        return len(self.entries)


class EntrezServer:
    """A set of divisions plus the call-level interface the driver talks to."""

    def __init__(self, name: str = "NCBI"):
        self.name = name
        self.divisions: Dict[str, EntrezDivision] = {}
        self.request_log: List[Dict[str, object]] = []

    def create_division(self, name: str, entry_type: T.Type) -> EntrezDivision:
        division = EntrezDivision(name, entry_type)
        self.divisions[name] = division
        return division

    def division(self, name: str) -> EntrezDivision:
        try:
            return self.divisions[name]
        except KeyError:
            raise ASN1Error(f"Entrez server {self.name!r} has no division {name!r}")

    # -- request interface used by the Kleisli driver ----------------------------------

    def query(self, db: str, select: str, path: Optional[str] = None) -> List[object]:
        """Select entries by index query and return (optionally pruned) values."""
        self.request_log.append({"db": db, "select": select, "path": path})
        division = self.division(db)
        parsed_path = parse_path(path) if path else None
        results = []
        for uid in division.select(select):
            results.append(division.fetch(uid, parsed_path))
        return results

    def query_uids(self, db: str, select: str) -> List[int]:
        self.request_log.append({"db": db, "select": select, "uids": True})
        return self.division(db).select(select)

    def fetch(self, db: str, uid: int, path: Optional[str] = None) -> object:
        self.request_log.append({"db": db, "uid": uid, "path": path})
        parsed_path = parse_path(path) if path else None
        return self.division(db).fetch(uid, parsed_path)

    def links(self, db: str, uid: int) -> List[Dict[str, object]]:
        self.request_log.append({"db": db, "uid": uid, "links": True})
        return self.division(db).neighbours(uid)
