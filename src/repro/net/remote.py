"""Simulated remote data sources.

In 1995 the paper's prototype reached GDB in Baltimore and GenBank in Bethesda
over the Internet; latency and per-server concurrency limits are what make the
laziness and bounded-concurrency optimizations of Section 4 matter.  Here a
:class:`RemoteSource` wraps any callable "server" with:

* a fixed per-request latency (``time.sleep``),
* a hard cap on concurrent in-flight requests — exceeding it raises
  :class:`~repro.core.errors.RemoteSourceError`, exactly the failure mode the
  paper warns about ("the server S may only be able to handle a limited number
  of requests at a time, say five"),
* a call log with timestamps, which the concurrency benchmark uses to verify
  that requests really overlapped and never exceeded the cap.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, List, Optional

from ..core.errors import RemoteSourceError

__all__ = ["RemoteCallLog", "RemoteSource"]


class RemoteCallLog:
    """Start/end timestamps of every request made against a remote source."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.calls: List[Dict[str, float]] = []

    def record(self, started: float, finished: float) -> None:
        with self._lock:
            self.calls.append({"started": started, "finished": finished})

    def __len__(self) -> int:
        return len(self.calls)

    def max_concurrency(self) -> int:
        """The maximum number of requests that were in flight at the same instant."""
        events = []
        for call in self.calls:
            events.append((call["started"], 1))
            events.append((call["finished"], -1))
        events.sort()
        level = 0
        peak = 0
        for _, delta in events:
            level += delta
            peak = max(peak, level)
        return peak

    def wall_clock(self) -> float:
        """Total elapsed time from the first request start to the last finish."""
        if not self.calls:
            return 0.0
        started = min(call["started"] for call in self.calls)
        finished = max(call["finished"] for call in self.calls)
        return finished - started


class RemoteSource:
    """Wrap a callable server with latency, a concurrency cap, and faults.

    Beyond the cap rejection (retryable :class:`RemoteSourceError`, see the
    fault taxonomy in :mod:`repro.core.errors`), two configurable failure
    modes make the source a deterministic chaos fixture for resilience
    tests:

    * ``failure_rate`` — every Nth admitted request fails (``0.1`` = every
      10th; deterministic by request ordinal, not random, so runs repeat);
    * ``fail_after`` — requests succeed until N have been served, then every
      request fails (a server going down mid-query; re-arm by resetting
      :attr:`requests_admitted` or constructing afresh).

    Both raise :class:`RemoteSourceError` (retryable) *after* admission, so
    breaker/retry accounting sees them as server faults, not cap pressure.
    ``clock`` and ``sleeper`` are injectable so resilience tests wire a fake
    clock and never sleep through the simulated latency.
    """

    def __init__(self, name: str, handler: Callable[..., object],
                 latency: float = 0.02, max_concurrent_requests: int = 5,
                 failure_rate: float = 0.0,
                 fail_after: Optional[int] = None,
                 clock: Callable[[], float] = time.monotonic,
                 sleeper: Callable[[float], None] = time.sleep):
        self.name = name
        self.handler = handler
        self.latency = latency
        self.max_concurrent_requests = max_concurrent_requests
        self.failure_rate = failure_rate
        self.fail_after = fail_after
        self.clock = clock
        self.sleeper = sleeper
        self.log = RemoteCallLog()
        self._lock = threading.Lock()
        self._in_flight = 0
        #: Requests (and batches) that passed admission, ever — the ordinal
        #: the deterministic failure modes key on.
        self.requests_admitted = 0
        #: Requests deliberately failed by a configured failure mode.
        self.faults_injected = 0

    def _admit(self, what: str) -> None:
        """Take one concurrency slot and apply the configured failure modes."""
        with self._lock:
            if self._in_flight >= self.max_concurrent_requests:
                raise RemoteSourceError(
                    f"server {self.name!r} rejected the {what}: already handling "
                    f"{self._in_flight} concurrent requests (cap {self.max_concurrent_requests})"
                )
            self._in_flight += 1
            self.requests_admitted += 1
            ordinal = self.requests_admitted
            fail = False
            if self.fail_after is not None and ordinal > self.fail_after:
                fail = True
            elif self.failure_rate > 0:
                # Every round(1/rate)th request, deterministically.
                period = max(1, round(1.0 / self.failure_rate))
                fail = ordinal % period == 0
            if fail:
                self.faults_injected += 1
                self._in_flight -= 1
                raise RemoteSourceError(
                    f"server {self.name!r} dropped the {what} "
                    f"(injected fault, request #{ordinal})")

    def call(self, *args, **kwargs) -> object:
        """Issue one request: admission check, latency, then the wrapped handler."""
        self._admit("request")
        started = self.clock()
        try:
            if self.latency > 0:
                self.sleeper(self.latency)
            return self.handler(*args, **kwargs)
        finally:
            finished = self.clock()
            self.log.record(started, finished)
            with self._lock:
                self._in_flight -= 1

    __call__ = call

    def call_batch(self, payloads: List[object]) -> List[object]:
        """Issue several requests as ONE wire round-trip.

        Models a batched protocol: admission (one concurrency slot), the
        network latency and the call-log entry are paid once for the whole
        batch, then the handler runs per payload.  This is what makes a
        driver's native ``execute_batch`` cheaper than looping ``call`` —
        a chunk of K requests costs one latency instead of K.  A configured
        failure mode fails the whole batch (one wire message, one drop) —
        which is exactly what the engine's per-request batch decomposition
        exists to recover from.
        """
        if not payloads:
            return []
        self._admit("batch")
        started = self.clock()
        try:
            if self.latency > 0:
                self.sleeper(self.latency)
            return [self.handler(payload) for payload in payloads]
        finally:
            finished = self.clock()
            self.log.record(started, finished)
            with self._lock:
                self._in_flight -= 1

    @property
    def request_count(self) -> int:
        return len(self.log)
