"""Simulated remote data sources.

In 1995 the paper's prototype reached GDB in Baltimore and GenBank in Bethesda
over the Internet; latency and per-server concurrency limits are what make the
laziness and bounded-concurrency optimizations of Section 4 matter.  Here a
:class:`RemoteSource` wraps any callable "server" with:

* a fixed per-request latency (``time.sleep``),
* a hard cap on concurrent in-flight requests — exceeding it raises
  :class:`~repro.core.errors.RemoteSourceError`, exactly the failure mode the
  paper warns about ("the server S may only be able to handle a limited number
  of requests at a time, say five"),
* a call log with timestamps, which the concurrency benchmark uses to verify
  that requests really overlapped and never exceeded the cap.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, List, Optional

from ..core.errors import RemoteSourceError

__all__ = ["RemoteCallLog", "RemoteSource"]


class RemoteCallLog:
    """Start/end timestamps of every request made against a remote source."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.calls: List[Dict[str, float]] = []

    def record(self, started: float, finished: float) -> None:
        with self._lock:
            self.calls.append({"started": started, "finished": finished})

    def __len__(self) -> int:
        return len(self.calls)

    def max_concurrency(self) -> int:
        """The maximum number of requests that were in flight at the same instant."""
        events = []
        for call in self.calls:
            events.append((call["started"], 1))
            events.append((call["finished"], -1))
        events.sort()
        level = 0
        peak = 0
        for _, delta in events:
            level += delta
            peak = max(peak, level)
        return peak

    def wall_clock(self) -> float:
        """Total elapsed time from the first request start to the last finish."""
        if not self.calls:
            return 0.0
        started = min(call["started"] for call in self.calls)
        finished = max(call["finished"] for call in self.calls)
        return finished - started


class RemoteSource:
    """Wrap a callable server with latency and a concurrency cap."""

    def __init__(self, name: str, handler: Callable[..., object],
                 latency: float = 0.02, max_concurrent_requests: int = 5):
        self.name = name
        self.handler = handler
        self.latency = latency
        self.max_concurrent_requests = max_concurrent_requests
        self.log = RemoteCallLog()
        self._lock = threading.Lock()
        self._in_flight = 0

    def call(self, *args, **kwargs) -> object:
        """Issue one request: admission check, latency, then the wrapped handler."""
        with self._lock:
            if self._in_flight >= self.max_concurrent_requests:
                raise RemoteSourceError(
                    f"server {self.name!r} rejected the request: already handling "
                    f"{self._in_flight} concurrent requests (cap {self.max_concurrent_requests})"
                )
            self._in_flight += 1
        started = time.monotonic()
        try:
            if self.latency > 0:
                time.sleep(self.latency)
            return self.handler(*args, **kwargs)
        finally:
            finished = time.monotonic()
            self.log.record(started, finished)
            with self._lock:
                self._in_flight -= 1

    __call__ = call

    def call_batch(self, payloads: List[object]) -> List[object]:
        """Issue several requests as ONE wire round-trip.

        Models a batched protocol: admission (one concurrency slot), the
        network latency and the call-log entry are paid once for the whole
        batch, then the handler runs per payload.  This is what makes a
        driver's native ``execute_batch`` cheaper than looping ``call`` —
        a chunk of K requests costs one latency instead of K.
        """
        if not payloads:
            return []
        with self._lock:
            if self._in_flight >= self.max_concurrent_requests:
                raise RemoteSourceError(
                    f"server {self.name!r} rejected the batch: already handling "
                    f"{self._in_flight} concurrent requests (cap {self.max_concurrent_requests})"
                )
            self._in_flight += 1
        started = time.monotonic()
        try:
            if self.latency > 0:
                time.sleep(self.latency)
            return [self.handler(payload) for payload in payloads]
        finally:
            finished = time.monotonic()
            self.log.record(started, finished)
            with self._lock:
                self._in_flight -= 1

    @property
    def request_count(self) -> int:
        return len(self.log)
