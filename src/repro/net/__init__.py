"""Remote access: simulated latency/concurrency caps and real wire framing."""

from .framing import MAX_FRAME_BYTES, encode_frame, recv_message, send_message
from .remote import RemoteSource, RemoteCallLog

__all__ = ["RemoteSource", "RemoteCallLog", "MAX_FRAME_BYTES",
           "encode_frame", "recv_message", "send_message"]
