"""Simulated remote access: latency and concurrency caps around data sources."""

from .remote import RemoteSource, RemoteCallLog

__all__ = ["RemoteSource", "RemoteCallLog"]
