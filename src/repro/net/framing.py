"""Length-prefixed message framing for the query-service wire protocol.

The 1995 system spoke to CPL clients over the Internet; the reproduction's
:mod:`repro.server` does the same over TCP.  A *frame* is::

    +----------------+----------------------------+
    | 4-byte length  |  UTF-8 JSON payload        |
    |  (big-endian)  |  (exactly `length` bytes)  |
    +----------------+----------------------------+

Framing and the payload codec live here — next to the simulated
:class:`~repro.net.remote.RemoteSource` wire layer — so the server front-end,
the client library, and any future driver that ships requests over a real
socket all share one definition of "a message".

Guarantees:

* :func:`recv_message` returns ``None`` on a clean EOF *between* frames
  (the peer hung up) and raises
  :class:`~repro.core.errors.WireProtocolError` on a truncated frame, an
  oversized length prefix, or undecodable payload — a half-written frame is
  never silently passed off as a message.
* Frames larger than :data:`MAX_FRAME_BYTES` are refused on both send and
  receive, so one runaway result cannot wedge a connection (or balloon the
  peer's memory) — stream large results cursor-wise instead.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Optional

from ..core.errors import WireProtocolError

__all__ = ["MAX_FRAME_BYTES", "encode_frame", "send_message", "recv_message"]

_HEADER = struct.Struct(">I")

#: Hard cap on one frame's payload size (16 MiB).  Large query results
#: should be fetched through a cursor, a batch per frame.
MAX_FRAME_BYTES = 16 * 1024 * 1024


def encode_frame(message: dict) -> bytes:
    """Serialize one message into a length-prefixed frame."""
    try:
        payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    except (TypeError, ValueError) as error:
        raise WireProtocolError(f"message is not JSON-serializable: {error}")
    if len(payload) > MAX_FRAME_BYTES:
        raise WireProtocolError(
            f"frame of {len(payload)} bytes exceeds the {MAX_FRAME_BYTES}-byte "
            f"cap; fetch large results through a cursor")
    return _HEADER.pack(len(payload)) + payload


def send_message(sock: socket.socket, message: dict) -> None:
    """Send one framed message over a connected socket."""
    sock.sendall(encode_frame(message))


def _recv_exactly(sock: socket.socket, count: int) -> Optional[bytes]:
    """Read exactly ``count`` bytes; ``None`` on EOF before the first byte."""
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if remaining == count:
                return None
            raise WireProtocolError(
                f"connection closed mid-frame ({count - remaining} of "
                f"{count} bytes received)")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_message(sock: socket.socket) -> Optional[dict]:
    """Receive one framed message; ``None`` when the peer closed cleanly."""
    header = _recv_exactly(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise WireProtocolError(
            f"peer announced a {length}-byte frame (cap {MAX_FRAME_BYTES}); "
            f"refusing to buffer it")
    payload = _recv_exactly(sock, length) if length else b""
    if payload is None:
        raise WireProtocolError("connection closed between header and payload")
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as error:
        raise WireProtocolError(f"undecodable frame payload: {error}")
    if not isinstance(message, dict):
        raise WireProtocolError(
            f"frame payload must be a JSON object, got {type(message).__name__}")
    return message
