"""Secondary indexes for the relational substrate.

Two index kinds are provided:

* :class:`HashIndex` — exact-match lookup on one column (what the Entrez-style
  "pre-computed indexes" and the SQL planner's equality lookups use),
* :class:`SortedIndex` — an ordered index supporting range scans, used by the
  planner for inequality predicates.

Indexes are maintained incrementally on insert and rebuilt on bulk load.
"""

from __future__ import annotations

import bisect
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

__all__ = ["HashIndex", "SortedIndex"]


class HashIndex:
    """Maps a column value to the list of row positions holding that value."""

    def __init__(self, column: str):
        self.column = column
        self._buckets: Dict[object, List[int]] = {}

    def add(self, value: object, row_position: int) -> None:
        self._buckets.setdefault(value, []).append(row_position)

    def lookup(self, value: object) -> List[int]:
        return list(self._buckets.get(value, ()))

    def clear(self) -> None:
        self._buckets.clear()

    def rebuild(self, values: Iterable[object]) -> None:
        self.clear()
        for position, value in enumerate(values):
            self.add(value, position)

    def distinct_count(self) -> int:
        return len(self._buckets)

    def __len__(self) -> int:
        return sum(len(positions) for positions in self._buckets.values())

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"HashIndex({self.column}, {self.distinct_count()} keys)"


class SortedIndex:
    """An ordered (value, row position) index supporting range scans."""

    def __init__(self, column: str):
        self.column = column
        self._keys: List[object] = []
        self._positions: List[int] = []
        self._dirty_entries: List[Tuple[object, int]] = []

    def add(self, value: object, row_position: int) -> None:
        # Inserts are buffered; the sorted arrays are refreshed lazily on read.
        self._dirty_entries.append((value, row_position))

    def _flush(self) -> None:
        if not self._dirty_entries:
            return
        entries = list(zip(self._keys, self._positions)) + self._dirty_entries
        entries.sort(key=lambda pair: (pair[0] is None, pair[0]))
        self._keys = [key for key, _ in entries]
        self._positions = [position for _, position in entries]
        self._dirty_entries = []

    def clear(self) -> None:
        self._keys = []
        self._positions = []
        self._dirty_entries = []

    def rebuild(self, values: Iterable[object]) -> None:
        self.clear()
        for position, value in enumerate(values):
            self._dirty_entries.append((value, position))
        self._flush()

    def lookup(self, value: object) -> List[int]:
        self._flush()
        left = bisect.bisect_left(self._keys, value)
        right = bisect.bisect_right(self._keys, value)
        return self._positions[left:right]

    def range(self, low: Optional[object] = None, high: Optional[object] = None,
              include_low: bool = True, include_high: bool = True) -> List[int]:
        """Row positions whose value lies in the given (optionally open) range."""
        self._flush()
        if low is None:
            start = 0
        elif include_low:
            start = bisect.bisect_left(self._keys, low)
        else:
            start = bisect.bisect_right(self._keys, low)
        if high is None:
            end = len(self._keys)
        elif include_high:
            end = bisect.bisect_right(self._keys, high)
        else:
            end = bisect.bisect_left(self._keys, high)
        return self._positions[start:end]

    def distinct_count(self) -> int:
        self._flush()
        count = 0
        previous = object()
        for key in self._keys:
            if key != previous:
                count += 1
                previous = key
        return count

    def __len__(self) -> int:
        self._flush()
        return len(self._keys)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"SortedIndex({self.column}, {len(self)} entries)"
