"""Executor for SQL plans.

Rows flow through the plan as dictionaries keyed ``alias.column``; the final
projection renames them to the select-list names.  The executor is where index
lookups, hash joins and residual filters actually run.
"""

from __future__ import annotations

import fnmatch
from typing import Dict, Iterator, List, Optional, Tuple

from ...core.errors import SQLExecutionError
from ..database import Database
from .ast import ColumnRef, Comparison, InList, Like, SelectStatement
from .parser import parse_sql
from .planner import (
    DistinctNode,
    HashJoinNode,
    LimitNode,
    NestedLoopJoinNode,
    OrderNode,
    PlanNode,
    ProjectNode,
    ScanNode,
    plan_query,
)

__all__ = ["execute_sql", "execute_plan"]

Row = Dict[str, object]


def execute_sql(database: Database, text: str) -> List[Row]:
    """Parse, plan and execute ``text`` against ``database``."""
    statement = parse_sql(text)
    plan = plan_query(database, statement)
    return execute_plan(plan)


def execute_plan(plan: PlanNode) -> List[Row]:
    """Execute a plan tree and return the result rows."""
    return list(_run(plan))


def _run(node: PlanNode) -> Iterator[Row]:
    if isinstance(node, ScanNode):
        return _run_scan(node)
    if isinstance(node, HashJoinNode):
        return _run_hash_join(node)
    if isinstance(node, NestedLoopJoinNode):
        return _run_nested_loop(node)
    if isinstance(node, ProjectNode):
        return _run_project(node)
    if isinstance(node, DistinctNode):
        return _run_distinct(node)
    if isinstance(node, OrderNode):
        return _run_order(node)
    if isinstance(node, LimitNode):
        return _run_limit(node)
    raise SQLExecutionError(f"cannot execute plan node {type(node).__name__}")


# ---------------------------------------------------------------------------
# Scans
# ---------------------------------------------------------------------------

def _run_scan(node: ScanNode) -> Iterator[Row]:
    if node.index_column is not None:
        source = node.table.lookup(node.index_column, node.index_value)
    elif node.range_column is not None and node.range_bounds is not None:
        low, high, include_low, include_high = node.range_bounds
        source = node.table.range_lookup(node.range_column, low, high, include_low, include_high)
    else:
        source = node.table.scan()
    for raw in source:
        row = {f"{node.alias}.{column}": value for column, value in raw.items()}
        if all(_evaluate_predicate(predicate, row) for predicate in node.predicates):
            yield row


# ---------------------------------------------------------------------------
# Joins
# ---------------------------------------------------------------------------

def _run_hash_join(node: HashJoinNode) -> Iterator[Row]:
    build_rows = list(_run(node.right))
    index: Dict[object, List[Row]] = {}
    right_key = _qualified_name(node.right_key)
    for row in build_rows:
        index.setdefault(_row_value(row, right_key), []).append(row)
    left_key = _qualified_name(node.left_key)
    for left_row in _run(node.left):
        key = _row_value(left_row, left_key)
        for right_row in index.get(key, ()):
            combined = dict(left_row)
            combined.update(right_row)
            if all(_evaluate_predicate(p, combined) for p in node.residual):
                yield combined


def _run_nested_loop(node: NestedLoopJoinNode) -> Iterator[Row]:
    right_rows = list(_run(node.right))
    for left_row in _run(node.left):
        for right_row in right_rows:
            combined = dict(left_row)
            combined.update(right_row)
            if all(_evaluate_predicate(p, combined) for p in node.predicates):
                yield combined


# ---------------------------------------------------------------------------
# Projection and friends
# ---------------------------------------------------------------------------

def _run_project(node: ProjectNode) -> Iterator[Row]:
    for row in _run(node.child):
        yield _project_row(node, row)


def _project_row(node: ProjectNode, row: Row) -> Row:
    result: Row = {}
    for name, ref in node.columns:
        if ref is None and name == "*":
            for key, value in row.items():
                result[key.split(".", 1)[1]] = value
            continue
        if ref is not None and ref.column == "*":
            prefix = f"{ref.table}."
            for key, value in row.items():
                if key.startswith(prefix):
                    result[key.split(".", 1)[1]] = value
            continue
        result[name] = _row_value(row, _qualified_name(ref))
    return result


def _run_distinct(node: DistinctNode) -> Iterator[Row]:
    seen = set()
    for row in _run(node.child):
        key = tuple(sorted(row.items()))
        if key not in seen:
            seen.add(key)
            yield row


def _run_order(node: OrderNode) -> Iterator[Row]:
    rows = list(_run(node.child))

    def sort_key(row: Row):
        key = []
        for name, descending in node.keys:
            value = row.get(name)
            key.append(_Reversed(value) if descending else _Forward(value))
        return key

    rows.sort(key=sort_key)
    return iter(rows)


class _Forward:
    """Total-order wrapper tolerating None and mixed types."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def _rank(self):
        value = self.value
        if value is None:
            return (0, "")
        if isinstance(value, bool):
            return (1, value)
        if isinstance(value, (int, float)):
            return (2, value)
        return (3, str(value))

    def __lt__(self, other: "_Forward") -> bool:
        return self._rank() < other._rank()

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Forward) and self._rank() == other._rank()


class _Reversed(_Forward):
    def __lt__(self, other: "_Forward") -> bool:
        return other._rank() < self._rank()


def _run_limit(node: LimitNode) -> Iterator[Row]:
    count = 0
    for row in _run(node.child):
        if count >= node.limit:
            return
        count += 1
        yield row


# ---------------------------------------------------------------------------
# Predicate evaluation
# ---------------------------------------------------------------------------

def _qualified_name(ref: ColumnRef) -> str:
    return f"{ref.table}.{ref.column}" if ref.table else ref.column


def _row_value(row: Row, name: str) -> object:
    if name in row:
        return row[name]
    # Unqualified lookup: match a unique `alias.column` suffix.
    suffix = "." + name
    matches = [key for key in row if key.endswith(suffix)]
    if len(matches) == 1:
        return row[matches[0]]
    if not matches:
        raise SQLExecutionError(f"row has no column {name!r}")
    raise SQLExecutionError(f"ambiguous column {name!r} in row")


def _evaluate_predicate(predicate: object, row: Row) -> bool:
    if isinstance(predicate, Comparison):
        return _evaluate_comparison(predicate, row)
    if isinstance(predicate, InList):
        value = _operand_value(predicate.column, row)
        return value in predicate.values
    if isinstance(predicate, Like):
        value = _operand_value(predicate.column, row)
        if not isinstance(value, str):
            return False
        pattern = predicate.pattern.replace("%", "*").replace("_", "?")
        return fnmatch.fnmatch(value, pattern)
    raise SQLExecutionError(f"cannot evaluate predicate {predicate!r}")


def _operand_value(operand: object, row: Row) -> object:
    if isinstance(operand, ColumnRef):
        return _row_value(row, _qualified_name(operand))
    return operand


def _evaluate_comparison(predicate: Comparison, row: Row) -> bool:
    left = _operand_value(predicate.left, row)
    if predicate.op == "is null":
        return left is None
    if predicate.op == "is not null":
        return left is not None
    right = _operand_value(predicate.right, row)
    if predicate.op == "=":
        return left == right
    if predicate.op == "<>":
        return left != right
    if left is None or right is None:
        return False
    try:
        if predicate.op == "<":
            return left < right
        if predicate.op == "<=":
            return left <= right
        if predicate.op == ">":
            return left > right
        if predicate.op == ">=":
            return left >= right
    except TypeError:
        raise SQLExecutionError(
            f"cannot compare {left!r} and {right!r} with {predicate.op}"
        )
    raise SQLExecutionError(f"unknown comparison operator {predicate.op!r}")
