"""Query planner for the SQL subset.

The planner turns a parsed :class:`SelectStatement` into a small plan tree:

* per-table access paths — an index lookup when an equality predicate meets a
  hash index, an index range scan for inequalities over a sorted index, and a
  filtered full scan otherwise;
* a join order chosen greedily by estimated cardinality (statistics-driven,
  as the paper expects of the server Kleisli pushes joins to);
* hash joins for equi-join predicates, nested-loop joins otherwise;
* projection, DISTINCT, ORDER BY and LIMIT on top.

:func:`explain_query` renders the chosen plan as text; tests use it to verify
that index access and hash joins are actually selected.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ...core.errors import SQLExecutionError
from ..database import Database
from ..table import Table
from .ast import ColumnRef, Comparison, InList, Like, SelectStatement, TableRef
from .parser import parse_sql

__all__ = [
    "plan_query", "explain_query",
    "ScanNode", "HashJoinNode", "NestedLoopJoinNode",
    "ProjectNode", "DistinctNode", "OrderNode", "LimitNode", "PlanNode",
]


class PlanNode:
    """Base class of plan nodes."""

    def explain(self, indent: int = 0) -> str:
        raise NotImplementedError


class ScanNode(PlanNode):
    """Read one table (by alias), applying single-table predicates.

    ``index_column`` / ``index_value`` request an index equality lookup;
    ``range_column`` / bounds request a sorted-index range scan; otherwise the
    node is a filtered full scan.
    """

    def __init__(self, alias: str, table: Table, predicates: Sequence[object],
                 index_column: Optional[str] = None, index_value: object = None,
                 range_column: Optional[str] = None,
                 range_bounds: Optional[Tuple[object, object, bool, bool]] = None):
        self.alias = alias
        self.table = table
        self.predicates = list(predicates)
        self.index_column = index_column
        self.index_value = index_value
        self.range_column = range_column
        self.range_bounds = range_bounds

    @property
    def access_path(self) -> str:
        if self.index_column is not None:
            return f"index lookup on {self.index_column}"
        if self.range_column is not None:
            return f"index range scan on {self.range_column}"
        return "full scan"

    def estimated_rows(self) -> float:
        statistics = self.table.statistics
        rows = statistics.row_count or len(self.table)
        if self.index_column is not None:
            return max(1.0, statistics.estimate_equality_matches(self.index_column, rows))
        selectivity = 1.0
        for predicate in self.predicates:
            if isinstance(predicate, Comparison) and predicate.op == "=":
                selectivity *= 0.1
            else:
                selectivity *= 0.5
        return max(1.0, rows * selectivity)

    def explain(self, indent: int = 0) -> str:
        pad = "  " * indent
        preds = f" filter={self.predicates}" if self.predicates else ""
        return f"{pad}Scan {self.table.name} as {self.alias} [{self.access_path}]{preds}"


class HashJoinNode(PlanNode):
    """Equi-join: build a hash table on the right input's key, probe with the left."""

    def __init__(self, left: PlanNode, right: PlanNode, left_key: ColumnRef,
                 right_key: ColumnRef, residual: Sequence[object] = ()):
        self.left = left
        self.right = right
        self.left_key = left_key
        self.right_key = right_key
        self.residual = list(residual)

    def explain(self, indent: int = 0) -> str:
        pad = "  " * indent
        lines = [f"{pad}HashJoin {self.left_key!r} = {self.right_key!r}"]
        lines.append(self.left.explain(indent + 1))
        lines.append(self.right.explain(indent + 1))
        return "\n".join(lines)


class NestedLoopJoinNode(PlanNode):
    """Cartesian product filtered by the given predicates."""

    def __init__(self, left: PlanNode, right: PlanNode, predicates: Sequence[object] = ()):
        self.left = left
        self.right = right
        self.predicates = list(predicates)

    def explain(self, indent: int = 0) -> str:
        pad = "  " * indent
        lines = [f"{pad}NestedLoopJoin filter={self.predicates}"]
        lines.append(self.left.explain(indent + 1))
        lines.append(self.right.explain(indent + 1))
        return "\n".join(lines)


class ProjectNode(PlanNode):
    """Project the select list out of joined rows."""

    def __init__(self, child: PlanNode, columns: List[Tuple[str, Optional[ColumnRef]]]):
        self.child = child
        # Each entry is (output name, column ref) — column ref None means "*".
        self.columns = columns

    def explain(self, indent: int = 0) -> str:
        pad = "  " * indent
        names = ", ".join(name for name, _ in self.columns) or "*"
        return f"{pad}Project [{names}]\n" + self.child.explain(indent + 1)


class DistinctNode(PlanNode):
    def __init__(self, child: PlanNode):
        self.child = child

    def explain(self, indent: int = 0) -> str:
        return "  " * indent + "Distinct\n" + self.child.explain(indent + 1)


class OrderNode(PlanNode):
    def __init__(self, child: PlanNode, keys: List[Tuple[str, bool]]):
        self.child = child
        self.keys = keys

    def explain(self, indent: int = 0) -> str:
        rendered = ", ".join(f"{name} {'DESC' if desc else 'ASC'}" for name, desc in self.keys)
        return "  " * indent + f"Order [{rendered}]\n" + self.child.explain(indent + 1)


class LimitNode(PlanNode):
    def __init__(self, child: PlanNode, limit: int):
        self.child = child
        self.limit = limit

    def explain(self, indent: int = 0) -> str:
        return "  " * indent + f"Limit {self.limit}\n" + self.child.explain(indent + 1)


# ---------------------------------------------------------------------------
# Name resolution helpers
# ---------------------------------------------------------------------------

class _Resolver:
    """Resolves (possibly unqualified) column references to aliases."""

    def __init__(self, database: Database, tables: Sequence[TableRef]):
        self.aliases: Dict[str, Table] = {}
        for ref in tables:
            if ref.alias in self.aliases:
                raise SQLExecutionError(f"duplicate table alias {ref.alias!r}")
            self.aliases[ref.alias] = database.table(ref.name)

    def resolve(self, ref: ColumnRef) -> Tuple[str, str]:
        """Return (alias, column) for a column reference."""
        if ref.table is not None:
            if ref.table not in self.aliases:
                raise SQLExecutionError(f"unknown table alias {ref.table!r}")
            if ref.column != "*" and not self.aliases[ref.table].schema.has_column(ref.column):
                raise SQLExecutionError(
                    f"table {ref.table!r} has no column {ref.column!r}"
                )
            return ref.table, ref.column
        candidates = [alias for alias, table in self.aliases.items()
                      if table.schema.has_column(ref.column)]
        if not candidates:
            raise SQLExecutionError(f"unknown column {ref.column!r}")
        if len(candidates) > 1:
            raise SQLExecutionError(
                f"ambiguous column {ref.column!r}: present in {sorted(candidates)}"
            )
        return candidates[0], ref.column


def _predicate_aliases(predicate: object, resolver: _Resolver) -> List[str]:
    aliases: List[str] = []
    if isinstance(predicate, Comparison):
        for side in (predicate.left, predicate.right):
            if isinstance(side, ColumnRef):
                aliases.append(resolver.resolve(side)[0])
    elif isinstance(predicate, (InList, Like)):
        aliases.append(resolver.resolve(predicate.column)[0])
    return aliases


# ---------------------------------------------------------------------------
# Plan construction
# ---------------------------------------------------------------------------

def plan_query(database: Database, statement: SelectStatement) -> PlanNode:
    """Build a plan tree for ``statement`` against ``database``."""
    resolver = _Resolver(database, statement.tables)

    single_table: Dict[str, List[object]] = {alias: [] for alias in resolver.aliases}
    join_predicates: List[Comparison] = []
    for predicate in statement.predicates:
        aliases = _predicate_aliases(predicate, resolver)
        distinct_aliases = sorted(set(aliases))
        if len(distinct_aliases) <= 1:
            alias = distinct_aliases[0] if distinct_aliases else next(iter(resolver.aliases))
            single_table[alias].append(predicate)
        elif (isinstance(predicate, Comparison) and predicate.op == "="
              and isinstance(predicate.left, ColumnRef) and isinstance(predicate.right, ColumnRef)):
            join_predicates.append(predicate)
        else:
            join_predicates.append(predicate)

    scans = {alias: _build_scan(alias, resolver.aliases[alias], predicates, resolver)
             for alias, predicates in single_table.items()}

    plan = _build_join_tree(scans, join_predicates, resolver)

    columns = _resolve_select_list(statement, resolver)
    plan = ProjectNode(plan, columns)
    if statement.distinct:
        plan = DistinctNode(plan)
    if statement.order_by:
        keys = []
        for item in statement.order_by:
            name = item.column.column if item.column.table is None else \
                f"{item.column.table}.{item.column.column}"
            keys.append((name, item.descending))
        plan = OrderNode(plan, keys)
    if statement.limit is not None:
        plan = LimitNode(plan, statement.limit)
    return plan


def _build_scan(alias: str, table: Table, predicates: List[object],
                resolver: _Resolver) -> ScanNode:
    index_column = None
    index_value = None
    range_column = None
    range_bounds = None
    remaining: List[object] = []
    for predicate in predicates:
        if (index_column is None and isinstance(predicate, Comparison)
                and predicate.op == "="
                and isinstance(predicate.left, ColumnRef)
                and not isinstance(predicate.right, ColumnRef)):
            column = resolver.resolve(predicate.left)[1]
            if column in table.hash_indexes or column in table.sorted_indexes:
                index_column = column
                index_value = predicate.right
                continue
        if (range_column is None and index_column is None
                and isinstance(predicate, Comparison)
                and predicate.op in ("<", "<=", ">", ">=")
                and isinstance(predicate.left, ColumnRef)
                and not isinstance(predicate.right, ColumnRef)):
            column = resolver.resolve(predicate.left)[1]
            if column in table.sorted_indexes:
                range_column = column
                value = predicate.right
                if predicate.op in (">", ">="):
                    range_bounds = (value, None, predicate.op == ">=", True)
                else:
                    range_bounds = (None, value, True, predicate.op == "<=")
                continue
        remaining.append(predicate)
    return ScanNode(alias, table, remaining, index_column, index_value,
                    range_column, range_bounds)


def _build_join_tree(scans: Dict[str, ScanNode], join_predicates: List[Comparison],
                     resolver: _Resolver) -> PlanNode:
    if len(scans) == 1:
        return next(iter(scans.values()))

    remaining_aliases = dict(scans)
    remaining_predicates = list(join_predicates)

    # Start from the smallest estimated input.
    start_alias = min(remaining_aliases, key=lambda alias: remaining_aliases[alias].estimated_rows())
    plan: PlanNode = remaining_aliases.pop(start_alias)
    joined = {start_alias}

    while remaining_aliases:
        chosen = _choose_next_join(joined, remaining_aliases, remaining_predicates, resolver)
        if chosen is None:
            # No connecting predicate: fall back to a cross join with the smallest input.
            alias = min(remaining_aliases, key=lambda a: remaining_aliases[a].estimated_rows())
            plan = NestedLoopJoinNode(plan, remaining_aliases.pop(alias), [])
            joined.add(alias)
            continue
        alias, predicate, left_key, right_key = chosen
        right_scan = remaining_aliases.pop(alias)
        remaining_predicates.remove(predicate)
        residual = _take_residual_predicates(joined | {alias}, remaining_predicates, resolver)
        plan = HashJoinNode(plan, right_scan, left_key, right_key, residual)
        joined.add(alias)
    if remaining_predicates:
        plan = NestedLoopJoinNode(plan, _EmptyNode(), remaining_predicates)  # pragma: no cover
    return plan


class _EmptyNode(PlanNode):  # pragma: no cover - defensive only
    def explain(self, indent: int = 0) -> str:
        return "  " * indent + "Empty"


def _choose_next_join(joined: set, remaining: Dict[str, ScanNode],
                      predicates: List[Comparison], resolver: _Resolver):
    """Pick the (alias, predicate) pair connecting the joined set to a new table."""
    best = None
    best_rows = None
    for predicate in predicates:
        if not (isinstance(predicate.left, ColumnRef) and isinstance(predicate.right, ColumnRef)):
            continue
        left_alias, _ = resolver.resolve(predicate.left)
        right_alias, _ = resolver.resolve(predicate.right)
        if left_alias in joined and right_alias in remaining:
            alias, left_key, right_key = right_alias, predicate.left, predicate.right
        elif right_alias in joined and left_alias in remaining:
            alias, left_key, right_key = left_alias, predicate.right, predicate.left
        else:
            continue
        rows = remaining[alias].estimated_rows()
        if best_rows is None or rows < best_rows:
            best = (alias, predicate, left_key, right_key)
            best_rows = rows
    return best


def _take_residual_predicates(covered: set, predicates: List[Comparison],
                              resolver: _Resolver) -> List[object]:
    """Remove and return join predicates fully covered by the aliases joined so far."""
    residual = []
    for predicate in list(predicates):
        aliases = _predicate_aliases(predicate, resolver)
        if aliases and all(alias in covered for alias in aliases):
            residual.append(predicate)
            predicates.remove(predicate)
    return residual


def _resolve_select_list(statement: SelectStatement,
                         resolver: _Resolver) -> List[Tuple[str, Optional[ColumnRef]]]:
    columns: List[Tuple[str, Optional[ColumnRef]]] = []
    for item in statement.select_items:
        if item.star:
            columns.append(("*", None))
            continue
        ref = item.column
        if ref.column == "*":
            columns.append((f"{ref.table}.*", ref))
            continue
        resolver.resolve(ref)
        name = item.alias or ref.column
        columns.append((name, ref))
    return columns


def explain_query(database: Database, text: str) -> str:
    """Parse, plan and render the plan of a SQL query (used by tests and docs)."""
    statement = parse_sql(text)
    plan = plan_query(database, statement)
    return plan.explain()
