"""Lexer for the SQL subset."""

from __future__ import annotations

from typing import List, NamedTuple

from ...core.errors import SQLSyntaxError

__all__ = ["SQLToken", "tokenize_sql", "SQL_KEYWORDS"]


class SQLToken(NamedTuple):
    kind: str       # KEYWORD | IDENT | STRING | NUMBER | SYMBOL | EOF
    value: str
    position: int


SQL_KEYWORDS = {
    "select", "distinct", "from", "where", "and", "or", "order", "by",
    "asc", "desc", "limit", "in", "like", "as", "not", "null", "is",
}

_SYMBOLS = ["<>", "!=", "<=", ">=", "=", "<", ">", "(", ")", ",", ".", "*"]

_IDENT_CHARS = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_-")


def tokenize_sql(text: str) -> List[SQLToken]:
    """Tokenise SQL text; identifiers keep their case, keywords are lowercased."""
    tokens: List[SQLToken] = []
    pos = 0
    length = len(text)
    while pos < length:
        char = text[pos]
        if char.isspace():
            pos += 1
            continue
        if char == "'":
            end = pos + 1
            parts: List[str] = []
            while end < length:
                if text[end] == "'" and end + 1 < length and text[end + 1] == "'":
                    parts.append("'")
                    end += 2
                    continue
                if text[end] == "'":
                    break
                parts.append(text[end])
                end += 1
            if end >= length:
                raise SQLSyntaxError(f"unterminated string literal at position {pos}")
            tokens.append(SQLToken("STRING", "".join(parts), pos))
            pos = end + 1
            continue
        if char.isdigit() or (char == "-" and pos + 1 < length and text[pos + 1].isdigit()
                              and _previous_is_operator(tokens)):
            end = pos + 1
            while end < length and (text[end].isdigit() or text[end] == "."):
                end += 1
            tokens.append(SQLToken("NUMBER", text[pos:end], pos))
            pos = end
            continue
        if char.isalpha() or char == "_":
            end = pos
            while end < length and text[end] in _IDENT_CHARS:
                end += 1
            word = text[pos:end]
            if word.lower() in SQL_KEYWORDS:
                tokens.append(SQLToken("KEYWORD", word.lower(), pos))
            else:
                tokens.append(SQLToken("IDENT", word, pos))
            pos = end
            continue
        matched = False
        for symbol in _SYMBOLS:
            if text.startswith(symbol, pos):
                tokens.append(SQLToken("SYMBOL", symbol, pos))
                pos += len(symbol)
                matched = True
                break
        if not matched:
            raise SQLSyntaxError(f"unexpected character {char!r} at position {pos}")
    tokens.append(SQLToken("EOF", "", pos))
    return tokens


def _previous_is_operator(tokens: List[SQLToken]) -> bool:
    """A leading '-' is a negative-number sign only after an operator or '('."""
    if not tokens:
        return True
    last = tokens[-1]
    return last.kind == "SYMBOL" and last.value in ("=", "<>", "!=", "<", "<=", ">", ">=", "(", ",")
