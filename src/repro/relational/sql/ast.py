"""AST for the SQL subset."""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

__all__ = [
    "ColumnRef", "SelectItem", "TableRef", "Comparison", "InList", "Like",
    "SelectStatement", "OrderItem",
]


class ColumnRef:
    """A possibly table-qualified column reference."""

    __slots__ = ("table", "column")

    def __init__(self, column: str, table: Optional[str] = None):
        self.table = table
        self.column = column

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, ColumnRef)
                and (self.table, self.column) == (other.table, other.column))

    def __hash__(self) -> int:
        return hash((self.table, self.column))

    def __repr__(self) -> str:
        return f"{self.table}.{self.column}" if self.table else self.column


class SelectItem:
    """One item of the select list: a column (or ``*``) with an optional alias."""

    __slots__ = ("column", "alias", "star")

    def __init__(self, column: Optional[ColumnRef] = None, alias: Optional[str] = None,
                 star: bool = False):
        self.column = column
        self.alias = alias
        self.star = star

    def __repr__(self) -> str:
        if self.star:
            return "*"
        rendered = repr(self.column)
        return f"{rendered} AS {self.alias}" if self.alias else rendered


class TableRef:
    """A table in the FROM list, with an optional alias."""

    __slots__ = ("name", "alias")

    def __init__(self, name: str, alias: Optional[str] = None):
        self.name = name
        self.alias = alias or name

    def __repr__(self) -> str:
        return self.name if self.alias == self.name else f"{self.name} {self.alias}"


class Comparison:
    """``left op right`` where either side is a :class:`ColumnRef` or a constant."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: object, right: object):
        self.op = op
        self.left = left
        self.right = right

    def __repr__(self) -> str:
        return f"{self.left!r} {self.op} {self.right!r}"


class InList:
    """``column IN (v1, v2, ...)``."""

    __slots__ = ("column", "values")

    def __init__(self, column: ColumnRef, values: Sequence[object]):
        self.column = column
        self.values = list(values)

    def __repr__(self) -> str:
        return f"{self.column!r} IN {tuple(self.values)!r}"


class Like:
    """``column LIKE pattern`` with ``%`` wildcards."""

    __slots__ = ("column", "pattern")

    def __init__(self, column: ColumnRef, pattern: str):
        self.column = column
        self.pattern = pattern

    def __repr__(self) -> str:
        return f"{self.column!r} LIKE {self.pattern!r}"


class OrderItem:
    """One ORDER BY key."""

    __slots__ = ("column", "descending")

    def __init__(self, column: ColumnRef, descending: bool = False):
        self.column = column
        self.descending = descending

    def __repr__(self) -> str:
        return f"{self.column!r} {'DESC' if self.descending else 'ASC'}"


class SelectStatement:
    """A parsed SELECT statement."""

    def __init__(self, select_items: Sequence[SelectItem], tables: Sequence[TableRef],
                 predicates: Sequence[object] = (), order_by: Sequence[OrderItem] = (),
                 limit: Optional[int] = None, distinct: bool = False):
        self.select_items = list(select_items)
        self.tables = list(tables)
        self.predicates = list(predicates)
        self.order_by = list(order_by)
        self.limit = limit
        self.distinct = distinct

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (f"SelectStatement(select={self.select_items}, from={self.tables}, "
                f"where={self.predicates})")
