"""Parser for the SQL subset."""

from __future__ import annotations

from typing import List, Optional

from ...core.errors import SQLSyntaxError
from .ast import (
    ColumnRef,
    Comparison,
    InList,
    Like,
    OrderItem,
    SelectItem,
    SelectStatement,
    TableRef,
)
from .lexer import SQLToken, tokenize_sql

__all__ = ["parse_sql"]

_COMPARISON_SYMBOLS = {"=", "<>", "!=", "<", "<=", ">", ">="}


def parse_sql(text: str) -> SelectStatement:
    """Parse a SELECT statement of the supported subset."""
    return _SQLParser(tokenize_sql(text)).parse_select()


class _SQLParser:

    def __init__(self, tokens: List[SQLToken]):
        self.tokens = tokens
        self.position = 0

    def _peek(self, offset: int = 0) -> SQLToken:
        index = min(self.position + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _advance(self) -> SQLToken:
        token = self._peek()
        if token.kind != "EOF":
            self.position += 1
        return token

    def _accept_keyword(self, word: str) -> bool:
        token = self._peek()
        if token.kind == "KEYWORD" and token.value == word:
            self._advance()
            return True
        return False

    def _accept_symbol(self, symbol: str) -> bool:
        token = self._peek()
        if token.kind == "SYMBOL" and token.value == symbol:
            self._advance()
            return True
        return False

    def _expect_keyword(self, word: str) -> None:
        if not self._accept_keyword(word):
            token = self._peek()
            raise SQLSyntaxError(
                f"expected keyword {word!r} at position {token.position}, found {token.value!r}"
            )

    def _expect_symbol(self, symbol: str) -> None:
        if not self._accept_symbol(symbol):
            token = self._peek()
            raise SQLSyntaxError(
                f"expected {symbol!r} at position {token.position}, found {token.value!r}"
            )

    def _expect_ident(self) -> str:
        token = self._peek()
        if token.kind != "IDENT":
            raise SQLSyntaxError(
                f"expected an identifier at position {token.position}, found {token.value!r}"
            )
        self._advance()
        return token.value

    # -- grammar ---------------------------------------------------------------

    def parse_select(self) -> SelectStatement:
        self._expect_keyword("select")
        distinct = self._accept_keyword("distinct")
        select_items = self._parse_select_list()
        self._expect_keyword("from")
        tables = self._parse_table_list()
        predicates: List[object] = []
        if self._accept_keyword("where"):
            predicates = self._parse_predicates()
        order_by: List[OrderItem] = []
        if self._accept_keyword("order"):
            self._expect_keyword("by")
            order_by = self._parse_order_by()
        limit: Optional[int] = None
        if self._accept_keyword("limit"):
            token = self._peek()
            if token.kind != "NUMBER":
                raise SQLSyntaxError(f"expected a number after LIMIT, found {token.value!r}")
            self._advance()
            limit = int(float(token.value))
        token = self._peek()
        if token.kind != "EOF":
            raise SQLSyntaxError(
                f"unexpected trailing SQL starting with {token.value!r} at position {token.position}"
            )
        return SelectStatement(select_items, tables, predicates, order_by, limit, distinct)

    def _parse_order_by(self) -> List[OrderItem]:
        items = [self._parse_order_item()]
        while self._accept_symbol(","):
            items.append(self._parse_order_item())
        return items

    def _parse_order_item(self) -> OrderItem:
        column = self._parse_column_ref()
        descending = False
        if self._accept_keyword("desc"):
            descending = True
        else:
            self._accept_keyword("asc")
        return OrderItem(column, descending)

    def _parse_select_list(self) -> List[SelectItem]:
        items = [self._parse_select_item()]
        while self._accept_symbol(","):
            items.append(self._parse_select_item())
        return items

    def _parse_select_item(self) -> SelectItem:
        if self._accept_symbol("*"):
            return SelectItem(star=True)
        column = self._parse_column_ref()
        alias = None
        if self._accept_keyword("as"):
            alias = self._expect_ident()
        elif self._peek().kind == "IDENT":
            alias = self._advance().value
        return SelectItem(column=column, alias=alias)

    def _parse_column_ref(self) -> ColumnRef:
        first = self._expect_ident()
        if self._accept_symbol("."):
            if self._accept_symbol("*"):
                # ``table.*`` — represent as a star item scoped by table.
                return ColumnRef("*", table=first)
            second = self._expect_ident()
            return ColumnRef(second, table=first)
        return ColumnRef(first)

    def _parse_table_list(self) -> List[TableRef]:
        tables = [self._parse_table_ref()]
        while self._accept_symbol(","):
            tables.append(self._parse_table_ref())
        return tables

    def _parse_table_ref(self) -> TableRef:
        name = self._expect_ident()
        alias = None
        if self._accept_keyword("as"):
            alias = self._expect_ident()
        elif self._peek().kind == "IDENT":
            alias = self._advance().value
        return TableRef(name, alias)

    def _parse_predicates(self) -> List[object]:
        predicates = [self._parse_predicate()]
        while self._accept_keyword("and"):
            predicates.append(self._parse_predicate())
        if self._peek().kind == "KEYWORD" and self._peek().value == "or":
            raise SQLSyntaxError("OR is not supported in the WHERE clause of this SQL subset")
        return predicates

    def _parse_predicate(self) -> object:
        left = self._parse_operand()
        token = self._peek()
        if token.kind == "KEYWORD" and token.value == "in":
            if not isinstance(left, ColumnRef):
                raise SQLSyntaxError("IN requires a column on its left-hand side")
            self._advance()
            self._expect_symbol("(")
            values = [self._parse_constant()]
            while self._accept_symbol(","):
                values.append(self._parse_constant())
            self._expect_symbol(")")
            return InList(left, values)
        if token.kind == "KEYWORD" and token.value == "like":
            if not isinstance(left, ColumnRef):
                raise SQLSyntaxError("LIKE requires a column on its left-hand side")
            self._advance()
            pattern_token = self._peek()
            if pattern_token.kind != "STRING":
                raise SQLSyntaxError("LIKE requires a string pattern")
            self._advance()
            return Like(left, pattern_token.value)
        if token.kind == "KEYWORD" and token.value == "is":
            self._advance()
            negated = self._accept_keyword("not")
            self._expect_keyword("null")
            return Comparison("is not null" if negated else "is null", left, None)
        if token.kind == "SYMBOL" and token.value in _COMPARISON_SYMBOLS:
            self._advance()
            right = self._parse_operand()
            op = "<>" if token.value == "!=" else token.value
            return Comparison(op, left, right)
        raise SQLSyntaxError(f"expected a comparison operator at position {token.position}")

    def _parse_operand(self) -> object:
        token = self._peek()
        if token.kind == "IDENT":
            return self._parse_column_ref()
        return self._parse_constant()

    def _parse_constant(self) -> object:
        token = self._peek()
        if token.kind == "STRING":
            self._advance()
            return token.value
        if token.kind == "NUMBER":
            self._advance()
            if "." in token.value:
                return float(token.value)
            return int(token.value)
        if token.kind == "KEYWORD" and token.value == "null":
            self._advance()
            return None
        raise SQLSyntaxError(f"expected a constant at position {token.position}, found {token.value!r}")
