"""The SQL subset understood by the relational substrate.

Grammar (roughly)::

    SELECT [DISTINCT] select_list
    FROM table [alias] ("," table [alias])*
    [WHERE predicate (AND predicate)*]
    [ORDER BY column [ASC|DESC] ("," column [ASC|DESC])*]
    [LIMIT n]

with predicates ``column op constant``, ``column op column``, ``column IN
(constants)`` and ``column LIKE pattern`` (``%`` wildcards).  This covers the
SQL the paper's optimizer generates when pushing CPL selections, projections
and joins to the server (the Loci22 example), with a planner that uses indexes
and statistics the way a real server would.
"""

from .parser import parse_sql
from .executor import execute_sql
from .planner import plan_query, explain_query

__all__ = ["parse_sql", "execute_sql", "plan_query", "explain_query"]
