"""Per-table statistics.

The paper's join rule set "requires statistics about the size of files"; on
the server side those statistics also drive the SQL planner's choice between
index lookups and scans.  We keep the classical basics: row count, per-column
distinct-value counts, and min/max for ordered columns, refreshed either
incrementally on insert or by an explicit ``analyze``.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

__all__ = ["ColumnStatistics", "TableStatistics"]


class ColumnStatistics:
    """Distinct count and min/max for one column."""

    def __init__(self, column: str):
        self.column = column
        self.distinct_values = 0
        self.null_count = 0
        self.minimum: Optional[object] = None
        self.maximum: Optional[object] = None

    def refresh(self, values: Iterable[object]) -> None:
        seen = set()
        self.null_count = 0
        self.minimum = None
        self.maximum = None
        for value in values:
            if value is None:
                self.null_count += 1
                continue
            seen.add(value)
            if self.minimum is None or value < self.minimum:
                self.minimum = value
            if self.maximum is None or value > self.maximum:
                self.maximum = value
        self.distinct_values = len(seen)

    def selectivity_equality(self, row_count: int) -> float:
        """Estimated fraction of rows matching ``column = constant``."""
        if row_count == 0 or self.distinct_values == 0:
            return 0.0
        return 1.0 / self.distinct_values

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (f"ColumnStatistics({self.column}, distinct={self.distinct_values}, "
                f"min={self.minimum!r}, max={self.maximum!r})")


class TableStatistics:
    """Row count plus per-column statistics for one table."""

    def __init__(self, table_name: str):
        self.table_name = table_name
        self.row_count = 0
        self.columns: Dict[str, ColumnStatistics] = {}

    def refresh(self, column_values: Dict[str, Iterable[object]], row_count: int) -> None:
        self.row_count = row_count
        for column, values in column_values.items():
            stats = self.columns.setdefault(column, ColumnStatistics(column))
            stats.refresh(values)

    def column(self, name: str) -> ColumnStatistics:
        return self.columns.setdefault(name, ColumnStatistics(name))

    def estimate_equality_matches(self, column: str, row_count: Optional[int] = None) -> float:
        rows = self.row_count if row_count is None else row_count
        return rows * self.column(column).selectivity_equality(rows)

    def as_dict(self) -> Dict[str, object]:
        return {
            "table": self.table_name,
            "rows": self.row_count,
            "columns": {
                name: {
                    "distinct": stats.distinct_values,
                    "nulls": stats.null_count,
                    "min": stats.minimum,
                    "max": stats.maximum,
                }
                for name, stats in self.columns.items()
            },
        }

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"TableStatistics({self.table_name}, rows={self.row_count})"
