"""A small in-process relational engine.

This package stands in for the Sybase server hosting GDB in the paper: it is
the external system the relational Kleisli driver talks SQL to, and the target
of the optimizer's selection/projection/join pushdown (experiment E4).

It is intentionally a *database engine*, not a list of dicts: it has a schema
catalog, typed columns, primary keys, secondary indexes, per-table statistics
and a SQL subset with its own parser, planner and executor — because the
paper's point is that the pushed-down SQL can exploit "pre-computed indexes
and table statistics" on the server side.
"""

from .schema import Column, TableSchema
from .table import Table
from .database import Database
from .indexes import HashIndex, SortedIndex
from .statistics import TableStatistics
from .sql.parser import parse_sql
from .sql.executor import execute_sql

__all__ = [
    "Column", "TableSchema", "Table", "Database",
    "HashIndex", "SortedIndex", "TableStatistics",
    "parse_sql", "execute_sql",
]
