"""The database: a catalog of tables plus the SQL entry point."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from ..core.errors import SQLExecutionError, SchemaError
from .schema import Column, TableSchema
from .table import Table

__all__ = ["Database"]


class Database:
    """A named collection of tables with a tiny catalog.

    The Kleisli relational driver holds one of these per "server" it is
    connected to, and sends it SQL text through :meth:`sql`.
    """

    def __init__(self, name: str = "db"):
        self.name = name
        self.tables: Dict[str, Table] = {}

    # -- schema management --------------------------------------------------------

    def create_table(self, schema: TableSchema) -> Table:
        if schema.name in self.tables:
            raise SchemaError(f"table {schema.name!r} already exists in database {self.name!r}")
        table = Table(schema)
        self.tables[schema.name] = table
        return table

    def create_table_from_spec(self, name: str, spec: Dict[str, str],
                               primary_key: Optional[Sequence[str]] = None) -> Table:
        return self.create_table(TableSchema.from_spec(name, spec, primary_key))

    def drop_table(self, name: str) -> None:
        if name not in self.tables:
            raise SchemaError(f"cannot drop unknown table {name!r}")
        del self.tables[name]

    def table(self, name: str) -> Table:
        try:
            return self.tables[name]
        except KeyError:
            raise SQLExecutionError(f"unknown table {name!r} in database {self.name!r}")

    def has_table(self, name: str) -> bool:
        return name in self.tables

    def table_names(self) -> List[str]:
        return sorted(self.tables)

    # -- maintenance -----------------------------------------------------------------

    def analyze(self) -> Dict[str, object]:
        """Refresh statistics on every table; return a summary."""
        return {name: table.analyze().as_dict() for name, table in sorted(self.tables.items())}

    # -- querying ---------------------------------------------------------------------

    def sql(self, text: str) -> List[Dict[str, object]]:
        """Parse and execute a SQL statement, returning rows as mappings."""
        from .sql.executor import execute_sql

        return execute_sql(self, text)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Database({self.name}, tables={self.table_names()})"
