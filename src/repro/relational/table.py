"""The table: rows, indexes and statistics."""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..core.errors import SchemaError
from .indexes import HashIndex, SortedIndex
from .schema import TableSchema
from .statistics import TableStatistics

__all__ = ["Table"]


class Table:
    """A heap of rows with a schema, optional indexes and statistics.

    Rows are stored as tuples in schema column order.  Primary-key uniqueness
    is enforced on insert.  Secondary indexes are created explicitly (the GDB
    stand-in creates them on join columns, mirroring "pre-computed indexes" on
    the server) and maintained incrementally.
    """

    def __init__(self, schema: TableSchema):
        self.schema = schema
        self.rows: List[Tuple[object, ...]] = []
        self.hash_indexes: Dict[str, HashIndex] = {}
        self.sorted_indexes: Dict[str, SortedIndex] = {}
        self.statistics = TableStatistics(schema.name)
        self._primary_key_values: set = set()

    @property
    def name(self) -> str:
        return self.schema.name

    def __len__(self) -> int:
        return len(self.rows)

    # -- loading ---------------------------------------------------------------

    def insert(self, row: Dict[str, object]) -> None:
        """Insert one mapping row, enforcing types and primary-key uniqueness."""
        values = self.schema.validate_row(row)
        if self.schema.primary_key:
            key = tuple(values[self.schema.position(col)] for col in self.schema.primary_key)
            if key in self._primary_key_values:
                raise SchemaError(
                    f"duplicate primary key {key!r} in table {self.schema.name!r}"
                )
            self._primary_key_values.add(key)
        position = len(self.rows)
        self.rows.append(values)
        for column, index in self.hash_indexes.items():
            index.add(values[self.schema.position(column)], position)
        for column, index in self.sorted_indexes.items():
            index.add(values[self.schema.position(column)], position)

    def insert_many(self, rows: Iterable[Dict[str, object]]) -> int:
        count = 0
        for row in rows:
            self.insert(row)
            count += 1
        return count

    # -- indexes ------------------------------------------------------------------

    def create_hash_index(self, column: str) -> HashIndex:
        position = self.schema.position(column)
        index = HashIndex(column)
        index.rebuild(row[position] for row in self.rows)
        self.hash_indexes[column] = index
        return index

    def create_sorted_index(self, column: str) -> SortedIndex:
        position = self.schema.position(column)
        index = SortedIndex(column)
        index.rebuild(row[position] for row in self.rows)
        self.sorted_indexes[column] = index
        return index

    def has_index(self, column: str) -> bool:
        return column in self.hash_indexes or column in self.sorted_indexes

    # -- statistics -----------------------------------------------------------------

    def analyze(self) -> TableStatistics:
        """Refresh statistics over the current contents (ANALYZE)."""
        column_values = {
            column.name: [row[position] for row in self.rows]
            for position, column in enumerate(self.schema.columns)
        }
        self.statistics.refresh(column_values, len(self.rows))
        return self.statistics

    # -- access ------------------------------------------------------------------------

    def scan(self) -> Iterator[Dict[str, object]]:
        """Yield every row as a mapping (a full table scan)."""
        names = self.schema.column_names
        for row in self.rows:
            yield dict(zip(names, row))

    def row_at(self, position: int) -> Dict[str, object]:
        return dict(zip(self.schema.column_names, self.rows[position]))

    def lookup(self, column: str, value: object) -> List[Dict[str, object]]:
        """Exact-match lookup, via an index when one exists."""
        if column in self.hash_indexes:
            positions = self.hash_indexes[column].lookup(value)
            return [self.row_at(position) for position in positions]
        if column in self.sorted_indexes:
            positions = self.sorted_indexes[column].lookup(value)
            return [self.row_at(position) for position in positions]
        position = self.schema.position(column)
        return [self.row_at(i) for i, row in enumerate(self.rows) if row[position] == value]

    def range_lookup(self, column: str, low: Optional[object] = None,
                     high: Optional[object] = None, include_low: bool = True,
                     include_high: bool = True) -> List[Dict[str, object]]:
        """Range lookup, via a sorted index when one exists."""
        if column in self.sorted_indexes:
            positions = self.sorted_indexes[column].range(low, high, include_low, include_high)
            return [self.row_at(position) for position in positions]
        position = self.schema.position(column)
        result = []
        for i, row in enumerate(self.rows):
            value = row[position]
            if value is None:
                continue
            if low is not None and (value < low or (value == low and not include_low)):
                continue
            if high is not None and (value > high or (value == high and not include_high)):
                continue
            result.append(self.row_at(i))
        return result

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Table({self.schema.name}, {len(self.rows)} rows)"
