"""Relational schema objects: columns and table schemas."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.errors import SchemaError

__all__ = ["Column", "TableSchema"]

_VALID_TYPES = ("int", "float", "string", "bool")

_PYTHON_TYPES = {
    "int": (int,),
    "float": (int, float),
    "string": (str,),
    "bool": (bool,),
}


class Column:
    """A typed column, optionally nullable."""

    __slots__ = ("name", "type", "nullable")

    def __init__(self, name: str, type: str = "string", nullable: bool = True):
        if type not in _VALID_TYPES:
            raise SchemaError(f"unknown column type {type!r} (expected one of {_VALID_TYPES})")
        self.name = name
        self.type = type
        self.nullable = nullable

    def validate(self, value: object) -> object:
        """Check (and lightly coerce) a value against this column's type."""
        if value is None:
            if not self.nullable:
                raise SchemaError(f"column {self.name!r} is not nullable")
            return None
        if self.type == "bool":
            if not isinstance(value, bool):
                raise SchemaError(f"column {self.name!r} expects a bool, got {value!r}")
            return value
        if self.type == "int":
            if isinstance(value, bool) or not isinstance(value, int):
                raise SchemaError(f"column {self.name!r} expects an int, got {value!r}")
            return value
        if self.type == "float":
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise SchemaError(f"column {self.name!r} expects a number, got {value!r}")
            return float(value)
        if not isinstance(value, str):
            raise SchemaError(f"column {self.name!r} expects a string, got {value!r}")
        return value

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        suffix = "" if self.nullable else " not null"
        return f"{self.name} {self.type}{suffix}"


class TableSchema:
    """The schema of a table: ordered columns plus an optional primary key."""

    def __init__(self, name: str, columns: Sequence[Column],
                 primary_key: Optional[Sequence[str]] = None):
        self.name = name
        self.columns: Tuple[Column, ...] = tuple(columns)
        self.column_index: Dict[str, int] = {}
        for index, column in enumerate(self.columns):
            if column.name in self.column_index:
                raise SchemaError(f"duplicate column {column.name!r} in table {name!r}")
            self.column_index[column.name] = index
        self.primary_key: Tuple[str, ...] = tuple(primary_key or ())
        for key_column in self.primary_key:
            if key_column not in self.column_index:
                raise SchemaError(
                    f"primary key column {key_column!r} is not a column of table {name!r}"
                )

    @classmethod
    def from_spec(cls, name: str, spec: Dict[str, str],
                  primary_key: Optional[Sequence[str]] = None) -> "TableSchema":
        """Build a schema from ``{"column": "type"}`` shorthand."""
        return cls(name, [Column(col, ty) for col, ty in spec.items()], primary_key)

    @property
    def column_names(self) -> List[str]:
        return [column.name for column in self.columns]

    def column(self, name: str) -> Column:
        try:
            return self.columns[self.column_index[name]]
        except KeyError:
            raise SchemaError(f"table {self.name!r} has no column {name!r}")

    def has_column(self, name: str) -> bool:
        return name in self.column_index

    def position(self, name: str) -> int:
        try:
            return self.column_index[name]
        except KeyError:
            raise SchemaError(f"table {self.name!r} has no column {name!r}")

    def validate_row(self, row: Dict[str, object]) -> Tuple[object, ...]:
        """Validate a mapping row and return it as a tuple in column order."""
        unknown = set(row) - set(self.column_index)
        if unknown:
            raise SchemaError(f"row has unknown columns {sorted(unknown)} for table {self.name!r}")
        values: List[object] = []
        for column in self.columns:
            values.append(column.validate(row.get(column.name)))
        return tuple(values)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        cols = ", ".join(repr(column) for column in self.columns)
        return f"TableSchema({self.name}: {cols})"
