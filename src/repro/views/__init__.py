"""Multidatabase user views (Section 3 and Figure 1 of the paper).

The paper's intended users *"are not database experts"*, so the system exposes
"multidatabase user-views": parameterised CPL functions over several sources,
*"programmed with special purpose GUIs such as the one shown in Figure 1"* —
the Mosaic form at ``cgi-bin/cpl/mapsearch1.html`` that lets a biologist pick
a chromosome and cytogenetic band interval and get back the DOE query's
nested answer.

This subpackage reproduces that layer:

* :class:`~repro.views.parameters.ViewParameter` — one form field: a name,
  kind, optional choice list ("valid bands are listed") and default.
* :class:`~repro.views.view.UserView` — a parameterised CPL query over the
  registered sources plus the output format it should be rendered in.
* :class:`~repro.views.registry.ViewRegistry` — the set of views a site
  publishes.
* :mod:`~repro.views.forms` — HTML rendering: the Figure-1 form, the result
  page, and the view index.
* :class:`~repro.views.gateway.ViewGateway` — the CGI-style entry point that
  takes a form submission (a dict of strings), validates it, executes the
  view's CPL, and returns an HTML response.
* :mod:`~repro.views.mapsearch` — the Figure-1 map-search view itself, built
  over the synthetic chromosome-22 scenario.
"""

from .parameters import ViewError, ViewParameter, ViewParameterError
from .view import UserView, ViewResult
from .registry import ViewRegistry
from .forms import render_form, render_index, render_result_page
from .gateway import ViewGateway, ViewResponse
from .mapsearch import build_mapsearch_view, mapsearch_session

__all__ = [
    "ViewError", "ViewParameter", "ViewParameterError",
    "UserView", "ViewResult", "ViewRegistry",
    "render_form", "render_index", "render_result_page",
    "ViewGateway", "ViewResponse",
    "build_mapsearch_view", "mapsearch_session",
]
