"""View parameters: the typed form fields of a multidatabase user view.

Figure 1's form has a chromosome selector and a band-interval selector with
the caption *"valid bands are listed"*; a :class:`ViewParameter` captures that
idea — a named, typed, optionally enumerated input that arrives from a form
as a string and must be validated and coerced before it is bound into the
view's CPL query.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..core.errors import ReproError

__all__ = ["ViewError", "ViewParameterError", "ViewParameter"]


class ViewError(ReproError):
    """Base class for errors raised by the user-view layer."""


class ViewParameterError(ViewError):
    """A form value is missing, malformed, or outside the allowed choices."""


_KINDS = ("string", "int", "float", "bool", "choice")


class ViewParameter:
    """One parameter of a user view.

    ``kind`` is one of ``string``, ``int``, ``float``, ``bool`` or ``choice``;
    ``choice`` parameters must supply ``choices`` (the values offered by the
    form's ``<select>``).  ``default`` makes the parameter optional: a missing
    or blank submission falls back to it.
    """

    def __init__(self, name: str, kind: str = "string", *, label: Optional[str] = None,
                 required: bool = True, default: Optional[object] = None,
                 choices: Optional[Sequence[str]] = None, help: str = ""):
        if kind not in _KINDS:
            raise ViewError(f"unknown parameter kind {kind!r}; expected one of {_KINDS}")
        if kind == "choice" and not choices:
            raise ViewError(f"parameter {name!r} is a choice but no choices were given")
        self.name = name
        self.kind = kind
        self.label = label or name.replace("_", " ").replace("-", " ")
        self.required = required
        self.default = default
        self.choices: List[str] = list(choices or [])
        self.help = help

    # -- coercion -----------------------------------------------------------

    def coerce(self, raw: Optional[str]) -> object:
        """Turn a raw form string into a typed value, or raise :class:`ViewParameterError`."""
        if raw is None or (isinstance(raw, str) and raw.strip() == ""):
            if self.default is not None:
                return self.default
            if not self.required:
                return None
            raise ViewParameterError(f"parameter {self.name!r} is required")
        if not isinstance(raw, str):
            # Programmatic callers may pass typed values directly.
            return self._check_choice(raw)
        text = raw.strip()
        if self.kind == "int":
            try:
                return int(text)
            except ValueError:
                raise ViewParameterError(f"parameter {self.name!r} expects an integer, got {raw!r}")
        if self.kind == "float":
            try:
                return float(text)
            except ValueError:
                raise ViewParameterError(f"parameter {self.name!r} expects a number, got {raw!r}")
        if self.kind == "bool":
            lowered = text.lower()
            if lowered in ("true", "yes", "on", "1"):
                return True
            if lowered in ("false", "no", "off", "0"):
                return False
            raise ViewParameterError(f"parameter {self.name!r} expects a boolean, got {raw!r}")
        return self._check_choice(text)

    def _check_choice(self, value: object) -> object:
        if self.kind == "choice" and value not in self.choices:
            raise ViewParameterError(
                f"parameter {self.name!r} must be one of the listed values, got {value!r}"
            )
        return value

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"ViewParameter({self.name!r}, kind={self.kind!r})"
