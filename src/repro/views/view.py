"""User views: parameterised CPL queries packaged for non-expert users.

A :class:`UserView` is the paper's "multidatabase user-view": it is *not* a
simple integration of underlying databases but a *generalised intended use* of
them — a CPL query (often touching several drivers and restructuring their
data) whose free variables are filled in from a form.  Figure 1's map-search
form is one; ``views/mapsearch.py`` rebuilds it.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from ..kleisli.session import Session
from .parameters import ViewError, ViewParameter

__all__ = ["UserView", "ViewResult"]


class ViewResult:
    """The outcome of executing a view: the CPL value plus the bound parameters."""

    def __init__(self, view: "UserView", value: object, parameters: Dict[str, object]):
        self.view = view
        self.value = value
        self.parameters = parameters

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"ViewResult({self.view.name!r}, {len(self.parameters)} parameters)"


class UserView:
    """A parameterised CPL query published to non-expert users.

    ``query`` is a CPL expression whose free variables include the parameter
    names; ``setup`` is an optional CPL program (typically ``define``
    statements such as ``ASN-IDs``) run once per session before the first
    execution.  ``output`` selects how the gateway renders the result:
    ``"html"`` (nested tables), ``"tabular"`` (tab-delimited rows) or
    ``"value"`` (CPL value syntax).
    """

    _OUTPUTS = ("html", "tabular", "value")

    def __init__(self, name: str, query: str, *, title: Optional[str] = None,
                 description: str = "", parameters: Sequence[ViewParameter] = (),
                 setup: Optional[str] = None, output: str = "html"):
        if output not in self._OUTPUTS:
            raise ViewError(f"unknown output format {output!r}; expected one of {self._OUTPUTS}")
        names = [parameter.name for parameter in parameters]
        if len(names) != len(set(names)):
            raise ViewError(f"view {name!r} declares duplicate parameter names")
        self.name = name
        self.query = query
        self.title = title or name.replace("_", " ").replace("-", " ")
        self.description = description
        self.parameters: List[ViewParameter] = list(parameters)
        self.setup = setup
        self.output = output
        self._setup_done_for: set = set()

    # -- parameters -----------------------------------------------------------

    def parameter(self, name: str) -> ViewParameter:
        for parameter in self.parameters:
            if parameter.name == name:
                return parameter
        raise ViewError(f"view {self.name!r} has no parameter {name!r}")

    def coerce_parameters(self, form: Mapping[str, object]) -> Dict[str, object]:
        """Validate and coerce a form submission into typed parameter values."""
        unknown = set(form) - {parameter.name for parameter in self.parameters}
        if unknown:
            raise ViewError(
                f"view {self.name!r} does not accept parameter(s) {sorted(unknown)!r}"
            )
        values: Dict[str, object] = {}
        for parameter in self.parameters:
            coerced = parameter.coerce(form.get(parameter.name))
            if coerced is not None:
                values[parameter.name] = coerced
        return values

    # -- execution -------------------------------------------------------------

    def run(self, session: Session, form: Optional[Mapping[str, object]] = None,
            optimize: bool = True) -> ViewResult:
        """Execute the view in ``session`` with the given form values.

        Parameter values are bound under their own names for the duration of
        the query and the session's previous bindings are restored afterwards,
        so running a view never leaks its parameters into the session.
        """
        values = self.coerce_parameters(form or {})
        self._ensure_setup(session)
        saved = {name: session.values[name] for name in values if name in session.values}
        try:
            for name, value in values.items():
                session.bind(name, value)
            result_value = session.run(self.query, optimize=optimize)
        finally:
            for name in values:
                session.values.pop(name, None)
            for name, previous in saved.items():
                session.values[name] = previous
        return ViewResult(self, result_value, values)

    def _ensure_setup(self, session: Session) -> None:
        if self.setup is None or id(session) in self._setup_done_for:
            return
        session.run(self.setup)
        self._setup_done_for.add(id(session))

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"UserView({self.name!r}, {len(self.parameters)} parameters)"
