"""The CGI-style gateway in front of the view registry.

The paper's executable Figure-1 screen lived at
``http://agave.humgen.upenn.edu/cgi-bin/cpl/mapsearch1.html``: Mosaic submits
the form, a CGI script binds the parameters into a CPL function, Kleisli runs
it, and the answer comes back as HTML.  :class:`ViewGateway` is that script's
in-process equivalent — it needs no web server, so tests and examples can
drive it directly, but its request/response shape (a path-like view name plus
a dict of form strings in, status + content type + body out) matches what a
CGI or WSGI wrapper would need.
"""

from __future__ import annotations

from typing import Mapping, Optional

from ..core.errors import ReproError
from ..kleisli.session import Session
from .forms import render_form, render_index, render_result_page
from .parameters import ViewError, ViewParameterError
from .registry import ViewRegistry

__all__ = ["ViewGateway", "ViewResponse"]


class ViewResponse:
    """A minimal HTTP-ish response: status code, content type, body, and the value."""

    def __init__(self, status: int, body: str, content_type: str = "text/html",
                 value: object = None):
        self.status = status
        self.body = body
        self.content_type = content_type
        self.value = value

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    def as_payload(self) -> dict:
        """The JSON-safe shape of this response (status, content type, body).

        The query service (:mod:`repro.server`) sends this over the wire for
        ``view`` ops; the CPL ``value`` is *not* included — callers that want
        it must encode it themselves (the server uses its wire codec).
        """
        return {"status": self.status, "content_type": self.content_type,
                "body": self.body, "view_ok": self.ok}

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"ViewResponse({self.status}, {len(self.body)} bytes)"


class ViewGateway:
    """Dispatches form submissions to registered views over one CPL session."""

    def __init__(self, session: Session, registry: Optional[ViewRegistry] = None):
        self.session = session
        self.registry = registry or ViewRegistry()

    # -- the three request shapes the 1995 site served ------------------------

    def index(self) -> ViewResponse:
        """The index page listing every available view."""
        return ViewResponse(200, render_index(self.registry))

    def form(self, view_name: str) -> ViewResponse:
        """The (empty) form for one view."""
        try:
            view = self.registry.get(view_name)
        except ViewError as error:
            return ViewResponse(404, _error_page(str(error)))
        return ViewResponse(200, render_form(view))

    def submit(self, view_name: str, form: Optional[Mapping[str, object]] = None,
               optimize: bool = True) -> ViewResponse:
        """Validate ``form``, run the view, and return the rendered answer.

        Validation failures re-render the form with the error message (status
        400); unknown views give status 404; a failure inside query execution
        gives status 500 with the error text.
        """
        try:
            view = self.registry.get(view_name)
        except ViewError as error:
            return ViewResponse(404, _error_page(str(error)))
        try:
            result = view.run(self.session, form or {}, optimize=optimize)
        except (ViewParameterError, ViewError) as error:
            return ViewResponse(400, render_form(view, error=str(error)))
        except ReproError as error:
            return ViewResponse(500, _error_page(f"query execution failed: {error}"))
        return ViewResponse(200, render_result_page(result), value=result.value)

    # -- convenience -----------------------------------------------------------

    def handle(self, path: str, form: Optional[Mapping[str, object]] = None) -> ViewResponse:
        """Dispatch a CGI-style path: ``""`` or ``"index"`` lists views,
        ``"<name>"`` with no form shows the form, with a form runs the view."""
        name = path.strip("/").removesuffix(".html")
        if name in ("", "index"):
            return self.index()
        if not form:
            return self.form(name)
        return self.submit(name, form)


def _error_page(message: str) -> str:
    from .forms import _escape, _PAGE

    return _PAGE.format(title="CPL view error", body=f"<p>{_escape(message)}</p>")
