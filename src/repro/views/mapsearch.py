"""The Figure-1 map-search view, rebuilt over the synthetic chromosome-22 scenario.

The paper's footnote: *"This executable screen is available via Mosaic using
http://agave.humgen.upenn.edu/cgi-bin/cpl/mapsearch1.html"* — a form that
generalises the DOE query by letting the user pick a chromosome and a
cytogenetic band of interest.  :func:`build_mapsearch_view` constructs that
view; :func:`mapsearch_session` wires a session with the GDB and GenBank
drivers it needs (the same substitution the rest of the reproduction uses:
synthetic GDB-shaped tables and a synthetic Entrez server).
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..bio.chromosome22 import build_chromosome22
from ..bio.gdb import GDB_BANDS
from ..kleisli.drivers import EntrezDriver, RelationalDriver
from ..kleisli.session import Session
from .parameters import ViewParameter
from .view import UserView

__all__ = ["build_mapsearch_view", "mapsearch_session", "MAPSEARCH_QUERY"]

# ``ASN-IDs`` is the paper's helper: Entrez sequence ids for an accession number,
# pruned during the parse by the path expression.
_MAPSEARCH_SETUP = '''
define ASN-IDs == \\accession =>
  GenBank([db = "na", select = "accession " ^ accession, path = "Seq-entry.seq.id..giim"])
'''

# The generalised DOE query behind the form: loci on the chosen chromosome
# (optionally restricted to one band), each paired with its GenBank reference
# and the precomputed similarity links to other organisms.
MAPSEARCH_QUERY = '''
{[locus-symbol = x, band = b, genbank-ref = y, homologs = NA-Links(uid)] |
  [locus_symbol = \\x, locus_id = \\a, ...] <- GDB-Tab("locus"),
  [genbank_ref = \\y, object_id = a, object_class_key = 1, ...] <- GDB-Tab("object_genbank_eref"),
  [loc_cyto_chrom_num = \\c, locus_cyto_location_id = a, loc_cyto_band_start = \\b, ...]
      <- GDB-Tab("locus_cyto_location"),
  c = chromosome,
  (band = "any") or (b = band),
  \\uid <- ASN-IDs(y)}
'''


def build_mapsearch_view(bands: Optional[Tuple[str, ...]] = None) -> UserView:
    """Build the Figure-1 view: chromosome + cytogenetic band -> loci with homologues.

    ``bands`` overrides the band choice list (Figure 1: "valid bands are
    listed"); by default the chromosome-22 bands from the GDB generator are
    offered, plus ``"any"`` to leave the band unconstrained.
    """
    band_choices = ["any"] + list(bands or GDB_BANDS)
    return UserView(
        "mapsearch1",
        MAPSEARCH_QUERY,
        title="Chromosome map search",
        description=("Find information on the known DNA sequences in a cytogenetic "
                     "band interval, as well as information on homologous sequences "
                     "from other organisms."),
        parameters=[
            ViewParameter("chromosome", "choice", label="Chromosome",
                          choices=[str(number) for number in range(1, 23)] + ["X", "Y"],
                          default="22",
                          help="human chromosome of interest"),
            ViewParameter("band", "choice", label="Cytogenetic band interval",
                          choices=band_choices, default="any",
                          help="valid bands are listed"),
        ],
        setup=_MAPSEARCH_SETUP,
        output="html",
    )


def mapsearch_session(locus_count: int = 80, seed: int = 22) -> Tuple[Session, object]:
    """Return a (session, dataset) pair wired with the GDB and GenBank drivers.

    This is the substitution for the paper's live Sybase/Entrez connections:
    the synthetic Center-for-Chromosome-22 scenario with the same schema and
    driver request vocabulary.
    """
    dataset = build_chromosome22(locus_count=locus_count, seed=seed)
    session = Session()
    session.register_driver(RelationalDriver("GDB", dataset.gdb))
    session.register_driver(EntrezDriver("GenBank", dataset.genbank))
    return session, dataset
