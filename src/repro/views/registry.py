"""The registry of user views a site publishes.

The Informatics Group of the Center for Chromosome 22 exposed its views as a
set of CGI endpoints under ``cgi-bin/cpl/``; the registry is the in-process
equivalent — the gateway dispatches an incoming request to the named view.
"""

from __future__ import annotations

from typing import Dict, Iterator, List

from .parameters import ViewError
from .view import UserView

__all__ = ["ViewRegistry"]


class ViewRegistry:
    """A name-indexed collection of :class:`~repro.views.view.UserView` objects."""

    def __init__(self) -> None:
        self._views: Dict[str, UserView] = {}

    def register(self, view: UserView, replace: bool = False) -> UserView:
        """Add ``view``; refuses to silently overwrite unless ``replace`` is set."""
        if view.name in self._views and not replace:
            raise ViewError(f"a view named {view.name!r} is already registered")
        self._views[view.name] = view
        return view

    def unregister(self, name: str) -> None:
        if name not in self._views:
            raise ViewError(f"no view named {name!r} is registered")
        del self._views[name]

    def get(self, name: str) -> UserView:
        try:
            return self._views[name]
        except KeyError:
            raise ViewError(f"no view named {name!r} is registered")

    def __contains__(self, name: str) -> bool:
        return name in self._views

    def __len__(self) -> int:
        return len(self._views)

    def __iter__(self) -> Iterator[UserView]:
        return iter(self._views.values())

    def names(self) -> List[str]:
        return sorted(self._views)
