"""HTML rendering for user views: the Figure-1 form, result pages, and the index.

The paper's Figure 1 is a Mosaic form ("Select a cytogenetic band interval on
chromosome 22 (valid bands are listed)") backed by a CGI script that runs a
CPL function with the submitted parameters.  These renderers produce the same
three artefacts a mid-1990s genome-centre web server needed: the form, the
answer page, and an index of available views.
"""

from __future__ import annotations

import html as _html
from typing import Optional

from ..core.cpl.printer import render_html, render_tabular, render_value
from .parameters import ViewParameter
from .registry import ViewRegistry
from .view import UserView, ViewResult

__all__ = ["render_form", "render_result_page", "render_index"]

_PAGE = """<html>
<head><title>{title}</title></head>
<body>
<h1>{title}</h1>
{body}
<hr>
<address>CPL multidatabase user views &mdash; Kleisli reproduction</address>
</body>
</html>
"""


def render_form(view: UserView, action: Optional[str] = None,
                error: Optional[str] = None) -> str:
    """Render the HTML form for ``view`` (Figure 1 style).

    ``action`` is the URL the form submits to; it defaults to the CGI-era path
    the paper's footnote gives (``/cgi-bin/cpl/<name>.html``).  ``error``, when
    given, is shown above the form — the gateway uses it to re-present the
    form after a validation failure.
    """
    action = action or f"/cgi-bin/cpl/{view.name}.html"
    parts = []
    if view.description:
        parts.append(f"<p>{_escape(view.description)}</p>")
    if error:
        parts.append(f'<p><b>Error:</b> {_escape(error)}</p>')
    parts.append(f'<form method="get" action="{_escape(action)}">')
    for parameter in view.parameters:
        parts.append(_render_field(parameter))
    parts.append('<p><input type="submit" value="Run query"></p>')
    parts.append("</form>")
    return _PAGE.format(title=_escape(view.title), body="\n".join(parts))


def _render_field(parameter: ViewParameter) -> str:
    label = _escape(parameter.label)
    help_text = f" <i>({_escape(parameter.help)})</i>" if parameter.help else ""
    if parameter.kind == "choice":
        options = []
        for choice in parameter.choices:
            selected = " selected" if choice == parameter.default else ""
            options.append(f'<option value="{_escape(str(choice))}"{selected}>'
                           f"{_escape(str(choice))}</option>")
        control = (f'<select name="{_escape(parameter.name)}">'
                   + "".join(options) + "</select>")
    elif parameter.kind == "bool":
        checked = " checked" if parameter.default else ""
        control = f'<input type="checkbox" name="{_escape(parameter.name)}" value="true"{checked}>'
    else:
        default = "" if parameter.default is None else str(parameter.default)
        control = (f'<input type="text" name="{_escape(parameter.name)}" '
                   f'value="{_escape(default)}">')
    required = "" if parameter.required or parameter.default is not None else " (optional)"
    return f"<p>{label}{required}: {control}{help_text}</p>"


def render_result_page(result: ViewResult) -> str:
    """Render the answer page for a completed view execution."""
    view = result.view
    parts = []
    if result.parameters:
        bound = ", ".join(f"{name} = {_escape(str(value))}"
                          for name, value in sorted(result.parameters.items()))
        parts.append(f"<p>Parameters: {bound}</p>")
    if view.output == "html":
        parts.append(render_html(result.value, title=view.title))
    elif view.output == "tabular":
        parts.append("<pre>" + _escape(render_tabular(result.value)) + "</pre>")
    else:
        parts.append("<pre>" + _escape(render_value(result.value)) + "</pre>")
    return _PAGE.format(title=_escape(view.title), body="\n".join(parts))


def render_index(registry: ViewRegistry, base_action: str = "/cgi-bin/cpl") -> str:
    """Render an index page linking every registered view's form."""
    items = []
    for name in registry.names():
        view = registry.get(name)
        items.append(f'<li><a href="{_escape(base_action)}/{_escape(name)}.html">'
                     f"{_escape(view.title)}</a> &mdash; {_escape(view.description)}</li>")
    body = "<ul>\n" + "\n".join(items) + "\n</ul>" if items else "<p>No views registered.</p>"
    return _PAGE.format(title="Available multidatabase views", body=body)


def _escape(text: str) -> str:
    return _html.escape(text, quote=True)
