"""A blocking client for the Kleisli query service.

:class:`KleisliClient` speaks the framed-JSON protocol documented in the
package docstring and lifts wire payloads back into CPL values, so client
code sees the same values a local :class:`~repro.kleisli.session.Session`
would return.  Typed errors travel: an overloaded server raises
:class:`~repro.core.errors.ServerOverloadedError` client-side; any other
server-side failure raises :class:`~repro.core.errors.RemoteQueryError`
carrying the original ``error_type``.
"""

from __future__ import annotations

import socket
from typing import Dict, Iterator, Optional, Tuple

from ..core.errors import (
    RemoteQueryError,
    ServerOverloadedError,
    WireProtocolError,
)
from ..net.framing import recv_message, send_message
from .wire import decode_value

__all__ = ["KleisliClient"]


class KleisliClient:
    """One client session against a :class:`~repro.server.KleisliServer`."""

    def __init__(self, address: Tuple[str, int], timeout: float = 30.0):
        self._sock = socket.create_connection(address, timeout=timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._closed = False
        #: The ``admission`` field of the last admitted request
        #: (``"immediate"`` or ``"queued"``) — how much pressure we saw.
        self.last_admission: Optional[str] = None
        #: The ``warnings`` field of the last response that carried one:
        #: typed degradation records (dicts with ``driver``/``error_type``/
        #: ``reason``/``requests_dropped``).  Empty = complete results.
        self.last_warnings: list = []

    # -- plumbing ------------------------------------------------------------

    def request(self, message: dict) -> dict:
        """Send one op and return its ``ok: true`` response payload.

        Raises the typed counterpart of an ``ok: false`` response, and
        :class:`WireProtocolError` if the server hangs up mid-exchange.
        """
        if self._closed:
            raise WireProtocolError("client is closed")
        send_message(self._sock, message)
        response = recv_message(self._sock)
        if response is None:
            raise WireProtocolError("server closed the connection")
        if response.get("ok"):
            if "admission" in response:
                self.last_admission = response["admission"]
            if "warnings" in response:
                self.last_warnings = response["warnings"]
            return response
        error = response.get("error", "unspecified server error")
        error_type = response.get("error_type", "ReproError")
        if error_type == "ServerOverloadedError":
            raise ServerOverloadedError(error)
        raise RemoteQueryError(error, error_type=error_type)

    # -- the protocol ops ----------------------------------------------------

    def hello(self) -> dict:
        return self.request({"op": "hello"})

    @staticmethod
    def _with_options(message: dict, deadline: Optional[float],
                      on_source_failure: Optional[str],
                      memory_budget: Optional[int] = None,
                      spill: Optional[bool] = None,
                      profile: Optional[bool] = None) -> dict:
        if deadline is not None:
            message["deadline"] = deadline
        if on_source_failure is not None:
            message["on_source_failure"] = on_source_failure
        if memory_budget is not None:
            message["memory_budget"] = memory_budget
        if spill is not None:
            message["spill"] = spill
        if profile is not None:
            message["profile"] = profile
        return message

    def run(self, source: str, deadline: Optional[float] = None,
            on_source_failure: Optional[str] = None,
            memory_budget: Optional[int] = None,
            spill: Optional[bool] = None,
            profile: Optional[bool] = None) -> object:
        """Run a CPL program (defines allowed); return the last query's value.

        ``deadline`` (seconds) bounds the run's driver work server-side;
        ``on_source_failure="degrade"`` completes federated runs with
        partial results, announced in :attr:`last_warnings`.
        ``memory_budget`` (bytes) caps the run's server-side
        materialization; ``spill`` picks the over-budget backend (``True``
        forces disk, ``False`` forbids it, omitted lets the cost model
        decide).  ``profile=True`` records a server-side EXPLAIN ANALYZE
        readable afterwards with :meth:`profile`.
        """
        return decode_value(self.request(self._with_options(
            {"op": "run", "source": source},
            deadline, on_source_failure, memory_budget, spill,
            profile))["value"])

    def query(self, source: str, deadline: Optional[float] = None,
              on_source_failure: Optional[str] = None,
              memory_budget: Optional[int] = None,
              spill: Optional[bool] = None,
              profile: Optional[bool] = None) -> object:
        """Run one CPL expression; return its value (options as in :meth:`run`)."""
        return decode_value(self.request(self._with_options(
            {"op": "query", "source": source},
            deadline, on_source_failure, memory_budget, spill,
            profile))["value"])

    def open(self, source: str, deadline: Optional[float] = None,
             on_source_failure: Optional[str] = None,
             memory_budget: Optional[int] = None,
             spill: Optional[bool] = None,
             profile: Optional[bool] = None) -> str:
        """Open a server-side cursor; return its id (see :meth:`fetch`,
        :meth:`cancel`, :meth:`close_cursor`).  :meth:`stream` wraps this."""
        return self.request(self._with_options(
            {"op": "open", "source": source},
            deadline, on_source_failure, memory_budget, spill,
            profile))["cursor"]

    def fetch(self, cursor: str, batch: int = 16) -> dict:
        """One fetch batch: ``{"values": [...], "done": bool}`` (decoded)."""
        reply = self.request({"op": "fetch", "cursor": cursor, "n": batch})
        reply["values"] = [decode_value(payload)
                           for payload in reply["values"]]
        return reply

    def cancel(self, cursor: str) -> bool:
        """Cancel a cursor mid-stream: the server cancels the run's token
        (counted in the governance books) and tears the cursor down.
        Returns whether the cursor existed; cancelling twice is ``False``."""
        return bool(self.request({"op": "cancel", "cursor": cursor})
                    .get("cancelled", False))

    def close_cursor(self, cursor: str) -> bool:
        """Close a cursor without the cancellation bookkeeping."""
        return bool(self.request({"op": "close", "cursor": cursor})
                    .get("closed", False))

    def stream(self, source: str, batch: int = 16,
               deadline: Optional[float] = None,
               on_source_failure: Optional[str] = None,
               memory_budget: Optional[int] = None,
               spill: Optional[bool] = None,
               profile: Optional[bool] = None) -> Iterator[object]:
        """Run a streamed query, yielding elements as fetch batches arrive.

        Closing the generator early (or abandoning it) sends a ``close`` op,
        releasing the server-side cursor and its admission slot.  Each fetch
        refreshes :attr:`last_warnings` with the degradation records the
        stream has accumulated so far.  ``memory_budget``/``spill`` as in
        :meth:`run`.
        """
        cursor = self.open(source, deadline, on_source_failure,
                           memory_budget, spill, profile)
        done = False
        try:
            while not done:
                reply = self.request({"op": "fetch", "cursor": cursor,
                                      "n": batch})
                done = reply["done"]
                for payload in reply["values"]:
                    yield decode_value(payload)
        finally:
            if not done and not self._closed:
                try:
                    self.request({"op": "close", "cursor": cursor})
                except (WireProtocolError, OSError):
                    pass

    def view(self, path: str, form: Optional[Dict[str, object]] = None,
             section: Optional[str] = None,
             offset: Optional[int] = None) -> dict:
        """Dispatch a view path + form; returns the payload with ``value``
        (when the view produced one) decoded to a CPL value.

        Oversized replies are frame-capped server-side: a shed ``value``
        or cut ``body`` is listed in the reply's ``truncated`` field, and
        ``section`` (``"body"`` | ``"value"``) + ``offset`` (body
        character position, continue from ``next_offset``) re-request one
        piece at a time.
        """
        message: dict = {"op": "view", "path": path, "form": form}
        if section is not None:
            message["section"] = section
        if offset is not None:
            message["offset"] = offset
        response = self.request(message)
        if "value" in response:
            response["value"] = decode_value(response["value"])
        return response

    def server_stats(self, section: Optional[str] = None) -> dict:
        """Service counters, engine health, and admission configuration.

        ``section`` (``"server"`` | ``"engine"`` | ``"sessions"`` |
        ``"admission"`` | ``"governance"`` | ``"observability"`` |
        ``"slow_queries"``) requests just that piece — the way to read a
        section the full reply listed under ``truncated`` because it would
        not fit one frame.
        """
        message: dict = {"op": "stats"}
        if section is not None:
            message["section"] = section
        return self.request(message)

    def metrics(self, offset: Optional[int] = None) -> dict:
        """The server's Prometheus-style metrics exposition.

        Returns ``{"attached": bool, "text": str, "complete": bool, ...}``;
        when ``complete`` is ``False``, continue from ``next_offset`` with
        ``metrics(offset=reply["next_offset"])`` and concatenate.
        """
        message: dict = {"op": "metrics"}
        if offset is not None:
            message["offset"] = offset
        return self.request(message)

    def metrics_text(self) -> str:
        """The full exposition text, paging past the frame cap as needed."""
        parts = []
        offset: Optional[int] = None
        while True:
            reply = self.metrics(offset)
            parts.append(reply.get("text", ""))
            if reply.get("complete", True):
                return "".join(parts)
            offset = reply["next_offset"]

    def trace(self, limit: Optional[int] = None) -> dict:
        """Recent finished query traces (``{"tracer": ..., "traces": [...]}``)."""
        message: dict = {"op": "trace"}
        if limit is not None:
            message["limit"] = limit
        return self.request(message)

    def profile(self) -> dict:
        """EXPLAIN ANALYZE for this session's last ``profile=True`` query.

        Returns ``{"available": bool, "render": str, "profile": {...}}`` —
        ``render`` is the annotated physical-plan tree, ``profile`` the
        structured record (stages, drivers, books, trace).
        """
        return self.request({"op": "profile"})

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Say goodbye (best-effort) and close the socket."""
        if self._closed:
            return
        self._closed = True
        try:
            send_message(self._sock, {"op": "bye"})
            recv_message(self._sock)
        except (WireProtocolError, OSError):
            pass
        finally:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover - teardown race
                pass

    def kill(self) -> None:
        """Drop the connection without a goodbye — simulates a client crash.

        The harness uses this to prove a dirty disconnect still releases the
        session's server-side cursors.
        """
        if self._closed:
            return
        self._closed = True
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - teardown race
            pass

    def __enter__(self) -> "KleisliClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
