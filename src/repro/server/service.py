"""The concurrent multi-session Kleisli query server.

See the package docstring (:mod:`repro.server`) for the wire protocol,
session lifecycle, backpressure policy, and the shared-vs-per-session state
map.  This module implements it:

* :class:`KleisliServer` — a TCP front-end (thread per connection, capped at
  ``max_sessions``) multiplexing CPL sessions onto **one** shared
  :class:`~repro.kleisli.engine.KleisliEngine`;
* :class:`ServerStats` — lock-guarded service counters (sessions, queries,
  cursors, rejections) the soak tests assert consistency on;
* admission control — a bounded-semaphore pool of in-flight query slots with
  a queue-or-reject policy, surfaced in every response's ``admission`` field
  and, on rejection, as a typed
  :class:`~repro.core.errors.ServerOverloadedError`.
"""

from __future__ import annotations

import socket
import threading
import time
from typing import Callable, Dict, List, Optional, Tuple

from ..core.errors import (
    QueryServiceError,
    ReproError,
    ServerOverloadedError,
    WireProtocolError,
)
from ..kleisli.engine import KleisliEngine
from ..kleisli.governance import CancellationToken
from ..kleisli.session import Session
from ..net.framing import MAX_FRAME_BYTES, encode_frame, recv_message, send_message
from ..views.gateway import ViewGateway
from ..views.registry import ViewRegistry
from .wire import encode_value, encode_warnings

__all__ = ["KleisliServer", "ServerStats", "PROTOCOL_VERSION"]

PROTOCOL_VERSION = 1

#: Most elements one ``fetch`` reply may carry (keeps frames bounded).
MAX_FETCH_BATCH = 1024

#: Soft budget for one ``stats`` reply frame: half the hard wire cap, so
#: the reply fits with ample room even after transport envelope fields.
_STATS_BYTE_BUDGET = MAX_FRAME_BYTES // 2


class ServerStats:
    """Lock-guarded counters for the whole service.

    Invariants the concurrency tests assert: once every client has
    disconnected, ``sessions_opened == sessions_closed`` and
    ``cursors_opened == cursors_closed`` — a difference is a leaked session
    thread or a cursor whose admission slot was never returned.
    """

    FIELDS = ("sessions_opened", "sessions_closed", "sessions_refused",
              "queries", "rejections", "queued", "failures",
              "cursors_opened", "cursors_closed")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts = {field: 0 for field in self.FIELDS}

    def increment(self, field: str, amount: int = 1) -> None:
        with self._lock:
            self._counts[field] += amount

    def __getattr__(self, field: str) -> int:
        if field in ServerStats.FIELDS:
            with self._lock:
                return self._counts[field]
        raise AttributeError(field)

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._counts)


class _AdmissionSlot:
    """One held in-flight-query slot; release is idempotent.

    ``on_release`` (when given) runs exactly once, after the semaphore is
    returned — the server's drain accounting: open cursors hold their slot
    for their whole lifetime, so "every slot released" *is* "every
    in-flight query and cursor finished".
    """

    __slots__ = ("_semaphore", "_released", "_lock", "_on_release")

    def __init__(self, semaphore: threading.Semaphore,
                 on_release: Optional[Callable[[], None]] = None):
        self._semaphore = semaphore
        self._released = False
        self._lock = threading.Lock()
        self._on_release = on_release

    def release(self) -> None:
        with self._lock:
            if self._released:
                return
            self._released = True
        self._semaphore.release()
        if self._on_release is not None:
            self._on_release()


class _Cursor:
    """A server-side streamed query: the session's tracked stream plus the
    admission slot it holds for its whole lifetime (open cursors *are* the
    in-flight queries backpressure counts)."""

    __slots__ = ("stream", "statistics", "token", "opened_at",
                 "watchdog_killed", "_slot", "_stats", "_closed",
                 "_released")

    def __init__(self, stream, slot: _AdmissionSlot, stats: ServerStats,
                 statistics=None, token: Optional[CancellationToken] = None):
        self.stream = stream
        #: The run's ``EvalStatistics`` — captured at open time so fetch
        #: replies can report degradation warnings accumulated as the
        #: stream drains, regardless of what other sessions ran since.
        self.statistics = statistics
        #: The run's cancellation token: the ``cancel`` op and the watchdog
        #: cancel through it, so teardown is cooperative and typed.
        self.token = token
        self.opened_at = time.monotonic()
        #: Set by the watchdog the one time it kills this cursor, so the
        #: ``watchdog_kills`` book counts each runaway query exactly once.
        self.watchdog_killed = False
        self._slot = slot
        self._stats = stats
        self._closed = False
        self._released = False

    def retire(self) -> None:
        """Close the stream and count the cursor closed — but keep holding
        the admission slot.  ``release_slot`` hands it back once the reply
        announcing the close has actually been sent."""
        if self._closed:
            return
        self._closed = True
        try:
            self.stream.close()
        finally:
            self._stats.increment("cursors_closed")

    def release_slot(self) -> None:
        if self._released:
            return
        self._released = True
        self._slot.release()

    def close(self) -> None:
        try:
            self.retire()
        finally:
            self.release_slot()


class _Connection:
    """Per-connection state: the CPL session, its open cursors, the lazily
    built view gateway.  Owned by exactly one serving thread."""

    __slots__ = ("session", "cursors", "gateway", "pending")

    def __init__(self, session: Session, gateway: Optional[ViewGateway]):
        self.session = session
        self.cursors: Dict[str, _Cursor] = {}
        self.gateway = gateway
        #: Retired cursors whose admission slot is held until the response
        #: that announced the close (``done: true`` / ``closed: true``)
        #: has been SENT: releasing the slot earlier lets a graceful
        #: drain decide "nothing in flight" and cut the connection
        #: between the handler and the send, losing the client its final
        #: reply.
        self.pending: List[_Cursor] = []

    def flush_pending(self) -> None:
        for cursor in self.pending:
            try:
                cursor.release_slot()
            except Exception:  # pragma: no cover - best-effort release
                pass
        self.pending.clear()

    def close(self) -> None:
        self.flush_pending()
        for cursor in list(self.cursors.values()):
            try:
                cursor.close()
            except Exception:  # pragma: no cover - best-effort release
                pass
        self.cursors.clear()
        self.session.close()


class KleisliServer:
    """Serve concurrent CPL sessions over one shared engine.

    ``session_setup`` (when given) runs once per new connection's
    :class:`~repro.kleisli.session.Session` — the hook tests and
    deployments use to bind per-session values or definitions.  Drivers
    registered on the shared ``engine`` are bound into every session
    automatically.

    ``admission`` is ``"queue"`` (wait up to ``queue_timeout`` seconds for
    a free in-flight-query slot, then reject) or ``"reject"`` (reject
    immediately when saturated).  Rejections are typed
    (``error_type: "ServerOverloadedError"``) and leave the server — and
    the session that was rejected — fully usable.
    """

    def __init__(self, engine: Optional[KleisliEngine] = None,
                 host: str = "127.0.0.1", port: int = 0, *,
                 max_sessions: int = 64,
                 max_concurrent_queries: int = 8,
                 admission: str = "queue",
                 queue_timeout: float = 5.0,
                 drain_timeout: float = 5.0,
                 view_registry: Optional[ViewRegistry] = None,
                 session_setup: Optional[Callable[[Session], None]] = None,
                 max_query_runtime: Optional[float] = None,
                 watchdog_interval: float = 0.25,
                 session_cursor_quota: Optional[int] = None,
                 session_memory_limit: Optional[int] = None):
        if admission not in ("queue", "reject"):
            raise ValueError("admission must be 'queue' or 'reject'")
        if max_concurrent_queries < 1:
            raise ValueError("max_concurrent_queries must be at least 1")
        if max_sessions < 1:
            raise ValueError("max_sessions must be at least 1")
        if max_query_runtime is not None and max_query_runtime <= 0:
            raise ValueError("max_query_runtime must be positive")
        if session_cursor_quota is not None and session_cursor_quota < 1:
            raise ValueError("session_cursor_quota must be at least 1")
        self.engine = engine if engine is not None else KleisliEngine()
        self.host = host
        self.port = port
        self.max_sessions = max_sessions
        self.max_concurrent_queries = max_concurrent_queries
        self.admission = admission
        self.queue_timeout = queue_timeout
        #: How long a graceful :meth:`stop` waits for in-flight queries and
        #: open cursors to finish before force-disconnecting what remains.
        self.drain_timeout = drain_timeout
        self.view_registry = view_registry
        self.session_setup = session_setup
        #: The watchdog's kill threshold: a cursor older than this many
        #: seconds has its token cancelled (typed error on the client's next
        #: fetch) and is counted in the ``watchdog_kills`` book.  ``None``
        #: (the default) runs no watchdog thread at all.
        self.max_query_runtime = max_query_runtime
        self.watchdog_interval = watchdog_interval
        #: Per-session admission quotas: most open cursors one session may
        #: hold at once, and the session-wide memory cap its governed runs
        #: charge.  ``None`` = unlimited, exactly as before.
        self.session_cursor_quota = session_cursor_quota
        self.session_memory_limit = session_memory_limit
        self.stats = ServerStats()
        self.address: Optional[Tuple[str, int]] = None
        self._slots = threading.BoundedSemaphore(max_concurrent_queries)
        self._closing = threading.Event()
        #: Set while a graceful stop drains: new connections and new query
        #: admissions are refused, but in-flight work — including open
        #: cursors' fetches — keeps being served until the drain deadline.
        self._draining = threading.Event()
        self._inflight = 0
        self._inflight_cond = threading.Condition()
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._lock = threading.Lock()
        self._connections: set = set()
        self._states: set = set()
        self._threads: List[threading.Thread] = []
        self._active_sessions = 0
        self._cursor_counter = 0
        self._watchdog_stop = threading.Event()
        self._watchdog_thread: Optional[threading.Thread] = None

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "KleisliServer":
        """Bind, listen, and start accepting connections in the background."""
        if self._listener is not None:
            raise QueryServiceError("server already started")
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(128)
        self.address = listener.getsockname()
        self._listener = listener
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="kleisli-server-accept", daemon=True)
        self._accept_thread.start()
        if self.max_query_runtime is not None:
            self._watchdog_stop.clear()
            self._watchdog_thread = threading.Thread(
                target=self._watchdog_loop, name="kleisli-server-watchdog",
                daemon=True)
            self._watchdog_thread.start()
        return self

    def stop(self) -> None:
        """Gracefully stop: drain in-flight work, flush, then tear down.

        Three phases.  **Drain**: stop accepting connections and refuse
        new query admissions (typed ``ServerOverloadedError``, so a
        retrying client sees backpressure, not a vanished server), while
        in-flight queries and open cursors keep being served — a client
        mid-stream gets to finish — for up to ``drain_timeout`` seconds.
        **Teardown**: whatever is still in flight after the deadline is
        force-disconnected exactly as the old abrupt stop did, and every
        thread is joined.  **Flush**: the engine's plan store (when one is
        attached) is durably flushed, so the learned state of everything
        this server ran survives to warm-start the next process.
        """
        hub = self.engine.observability
        if hub is not None and not self._draining.is_set():
            hub.note_drain()
        self._draining.set()
        self._watchdog_stop.set()
        if self._watchdog_thread is not None:
            self._watchdog_thread.join(timeout=5.0)
            self._watchdog_thread = None
        listener, self._listener = self._listener, None
        if listener is not None:
            try:
                # shutdown() wakes a thread blocked in accept(); close()
                # alone leaves it stuck until a connection happens by.
                listener.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                listener.close()
            except OSError:  # pragma: no cover - teardown race
                pass
        # Wait for the slots to come home: open cursors hold theirs until
        # closed/drained, so zero in flight means no client is mid-query
        # or mid-stream.  Idle sessions hold no slots and don't delay this.
        deadline = time.monotonic() + self.drain_timeout
        with self._inflight_cond:
            while self._inflight > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._inflight_cond.wait(timeout=remaining)
        self._closing.set()
        with self._lock:
            connections = list(self._connections)
        for conn in connections:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
            self._accept_thread = None
        with self._lock:
            threads = list(self._threads)
        for thread in threads:
            thread.join(timeout=5.0)
        self.engine.flush_plan_store()
        self._closing.clear()
        self._draining.clear()
        self.address = None

    def __enter__(self) -> "KleisliServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    @property
    def active_sessions(self) -> int:
        with self._lock:
            return self._active_sessions

    # -- accept / serve loops ------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._closing.is_set():
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            with self._lock:
                if self._closing.is_set() or self._draining.is_set():
                    conn.close()
                    return
                if self._active_sessions >= self.max_sessions:
                    admit = False
                else:
                    admit = True
                    self._active_sessions += 1
                    self._connections.add(conn)
            if not admit:
                self.stats.increment("sessions_refused")
                try:
                    send_message(conn, {
                        "ok": False,
                        "error_type": "ServerOverloadedError",
                        "error": f"server at its {self.max_sessions}-session "
                                 f"capacity; retry later"})
                except OSError:
                    pass
                conn.close()
                continue
            thread = threading.Thread(target=self._serve_connection,
                                      args=(conn,), daemon=True)
            with self._lock:
                # Prune finished threads BEFORE appending: the new thread
                # has not started yet, so it is not alive, and pruning after
                # the append would silently drop it from the join list —
                # stop() would then tear down under still-running sessions.
                self._threads = [t for t in self._threads if t.is_alive()]
                self._threads.append(thread)
            thread.start()

    def _watchdog_loop(self) -> None:
        """Cancel every cursor that has outlived ``max_query_runtime``.

        The kill is cooperative: only the token is cancelled, so the run
        raises its typed :class:`~repro.core.errors.QueryCancelledError` at
        the next checkpoint (the client's next fetch surfaces it) and its
        ``EvalScope`` releases every cursor on the way out.  The serving
        thread — not this one — does the teardown, so the watchdog can
        never race a fetch mid-value.
        """
        limit = self.max_query_runtime
        while not self._watchdog_stop.wait(self.watchdog_interval):
            now = time.monotonic()
            with self._lock:
                states = list(self._states)
            for state in states:
                try:
                    cursors = list(state.cursors.values())
                except RuntimeError:  # pragma: no cover - dict resize race
                    continue
                for cursor in cursors:
                    if (cursor.token is not None
                            and not cursor.watchdog_killed
                            and now - cursor.opened_at > limit):
                        cursor.watchdog_killed = True
                        cursor.token.cancel(
                            f"watchdog: query exceeded max runtime "
                            f"of {limit}s")
                        self.engine.governor.count("watchdog_kills")

    def _serve_connection(self, conn: socket.socket) -> None:
        self.stats.increment("sessions_opened")
        session = Session(engine=self.engine,
                          memory_limit=self.session_memory_limit)
        gateway = ViewGateway(session, self.view_registry) \
            if self.view_registry is not None else None
        state = _Connection(session, gateway)
        with self._lock:
            self._states.add(state)
        try:
            if self.session_setup is not None:
                self.session_setup(session)
            while not self._closing.is_set():
                try:
                    message = recv_message(conn)
                except (WireProtocolError, OSError):
                    break
                if message is None:
                    break
                if message.get("op") == "bye":
                    try:
                        send_message(conn, {"ok": True, "op": "bye"})
                    except OSError:
                        pass
                    break
                response = self._handle(state, message)
                try:
                    send_message(conn, response)
                except (WireProtocolError, OSError):
                    break
                finally:
                    state.flush_pending()
        finally:
            # One client's exit — clean, mid-stream, or mid-query — releases
            # exactly its own resources: its cursors' EvalScopes and
            # admission slots.  Nothing here touches shared engine state.
            state.close()
            try:
                conn.close()
            except OSError:  # pragma: no cover - teardown race
                pass
            with self._lock:
                self._connections.discard(conn)
                self._states.discard(state)
                self._active_sessions -= 1
            self.stats.increment("sessions_closed")

    # -- admission control ---------------------------------------------------

    def _admit(self) -> Tuple[str, _AdmissionSlot]:
        """Acquire one in-flight-query slot, honouring the policy.

        Returns ``(how, slot)`` where ``how`` is ``"immediate"`` or
        ``"queued"`` (the response surfaces it, so clients can observe
        backpressure building before rejections start).  Raises
        :class:`ServerOverloadedError` when the policy rejects.
        """
        hub = self.engine.observability
        if self._draining.is_set():
            # A draining server admits nothing new; in-flight work (and
            # open cursors' fetches, which hold their slot already) keeps
            # being served until the drain deadline.
            self.stats.increment("rejections")
            if hub is not None:
                hub.observe_admission("rejected")
            raise ServerOverloadedError("server is draining; retry elsewhere")
        if self._slots.acquire(blocking=False):
            if hub is not None:
                hub.observe_admission("immediate")
            return "immediate", self._make_slot()
        if self.admission == "reject":
            self.stats.increment("rejections")
            if hub is not None:
                hub.observe_admission("rejected")
            raise ServerOverloadedError(
                f"server at its {self.max_concurrent_queries} in-flight "
                f"query cap (policy: reject)")
        self.stats.increment("queued")
        queued_at = time.monotonic()
        if self._slots.acquire(timeout=self.queue_timeout):
            if hub is not None:
                hub.observe_admission("queued", time.monotonic() - queued_at)
            return "queued", self._make_slot()
        self.stats.increment("rejections")
        if hub is not None:
            hub.observe_admission("rejected", time.monotonic() - queued_at)
        raise ServerOverloadedError(
            f"no in-flight query slot freed within {self.queue_timeout}s "
            f"(cap {self.max_concurrent_queries}, policy: queue)")

    def _make_slot(self) -> _AdmissionSlot:
        with self._inflight_cond:
            self._inflight += 1
        return _AdmissionSlot(self._slots, on_release=self._slot_released)

    def _slot_released(self) -> None:
        with self._inflight_cond:
            self._inflight -= 1
            if self._inflight <= 0:
                self._inflight_cond.notify_all()

    # -- request dispatch ----------------------------------------------------

    def _handle(self, state: _Connection, message: dict) -> dict:
        op = message.get("op")
        handler = self._OPS.get(op)
        if handler is None:
            return {"ok": False, "error_type": "WireProtocolError",
                    "error": f"unknown op {op!r}"}
        try:
            return handler(self, state, message)
        except ServerOverloadedError as error:
            # Not a failure: the request was *never admitted*; the session
            # stays healthy and may retry.
            return {"ok": False, "error_type": "ServerOverloadedError",
                    "error": str(error), "admission": "rejected"}
        except ReproError as error:
            self.stats.increment("failures")
            return {"ok": False, "error_type": type(error).__name__,
                    "error": str(error)}
        except Exception as error:  # noqa: BLE001 - the server must survive
            self.stats.increment("failures")
            return {"ok": False, "error_type": "InternalError",
                    "error": f"{type(error).__name__}: {error}"}

    @staticmethod
    def _required_str(message: dict, key: str) -> str:
        value = message.get(key)
        if not isinstance(value, str):
            raise WireProtocolError(f"op requires a string {key!r} field")
        return value

    def _op_hello(self, state: _Connection, message: dict) -> dict:
        return {"ok": True, "server": "kleisli-query-service",
                "protocol": PROTOCOL_VERSION,
                "ops": sorted([*self._OPS, "bye"])}

    @staticmethod
    def _run_options(message: dict) -> Dict[str, object]:
        """Per-request resilience options: deadline + failure policy.

        Both are optional on every query-running op; validation errors are
        wire errors (the request never reaches the engine).
        """
        options: Dict[str, object] = {}
        deadline = message.get("deadline")
        if deadline is not None:
            if isinstance(deadline, bool) \
                    or not isinstance(deadline, (int, float)) or deadline <= 0:
                raise WireProtocolError(
                    "'deadline' must be a positive number of seconds")
            options["deadline"] = float(deadline)
        policy = message.get("on_source_failure")
        if policy is not None:
            if policy not in ("fail", "degrade"):
                raise WireProtocolError(
                    "'on_source_failure' must be 'fail' or 'degrade'")
            options["on_source_failure"] = policy
        budget = message.get("memory_budget")
        if budget is not None:
            if isinstance(budget, bool) or not isinstance(budget, int) \
                    or budget <= 0:
                raise WireProtocolError(
                    "'memory_budget' must be a positive integer of bytes")
            options["memory_budget"] = budget
        spill = message.get("spill")
        if spill is not None:
            if not isinstance(spill, bool):
                raise WireProtocolError("'spill' must be a boolean")
            options["spill"] = spill
        profile = message.get("profile")
        if profile is not None:
            if not isinstance(profile, bool):
                raise WireProtocolError("'profile' must be a boolean")
            options["profile"] = profile
        return options

    def _op_run(self, state: _Connection, message: dict) -> dict:
        source = self._required_str(message, "source")
        options = self._run_options(message)
        how, slot = self._admit()
        try:
            value = state.session.run(source, **options)
        finally:
            slot.release()
        self.stats.increment("queries")
        return {"ok": True, "value": encode_value(value), "admission": how,
                "warnings": encode_warnings(
                    self.engine.thread_eval_statistics())}

    def _op_query(self, state: _Connection, message: dict) -> dict:
        source = self._required_str(message, "source")
        options = self._run_options(message)
        how, slot = self._admit()
        try:
            result = state.session.query(source, **options)
        finally:
            slot.release()
        self.stats.increment("queries")
        return {"ok": True, "value": encode_value(result.value),
                "admission": how,
                "warnings": encode_warnings(
                    self.engine.thread_eval_statistics())}

    def _op_open(self, state: _Connection, message: dict) -> dict:
        source = self._required_str(message, "source")
        options = self._run_options(message)
        quota = self.session_cursor_quota
        if quota is not None and len(state.cursors) >= quota:
            # Admission control, not failure: the quota protects the shared
            # slot pool from one session holding every slot through idle
            # cursors; close (or drain) one and retry.
            self.stats.increment("rejections")
            raise ServerOverloadedError(
                f"session at its {quota}-cursor quota; close a cursor first")
        token = CancellationToken()
        how, slot = self._admit()
        try:
            stream = state.session.stream(source, cancellation=token,
                                          **options)
        except BaseException:
            slot.release()
            raise
        with self._lock:
            self._cursor_counter += 1
            cursor_id = f"c{self._cursor_counter}"
        state.cursors[cursor_id] = _Cursor(
            stream, slot, self.stats,
            statistics=self.engine.thread_eval_statistics(), token=token)
        self.stats.increment("cursors_opened")
        self.stats.increment("queries")
        return {"ok": True, "cursor": cursor_id, "admission": how}

    def _op_fetch(self, state: _Connection, message: dict) -> dict:
        cursor_id = message.get("cursor")
        cursor = state.cursors.get(cursor_id)
        if cursor is None:
            raise QueryServiceError(f"unknown cursor {cursor_id!r}")
        count = message.get("n", 32)
        if not isinstance(count, int) or count < 1:
            raise WireProtocolError("fetch requires a positive integer 'n'")
        count = min(count, MAX_FETCH_BATCH)
        values: List[object] = []
        done = False
        try:
            for _ in range(count):
                try:
                    values.append(encode_value(next(cursor.stream)))
                except StopIteration:
                    done = True
                    break
        except Exception:
            # A mid-stream failure ends the cursor: its EvalScope has
            # already released the run's cursors; drop the partial batch
            # and surface the error (the session itself stays usable).
            state.cursors.pop(cursor_id, None)
            cursor.close()
            raise
        if done:
            state.cursors.pop(cursor_id, None)
            cursor.retire()
            state.pending.append(cursor)
        return {"ok": True, "values": values, "done": done,
                "warnings": encode_warnings(cursor.statistics)}

    def _op_close(self, state: _Connection, message: dict) -> dict:
        cursor_id = message.get("cursor")
        cursor = state.cursors.pop(cursor_id, None)
        if cursor is not None:
            cursor.retire()
            state.pending.append(cursor)
        return {"ok": True, "closed": cursor is not None}

    def _op_cancel(self, state: _Connection, message: dict) -> dict:
        """Cancel one of this session's cursors mid-stream.

        The token is cancelled first — so the run's books record a
        cancellation, not a routine close — then the cursor is torn down
        exactly like ``close``: its ``EvalScope`` releases the run's
        cursors, and the admission slot is returned once this reply is on
        the wire.  Only the target query is touched; the session (and every
        other session on the shared engine) keeps working.
        """
        cursor_id = message.get("cursor")
        cursor = state.cursors.pop(cursor_id, None)
        if cursor is not None:
            if cursor.token is not None:
                cursor.token.cancel("cancelled by client")
            cursor.retire()
            state.pending.append(cursor)
        return {"ok": True, "cancelled": cursor is not None}

    def _op_view(self, state: _Connection, message: dict) -> dict:
        if state.gateway is None:
            raise QueryServiceError("this server exposes no views")
        path = self._required_str(message, "path")
        form = message.get("form")
        if form is not None and not isinstance(form, dict):
            raise WireProtocolError("view 'form' must be an object")
        section = message.get("section")
        if section is not None and section not in ("body", "value"):
            raise WireProtocolError("view 'section' must be 'body' or 'value'")
        offset = message.get("offset", 0)
        if isinstance(offset, bool) or not isinstance(offset, int) or offset < 0:
            raise WireProtocolError(
                "view 'offset' must be a non-negative integer")
        how, slot = self._admit()
        try:
            response = state.gateway.handle(path, form)
        finally:
            slot.release()
        self.stats.increment("queries")
        payload = response.as_payload()
        payload["ok"] = True
        payload["admission"] = how
        if response.value is not None:
            payload["value"] = encode_value(response.value)
        if section is not None:
            keep = {"ok", "admission", "status", "view_ok", "content_type",
                    section}
            payload = {key: value for key, value in payload.items()
                       if key in keep}
            if section == "body" and "body" not in payload:
                payload["body"] = ""
        return self._cap_view(payload, offset, section)

    def _cap_view(self, payload: dict, offset: int,
                  section: Optional[str]) -> dict:
        """Keep a ``view`` reply under the wire frame cap.

        A view body (markup rendered over an unbounded query result) and
        its CPL value can each outgrow a frame, and an oversized reply
        would kill the connection at the framing layer — exactly the
        failure :meth:`_cap_stats` guards the ``stats`` op against.  Over
        budget, the ``value`` is shed first (re-request it as its own
        ``section: "value"`` frame), then the body is cut and ``next_offset``
        tells the client where to resume (``section: "body", offset: n``).
        """
        def size(message: dict) -> int:
            try:
                return len(encode_frame(message))
            except WireProtocolError:
                return MAX_FRAME_BYTES + 1

        body = payload.get("body")
        if offset and isinstance(body, str):
            payload["body"] = body[offset:]
        if size(payload) <= _STATS_BYTE_BUDGET:
            return payload
        dropped: List[str] = []
        if section != "value" and "value" in payload:
            del payload["value"]
            dropped.append("value")
        body = payload.get("body")
        if size(payload) > _STATS_BYTE_BUDGET and isinstance(body, str):
            kept = body
            while size(payload) > _STATS_BYTE_BUDGET and kept:
                kept = kept[: len(kept) // 2]
                payload["body"] = kept
            if len(kept) < len(body):
                dropped.append("body")
                payload["next_offset"] = offset + len(kept)
        if size(payload) > _STATS_BYTE_BUDGET:
            # The one un-pageable case: a single encoded value larger than
            # a frame, explicitly requested.  Refuse it typed instead of
            # letting the framing layer kill the connection.
            raise WireProtocolError(
                "view section does not fit one frame even alone; "
                "stream the underlying query through a cursor instead")
        if dropped:
            payload["truncated"] = dropped
            payload["hint"] = ("re-request one section at a time: "
                               "{'op': 'view', 'section': <name>, "
                               "'offset': <next_offset>}")
        return payload

    def _op_metrics(self, state: _Connection, message: dict) -> dict:
        """Prometheus-style text exposition of the engine's metrics registry.

        Frame-capped like ``stats``: an oversized rendering is cut and the
        reply carries ``next_offset`` so the client pages through with
        ``{'op': 'metrics', 'offset': <next_offset>}``.
        """
        offset = message.get("offset", 0)
        if isinstance(offset, bool) or not isinstance(offset, int) or offset < 0:
            raise WireProtocolError(
                "metrics 'offset' must be a non-negative integer")
        hub = self.engine.observability
        if hub is None:
            return {"ok": True, "attached": False, "text": "",
                    "complete": True}
        text = hub.metrics.render()
        reply = {"ok": True, "attached": True, "offset": offset,
                 "total_chars": len(text), "text": text[offset:],
                 "complete": True}
        return self._cap_text(reply, "text", offset)

    def _op_trace(self, state: _Connection, message: dict) -> dict:
        """Recent finished query traces from the hub's bounded ring.

        ``limit`` bounds how many traces are returned (newest last); the
        reply is frame-capped by dropping the oldest traces, reported in
        ``dropped`` so the client can lower ``limit`` and page.
        """
        limit = message.get("limit")
        if limit is not None and (isinstance(limit, bool)
                                  or not isinstance(limit, int) or limit < 1):
            raise WireProtocolError("trace 'limit' must be a positive integer")
        hub = self.engine.observability
        if hub is None:
            return {"ok": True, "attached": False, "traces": []}
        reply = {"ok": True, "attached": True,
                 "tracer": hub.tracer.snapshot(),
                 "traces": hub.tracer.recent(limit)}

        def size(message_: dict) -> int:
            try:
                return len(encode_frame(message_))
            except WireProtocolError:
                return MAX_FRAME_BYTES + 1

        dropped = 0
        while size(reply) > _STATS_BYTE_BUDGET and reply["traces"]:
            reply["traces"] = reply["traces"][1:]
            dropped += 1
        if dropped:
            reply["dropped"] = dropped
            reply["hint"] = "re-request with a smaller 'limit'"
        return reply

    def _op_profile(self, state: _Connection, message: dict) -> dict:
        """EXPLAIN ANALYZE for this connection's most recent profiled run.

        Works because every connection is served by exactly one thread:
        the engine parks each finished profile thread-locally, so the
        profile returned here is always *this* session's last query, never
        a concurrent neighbour's.
        """
        profile = self.engine.thread_profile()
        if profile is None:
            return {"ok": True, "available": False,
                    "hint": "run a query with {'profile': true} first"}
        reply = {"ok": True, "available": True, "render": profile.render(),
                 "profile": profile.as_dict()}

        def size(message_: dict) -> int:
            try:
                return len(encode_frame(message_))
            except WireProtocolError:
                return MAX_FRAME_BYTES + 1

        if size(reply) > _STATS_BYTE_BUDGET:
            # The span tree is the only unbounded part (bounded per query,
            # but up to max_spans nodes with attributes); the tabular
            # profile always fits.
            reply["profile"]["trace"] = {"truncated": True}
            reply["truncated"] = ["profile.trace"]
        return reply

    def _cap_text(self, reply: dict, key: str, offset: int) -> dict:
        """Cut an oversized text field and advertise ``next_offset``."""
        def size(message: dict) -> int:
            try:
                return len(encode_frame(message))
            except WireProtocolError:
                return MAX_FRAME_BYTES + 1

        full = reply.get(key, "")
        kept = full
        while size(reply) > _STATS_BYTE_BUDGET and kept:
            kept = kept[: len(kept) // 2]
            reply[key] = kept
        if len(kept) < len(full):
            reply["complete"] = False
            reply["next_offset"] = offset + len(kept)
        return reply

    def _op_stats(self, state: _Connection, message: dict) -> dict:
        sections: Dict[str, Callable[[], object]] = {
            "server": self.stats.snapshot,
            "engine": self.engine.health,
            "sessions": lambda: self.active_sessions,
            "admission": lambda: {"policy": self.admission,
                                  "max_concurrent_queries":
                                      self.max_concurrent_queries,
                                  "queue_timeout": self.queue_timeout},
            # The governance books alone — what a monitoring poll wants,
            # without the whole engine health payload.
            "governance": self.engine.governor.snapshot,
            "observability": self._observability_section,
            "slow_queries": self._slow_queries_section,
        }
        section = message.get("section")
        if section is not None:
            if section not in sections:
                raise WireProtocolError(
                    f"unknown stats section {section!r}; "
                    f"one of {sorted(sections)}")
            return self._cap_stats({"ok": True, section: sections[section]()})
        reply: dict = {"ok": True}
        for name, build in sections.items():
            if name in ("governance", "observability"):
                continue  # already inside the engine health payload
            if name == "slow_queries":
                continue  # full profiles are bulky; section-only
            reply[name] = build()
        return self._cap_stats(reply)

    def _observability_section(self) -> dict:
        hub = self.engine.observability
        return hub.snapshot() if hub is not None else {"attached": False}

    def _slow_queries_section(self) -> list:
        hub = self.engine.observability
        return hub.slow_queries.entries(limit=8) if hub is not None else []

    def _cap_stats(self, reply: dict) -> dict:
        """Keep a ``stats`` reply under the wire frame cap.

        The engine health payload is unbounded in principle (per-driver
        request counts, resilience books, persistence books all grow with
        configuration), and an oversized reply would kill the connection at
        the framing layer — the one op meant for observing an unhealthy
        server must never do that.  Over budget, the bulkiest sub-sections
        are shed (replaced by ``{"truncated": true}``) biggest-risk first
        and listed in ``truncated``, so the client can re-request each as
        its own ``section`` frame.
        """
        def size(message: dict) -> int:
            try:
                return len(encode_frame(message))
            except WireProtocolError:
                return MAX_FRAME_BYTES + 1
        if size(reply) <= _STATS_BYTE_BUDGET:
            return reply
        dropped: List[str] = []
        victims: List[Tuple[str, dict, str]] = []
        engine = reply.get("engine")
        if isinstance(engine, dict):
            victims += [("engine." + key, engine, key)
                        for key in ("drivers", "resilience", "persistence",
                                    "plan_feedback", "observability")]
        victims += [(key, reply, key) for key in ("engine", "server")]
        for label, container, key in victims:
            if key not in container or container[key] == {"truncated": True}:
                continue
            container[key] = {"truncated": True}
            dropped.append(label)
            if size(reply) <= _STATS_BYTE_BUDGET:
                break
        reply["truncated"] = dropped
        reply["hint"] = "re-request one section at a time: " \
                        "{'op': 'stats', 'section': <name>}"
        return reply

    _OPS = {
        "hello": _op_hello,
        "run": _op_run,
        "query": _op_query,
        "open": _op_open,
        "fetch": _op_fetch,
        "close": _op_close,
        "cancel": _op_cancel,
        "view": _op_view,
        "stats": _op_stats,
        "metrics": _op_metrics,
        "trace": _op_trace,
        "profile": _op_profile,
    }
