"""The Kleisli query service: concurrent CPL sessions over one shared engine.

The paper runs Kleisli as a *server* process that many biologist-facing
clients (Mosaic forms, the CPL top level, application programs) talk to at
once.  This package reproduces that deployment shape on top of the library
layers built so far: a TCP front-end that multiplexes any number of client
sessions onto **one** shared :class:`~repro.kleisli.engine.KleisliEngine`.

Wire protocol
=============

One TCP connection per client session.  Messages are JSON objects framed by
:mod:`repro.net.framing` (4-byte big-endian length prefix + UTF-8 JSON,
frames capped at ``MAX_FRAME_BYTES``).  Requests carry an ``op``; responses
carry ``ok`` plus op-specific fields, or ``ok: false`` with ``error`` and a
typed ``error_type`` the client re-raises.  Ops:

========  ====================================================================
op        meaning
========  ====================================================================
hello     handshake: server name, protocol version, supported ops
run       run a CPL *program* (defines allowed); returns the last value
query     run one CPL *expression*; returns its value
open      start a streamed query; returns a cursor id (holds a query slot)
fetch     pull up to ``n`` elements from a cursor (``done`` marks exhaustion)
close     release a cursor early
view      dispatch a CGI-style view path + form via the view gateway
stats     service counters + ``engine.health()`` snapshot
bye       clean goodbye; the server closes the connection
========  ====================================================================

CPL values cross the wire in the tagged, lossless, order-preserving JSON
encoding of :mod:`repro.server.wire` — ``decode_value(encode_value(v)) == v``,
which is what lets the harness assert bit-identical parity between served
results and single-user execution.

Session lifecycle
=================

Each accepted connection gets its own serving thread and its own
:class:`~repro.kleisli.session.Session` — so ``define``/``bind`` are
per-client, exactly like separate CPL top levels.  What is *shared* through
the engine, and therefore warm across all sessions, is everything PRs 2–5
made concurrency-safe: the compile cache, the plan-feedback ledger, the
per-driver statistics registry, and driver connections.  A disconnect —
clean ``bye``, socket death, or mid-stream abandonment — triggers
``Session.close()``, which closes only *that* session's live streams; each
run's cursors live in its own ``EvalScope``, so one client's exit can never
release another client's pipelines.

Backpressure
============

Query execution (``run``/``query``/``open``/``view``) must first be admitted
through a bounded pool of ``max_concurrent_queries`` slots.  ``run``/``query``
hold a slot for the duration of evaluation; an ``open`` cursor holds its slot
until it is drained or closed — open cursors *are* in-flight queries, so slow
consumers exert real backpressure.  When the pool is exhausted the policy
decides: ``admission="queue"`` waits up to ``queue_timeout`` seconds for a
slot, ``admission="reject"`` refuses immediately.  Either way a refusal is a
*typed* ``ServerOverloadedError`` response, never a failure of the session —
the client may simply retry.  Every successful admission reports how it got
in (``admission: "immediate" | "queued"``) so clients can observe pressure
building before rejections start.  A separate ``max_sessions`` cap bounds
concurrent connections; over-cap connects receive the same typed error as a
one-frame reply.
"""

from .service import PROTOCOL_VERSION, KleisliServer, ServerStats
from .client import KleisliClient
from .wire import decode_value, encode_value

__all__ = [
    "KleisliServer",
    "KleisliClient",
    "ServerStats",
    "PROTOCOL_VERSION",
    "encode_value",
    "decode_value",
]
