"""JSON-safe encoding of CPL values for the query-service wire protocol.

The encoding is *lossless over the CPL data model* and order-preserving:
``decode_value(encode_value(v)) == v`` for every value the evaluator can
produce (records, sets/bags/lists, variants, unit, scalars), and a
collection's element order survives the round trip — which is what lets the
soak tests assert **bit-identical** parity between a result fetched over the
wire and the same query's single-user ``execute`` value.

Scalars travel as themselves; structured values as a tagged object
``{"%": <tag>, ...}`` (the ``%`` key cannot collide with record labels,
which are plain strings in the ``v`` sub-object).  ``bytes`` are latin-1
strings under their own tag, since JSON has no byte type.
"""

from __future__ import annotations

from typing import Dict, List, Union

from ..core.errors import WireProtocolError
from ..core.values import (
    CBag,
    CList,
    CSet,
    Record,
    Unit,
    UNIT_VALUE,
    Variant,
)

__all__ = ["encode_value", "decode_value", "encode_warnings"]

_COLLECTION_TAGS = {CSet: "set", CBag: "bag", CList: "list"}
_COLLECTION_TYPES = {"set": CSet, "bag": CBag, "list": CList}


def encode_value(value: object) -> object:
    """Lower one CPL value into JSON-serializable data."""
    if isinstance(value, Record):
        return {"%": "record",
                "v": {label: encode_value(field)
                      for label, field in value.items()}}
    for cls, tag in _COLLECTION_TAGS.items():
        if isinstance(value, cls):
            return {"%": tag, "v": [encode_value(element) for element in value]}
    if isinstance(value, Variant):
        return {"%": "variant", "tag": value.tag, "v": encode_value(value.value)}
    if isinstance(value, Unit):
        return {"%": "unit"}
    if isinstance(value, bytes):
        return {"%": "bytes", "v": value.decode("latin-1")}
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise WireProtocolError(
        f"cannot encode {type(value).__name__} for the wire")


def encode_warnings(statistics: object) -> List[Dict[str, object]]:
    """The run's degradation warnings as wire-ready dicts (never omitted).

    A degraded federated run's partial results are *announced*: every
    ``run``/``query``/``fetch`` response carries a ``warnings`` list — one
    :class:`~repro.core.errors.SourceDegradedWarning` dict per source
    dropped (empty = the result is complete).  Encoding lives here, next to
    the value codec, so the wire shape of a warning is defined in one place.
    """
    if statistics is None:
        return []
    return [warning.as_dict() for warning in statistics.warnings]


def decode_value(payload: object) -> object:
    """Rebuild a CPL value from its wire encoding."""
    if isinstance(payload, dict):
        tag = payload.get("%")
        if tag == "record":
            fields = payload.get("v")
            if not isinstance(fields, dict):
                raise WireProtocolError("malformed record payload")
            return Record({label: decode_value(field)
                           for label, field in fields.items()})
        if tag in _COLLECTION_TYPES:
            elements = payload.get("v")
            if not isinstance(elements, list):
                raise WireProtocolError(f"malformed {tag} payload")
            return _COLLECTION_TYPES[tag](decode_value(element)
                                          for element in elements)
        if tag == "variant":
            return Variant(payload.get("tag", ""), decode_value(payload.get("v")))
        if tag == "unit":
            return UNIT_VALUE
        if tag == "bytes":
            raw = payload.get("v")
            if not isinstance(raw, str):
                raise WireProtocolError("malformed bytes payload")
            return raw.encode("latin-1")
        raise WireProtocolError(f"unknown wire tag {tag!r}")
    if payload is None or isinstance(payload, (bool, int, float, str)):
        return payload
    raise WireProtocolError(
        f"cannot decode {type(payload).__name__} from the wire")
