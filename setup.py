"""Legacy setup shim.

The environment this reproduction is developed in has no network access and no
``wheel`` package, so PEP 517 editable installs cannot build.  This setup.py
lets ``pip install -e . --no-use-pep517 --no-build-isolation`` (setuptools
``develop`` mode) work offline.  Package metadata lives in ``pyproject.toml``.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
)
