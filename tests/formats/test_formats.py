"""Tests for the flat-file formats: FASTA, EMBL, GCG, tabular."""

import pytest

from repro.core.errors import FormatError
from repro.core.values import CSet, Record
from repro.formats import (
    FastaRecord,
    read_embl,
    read_fasta,
    read_gcg,
    read_tabular,
    write_embl,
    write_fasta,
    write_gcg,
    write_tabular,
)
from repro.formats.embl import embl_to_cpl
from repro.formats.fasta import fasta_to_cpl
from repro.formats.gcg import gcg_checksum


class TestFasta:
    def test_roundtrip(self):
        records = [FastaRecord("M81409", "human perforin gene", "ACGT" * 30),
                   FastaRecord("X999", "", "GATTACA")]
        text = write_fasta(records)
        assert read_fasta(text) == records

    def test_multiline_sequences_are_joined(self):
        text = ">s1 desc\nACGT\nacgt\n>s2\nTTTT\n"
        records = read_fasta(text)
        assert records[0].sequence == "ACGTACGT"
        assert records[1].identifier == "s2"

    def test_errors(self):
        with pytest.raises(FormatError):
            read_fasta("ACGT\n")          # sequence before header
        with pytest.raises(FormatError):
            read_fasta(">\nACGT\n")       # empty header
        with pytest.raises(FormatError):
            read_fasta(">ok\nAC1T\n")     # invalid characters

    def test_fasta_to_cpl(self):
        values = fasta_to_cpl(read_fasta(">a x\nACGT\n"))
        record = values[0]
        assert record.project("identifier") == "a"
        assert record.project("length") == 4


class TestEmbl:
    def test_roundtrip_of_fields(self):
        text = write_embl([Record({
            "identifier": "HS22PER", "description": "Human perforin gene",
            "organism": "Homo sapiens", "keywords": ["perforin", "exon"],
            "references": ["Structure of the human perforin gene"],
            "sequence": "ACGTACGTAA"})])
        records = read_embl(text)
        assert len(records) == 1
        record = records[0]
        assert record.identifier == "HS22PER"
        assert record.organism == "Homo sapiens"
        assert record.keywords == ["perforin", "exon"]
        assert record.sequence == "ACGTACGTAA"

    def test_multiple_entries(self):
        text = write_embl([Record({"identifier": "A", "description": "", "organism": "",
                                   "keywords": [], "references": [], "sequence": "AC"}),
                           Record({"identifier": "B", "description": "", "organism": "",
                                   "keywords": [], "references": [], "sequence": "GT"})])
        assert [record.identifier for record in read_embl(text)] == ["A", "B"]

    def test_embl_to_cpl_keywords_become_a_set(self):
        text = write_embl([Record({"identifier": "A", "description": "d", "organism": "o",
                                   "keywords": ["k1", "k2"], "references": [],
                                   "sequence": "ACGT"})])
        value = embl_to_cpl(read_embl(text))[0]
        assert value.project("keywd") == CSet(["k1", "k2"])


class TestGcg:
    def test_roundtrip_and_checksum(self):
        sequence = "ACGTACGTGGCCTTAA" * 5
        text = write_gcg("M81409", sequence, comment="human perforin")
        record = read_gcg(text)
        assert record.name == "M81409"
        assert record.sequence == sequence
        assert record.checksum == gcg_checksum(sequence)

    def test_checksum_mismatch_detected(self):
        text = write_gcg("X", "ACGTACGT")
        tampered = text.replace("ACGTACGT".lower()[:4], "tttt")
        with pytest.raises(FormatError):
            read_gcg(tampered)

    def test_missing_divider_detected(self):
        with pytest.raises(FormatError):
            read_gcg("just a comment line\nacgt\n")


class TestTabular:
    def test_roundtrip(self):
        rows = [Record({"locus": "D22S1", "chromosome": "22"}),
                Record({"locus": "D22S2", "chromosome": "21"})]
        text = write_tabular(rows)
        assert read_tabular(text) == CSet(rows)

    def test_typed_columns(self):
        text = "locus\tlength\nD22S1\t120\n"
        value = read_tabular(text, types=["string", "int"])
        assert next(iter(value)).project("length") == 120

    def test_errors(self):
        with pytest.raises(FormatError):
            read_tabular("a\tb\n1\n")                    # ragged row
        with pytest.raises(FormatError):
            read_tabular("a\n x\n", types=["int"])        # bad conversion
        with pytest.raises(FormatError):
            read_tabular("a\tb\n1\t2\n", types=["int"])   # wrong arity

    def test_empty_input(self):
        assert read_tabular("") == CSet()
        assert write_tabular([]) == ""
