"""Tests for the non-monadic optimizations: local joins, subquery caching, parallel loops."""

import pytest

from repro.core.nrc import ast as A
from repro.core.nrc import builder as B
from repro.core.nrc.eval import EvalContext, Evaluator, evaluate
from repro.core.nrc.rewrite import RewriteStats
from repro.core.optimizer.caching import is_expensive, make_caching_rule_set
from repro.core.optimizer.joins import make_join_rule_set
from repro.core.optimizer.parallel import ParallelExt, make_parallel_rule_set
from repro.core.values import CSet, Record


def nested_loop_join_expr():
    """U{ U{ if o.id = i.ref then {[n=o.name, d=i.data]} else {} | i <- INNER } | o <- OUTER }"""
    condition = B.eq(B.project(B.var("o"), "id"), B.project(B.var("i"), "ref"))
    head = B.record(n=B.project(B.var("o"), "name"), d=B.project(B.var("i"), "data"))
    inner = B.ext("i", B.if_then_else(condition, B.singleton(head), B.empty()), B.var("INNER"))
    return B.ext("o", inner, B.var("OUTER"))


def join_data(outer_size=20, inner_size=30):
    outer = CSet([Record({"id": i, "name": f"n{i}"}) for i in range(outer_size)])
    inner = CSet([Record({"ref": i % 10, "data": f"d{i}"}) for i in range(inner_size)])
    return {"OUTER": outer, "INNER": inner}


class TestJoinRuleSet:
    def test_equality_condition_yields_indexed_join(self):
        rewritten = make_join_rule_set(minimum_inner_size=0).apply(nested_loop_join_expr())
        assert isinstance(rewritten, A.Join)
        assert rewritten.method == "indexed"
        assert rewritten.outer_key is not None

    def test_non_equality_condition_yields_blocked_join(self):
        condition = B.prim("lt", B.project(B.var("o"), "id"), B.project(B.var("i"), "ref"))
        inner = B.ext("i", B.if_then_else(condition, B.singleton(B.const(1)), B.empty()),
                      B.var("INNER"))
        expr = B.ext("o", inner, B.var("OUTER"))
        rewritten = make_join_rule_set(minimum_inner_size=0).apply(expr)
        assert isinstance(rewritten, A.Join)
        assert rewritten.method == "blocked"

    def test_join_rewrite_preserves_semantics(self):
        expr = nested_loop_join_expr()
        rewritten = make_join_rule_set(minimum_inner_size=0).apply(expr)
        data = join_data()
        assert evaluate(expr, data) == evaluate(rewritten, data)

    def test_correlated_inner_loop_is_not_rewritten(self):
        # The inner source depends on the outer variable: not a local join.
        inner = B.ext("i", B.singleton(B.var("i")), B.project(B.var("o"), "children"))
        expr = B.ext("o", inner, B.var("OUTER"))
        assert make_join_rule_set(minimum_inner_size=0).apply(expr) == expr

    def test_small_inner_is_left_alone_by_statistics(self):
        rewritten = make_join_rule_set(cardinality_of=lambda source: 2,
                                       minimum_inner_size=8).apply(nested_loop_join_expr())
        assert not isinstance(rewritten, A.Join)

    def test_indexed_join_runs_faster_statistics(self):
        """The indexed join touches far fewer pairs than the nested loop."""
        expr = nested_loop_join_expr()
        rewritten = make_join_rule_set(minimum_inner_size=0).apply(expr)
        data = join_data(outer_size=50, inner_size=50)

        plain_context = EvalContext()
        Evaluator(plain_context).evaluate(expr, _env(data))
        join_context = EvalContext()
        Evaluator(join_context).evaluate(rewritten, _env(data))
        assert join_context.statistics.joins_indexed == 1
        assert plain_context.statistics.ext_iterations == 50 + 50 * 50


def _env(data):
    from repro.core.nrc.eval import Environment

    return Environment(dict(data))


class TestCachingRuleSet:
    def _loop_with_inner_scan(self):
        inner = B.ext("y", B.singleton(B.var("y")), A.Scan("SRC", {"table": "t"}))
        return B.ext("x", inner, B.var("OUTER"))

    def test_independent_scan_source_is_cached(self):
        rewritten = make_caching_rule_set().apply(self._loop_with_inner_scan())
        inner_source = rewritten.body.source
        assert isinstance(inner_source, A.Cached)

    def test_dependent_source_is_not_cached(self):
        scan = A.Scan("SRC", {"table": "t"}, {"key": B.project(B.var("x"), "id")})
        inner = B.ext("y", B.singleton(B.var("y")), scan)
        expr = B.ext("x", inner, B.var("OUTER"))
        rewritten = make_caching_rule_set().apply(expr)
        assert not isinstance(rewritten.body.source, A.Cached)

    def test_source_depending_on_intermediate_binder_is_not_cached(self):
        """Regression: dependence on *any* enclosing loop variable blocks caching."""
        scan = A.Scan("SRC", {"table": "t"}, {"key": B.project(B.var("m"), "id")})
        innermost = B.ext("y", B.singleton(B.var("y")), scan)
        middle = B.ext("m", innermost, B.var("MIDDLE"))
        expr = B.ext("x", middle, B.var("OUTER"))
        rewritten = make_caching_rule_set().apply(expr)
        assert "cached" not in rewritten.pretty()

    def test_cheap_sources_are_not_cached(self):
        inner = B.ext("y", B.singleton(B.var("y")), B.var("SMALL"))
        expr = B.ext("x", inner, B.var("OUTER"))
        assert make_caching_rule_set().apply(expr) == expr

    def test_cached_scan_is_fetched_once(self):
        calls = []

        def executor(driver, request):
            calls.append(request)
            return CSet([1, 2, 3])

        expr = self._loop_with_inner_scan()
        rewritten = make_caching_rule_set().apply(expr)
        context = EvalContext(driver_executor=executor)
        Evaluator(context).evaluate(rewritten, _env({"OUTER": CSet(range(5))}))
        assert len(calls) == 1

    def test_is_expensive_detects_scans_and_joins(self):
        assert is_expensive(A.Scan("S", {}))
        assert not is_expensive(B.var("x"))
        assert is_expensive(B.ext("x", B.singleton(B.var("x")), A.Scan("S", {})))

    def test_top_level_source_is_not_cached(self):
        # The outermost loop's source is evaluated exactly once; caching it
        # would only obscure the plan.
        expr = B.ext("x", B.singleton(B.project(B.var("x"), "a")), A.Scan("SRC", {"table": "t"}))
        assert make_caching_rule_set().apply(expr) == expr

    def test_source_depending_on_outermost_binder_is_not_cached(self):
        """Regression: the rule must see *all* enclosing binders, not just the
        loop it happens to fire on — a deeply nested source depending on the
        outermost loop variable must stay uncached."""
        scan = A.Scan("SRC", {"table": "t"}, {"key": B.project(B.var("x"), "id")})
        innermost = B.ext("y", B.singleton(B.var("y")), scan)
        middle = B.ext("m", innermost, B.var("MIDDLE"))
        expr = B.ext("x", middle, B.var("OUTER"))
        assert "cached" not in make_caching_rule_set().apply(expr).pretty()

    def test_join_inner_depending_on_enclosing_loop_is_not_cached(self):
        """Regression for the mapsearch bug: a Join nested in an outer loop
        whose inner scan depends on the outer loop variable must not be cached
        (caching froze the first accession's GenBank result for every locus)."""
        dependent_scan = A.Scan("GenBank", {"db": "na"},
                                {"select": B.project(B.var("outer_rec"), "genbank_ref")})
        join = A.Join("blocked", "o", B.var("CYTO"), "i", dependent_scan,
                      condition=B.eq(B.project(B.var("o"), "id"), B.const(1)),
                      body=B.singleton(B.var("i")))
        expr = B.ext("outer_rec", join, A.Scan("GDB", {"table": "object_genbank_eref"}))
        rewritten = make_caching_rule_set().apply(expr)
        assert "cached(scan[GenBank]" not in rewritten.pretty()

    def test_join_inner_independent_of_all_loops_is_cached(self):
        independent_scan = A.Scan("GenBank", {"db": "na", "select": "fixed"})
        join = A.Join("blocked", "o", B.var("CYTO"), "i", independent_scan,
                      condition=None, body=B.singleton(B.var("i")))
        expr = B.ext("outer_rec", join, A.Scan("GDB", {"table": "locus"}))
        rewritten = make_caching_rule_set().apply(expr)
        assert "cached(scan[GenBank]" in rewritten.pretty()

    def test_dependent_pushdown_query_keeps_its_answer(self, integrated_session):
        """End-to-end regression: optimized and unoptimized answers agree for a
        query whose trailing generator calls a driver with a variable bound by
        an earlier generator (the mapsearch shape)."""
        integrated_session.run(
            'define ASN-IDs == \\accession => GenBank([db = "na", '
            'select = "accession " ^ accession, path = "Seq-entry.seq.id..giim"])')
        query = ('{[ref = y, id = uid] | '
                 '[genbank_ref = \\y, object_class_key = 1, ...] <- GDB-Tab("object_genbank_eref"), '
                 '[loc_cyto_chrom_num = "22", ...] <- GDB-Tab("locus_cyto_location"), '
                 '\\uid <- ASN-IDs(y)}')
        optimized = integrated_session.run(query, optimize=True)
        unoptimized = integrated_session.run(query, optimize=False)
        assert optimized == unoptimized
        assert len(optimized) > 0


class TestParallelRuleSet:
    def _remote_loop(self):
        scan = A.Scan("REMOTE", {"db": "na"}, {"select": B.project(B.var("x"), "acc")})
        body = B.singleton(B.record(acc=B.project(B.var("x"), "acc"),
                                    hits=B.prim("count", scan)))
        return B.ext("x", body, B.var("OUTER"))

    def test_remote_dependent_loop_becomes_parallel(self):
        rule_set = make_parallel_rule_set(lambda driver: driver == "REMOTE", max_workers=3)
        rewritten = rule_set.apply(self._remote_loop())
        assert isinstance(rewritten, ParallelExt)
        assert rewritten.max_workers == 3

    def test_local_driver_loop_stays_sequential(self):
        rule_set = make_parallel_rule_set(lambda driver: False)
        assert not isinstance(rule_set.apply(self._remote_loop()), ParallelExt)

    def test_parallel_ext_preserves_semantics(self):
        def executor(driver, request):
            return CSet([request["select"], request["select"] * 2])

        expr = self._remote_loop()
        parallel = make_parallel_rule_set(lambda d: True, max_workers=4).apply(expr)
        data = {"OUTER": CSet([Record({"acc": i}) for i in range(1, 9)])}
        sequential_value = Evaluator(EvalContext(driver_executor=executor)).evaluate(
            expr, _env(data))
        parallel_value = Evaluator(EvalContext(driver_executor=executor)).evaluate(
            parallel, _env(data))
        assert sequential_value == parallel_value

    def test_parallel_loop_never_exceeds_server_cap(self):
        from repro.net.remote import RemoteSource

        server = RemoteSource("S", lambda request: CSet([request["select"]]),
                              latency=0.005, max_concurrent_requests=3)

        def executor(driver, request):
            return server.call(request)

        parallel = make_parallel_rule_set(lambda d: True, max_workers=3).apply(self._remote_loop())
        data = {"OUTER": CSet([Record({"acc": i}) for i in range(12)])}
        Evaluator(EvalContext(driver_executor=executor)).evaluate(parallel, _env(data))
        assert server.log.max_concurrency() <= 3
        assert server.request_count == 12


class TestStreamingJoinHint:
    """The pipelined-execution hint: blocked joins get block size 1 so the
    streamed probe side yields per outer element (indexed joins already
    probe per element and are unaffected)."""

    def test_streaming_hint_emits_unit_block_blocked_joins(self):
        condition = B.prim("lt", B.project(B.var("o"), "id"),
                           B.project(B.var("i"), "ref"))
        inner = B.ext("i", B.if_then_else(condition, B.singleton(B.const(1)),
                                          B.empty()), B.var("INNER"))
        expr = B.ext("o", inner, B.var("OUTER"))
        plain = make_join_rule_set(minimum_inner_size=0).apply(expr)
        hinted = make_join_rule_set(minimum_inner_size=0,
                                    streaming=True).apply(expr)
        assert isinstance(plain, A.Join) and plain.method == "blocked"
        assert isinstance(hinted, A.Join) and hinted.method == "blocked"
        assert plain.block_size == 256
        assert hinted.block_size == 1

    def test_streaming_hint_keeps_the_indexed_method(self):
        hinted = make_join_rule_set(minimum_inner_size=0,
                                    streaming=True).apply(nested_loop_join_expr())
        assert isinstance(hinted, A.Join)
        assert hinted.method == "indexed"

    def test_streaming_hint_preserves_semantics(self):
        condition = B.prim("lt", B.project(B.var("o"), "id"),
                           B.project(B.var("i"), "ref"))
        head = B.record(n=B.project(B.var("o"), "name"),
                        d=B.project(B.var("i"), "data"))
        inner = B.ext("i", B.if_then_else(condition, B.singleton(head),
                                          B.empty()), B.var("INNER"))
        expr = B.ext("o", inner, B.var("OUTER"))
        hinted = make_join_rule_set(minimum_inner_size=0,
                                    streaming=True).apply(expr)
        data = join_data()
        assert evaluate(expr, data) == evaluate(hinted, data)

    def test_unit_block_join_fetches_the_inner_side_once(self):
        """Block size 1 is the per-element probe: the inner side is
        materialised once (like the indexed build side), not re-evaluated
        per one-element block — in all three backends."""
        from repro.core.values import CList
        from repro.kleisli.drivers.base import Driver
        from repro.kleisli.engine import KleisliEngine

        class InnerDriver(Driver):
            def __init__(self):
                super().__init__("inner")

            def _execute(self, request):
                return CList(range(5))

        def unit_join():
            return A.Join("blocked", "o", B.var("OUTER"), "i",
                          A.Scan("inner", {"table": "t"}, kind="list"),
                          B.prim("lt", B.var("o"), B.var("i")),
                          B.singleton(B.var("o"), "list"),
                          None, None, "list", 1)

        outer = CList(range(10))
        for mode in ("interpret", "compiled"):
            engine = KleisliEngine()
            engine.register_driver(InnerDriver())
            engine.execute(unit_join(), {"OUTER": outer},
                           optimize=False, mode=mode)
            assert engine.last_eval_statistics.scan_requests == 1, mode
            engine = KleisliEngine()
            engine.register_driver(InnerDriver())
            list(engine.stream(unit_join(), {"OUTER": outer},
                               optimize=False, mode=mode))
            assert engine.last_eval_statistics.scan_requests == 1, \
                f"stream/{mode}"
