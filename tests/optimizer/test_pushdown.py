"""Tests for SQL and ASN.1-path pushdown (experiments E4 / E5 correctness side)."""

import pytest

from repro.bio.gdb import build_gdb
from repro.bio.genbank import build_genbank
from repro.core.nrc import ast as A
from repro.kleisli.drivers import EntrezDriver, RelationalDriver
from repro.kleisli.session import Session


@pytest.fixture(scope="module")
def gdb_session():
    session = Session()
    session.register_driver(RelationalDriver("GDB", build_gdb(locus_count=80)))
    return session


@pytest.fixture(scope="module")
def genbank_session():
    server = build_genbank(list(range(1, 11)), homologues_per_entry=1, sequence_length=100)
    session = Session()
    session.register_driver(EntrezDriver("GenBank", server))
    return session


LOCI22_CPL = '''
{[locus-symbol = x, genbank-ref = y] |
  [locus_symbol = \\x, locus_id = \\a, ...] <- GDB-Tab("locus"),
  [genbank_ref = \\y, object_id = a, object_class_key = 1, ...] <- GDB-Tab("object_genbank_eref"),
  [loc_cyto_chrom_num = "22", locus_cyto_location_id = a, ...] <- GDB-Tab("locus_cyto_location")}
'''


class TestDriverIntroduction:
    def test_table_function_becomes_scan(self, gdb_session):
        result = gdb_session.query('GDB-Tab("locus")')
        assert isinstance(result.optimized, A.Scan)
        assert result.optimized.request == {"table": "locus"}

    def test_raw_request_record_becomes_scan(self, gdb_session):
        result = gdb_session.query('GDB([query = "select locus_id from locus"])')
        assert isinstance(result.optimized, A.Scan)
        assert "query" in result.optimized.request

    def test_computed_argument_goes_into_args(self, gdb_session):
        result = gdb_session.query('GDB([query = "select * from " ^ "locus"])')
        assert isinstance(result.optimized, A.Scan)
        assert "query" in result.optimized.args
        assert len(result.value) == 80


class TestSQLJoinPushdown:
    def test_loci22_becomes_single_sql_query(self, gdb_session):
        """The paper's headline example: three generators become one shipped query."""
        result = gdb_session.query(LOCI22_CPL)
        assert isinstance(result.optimized, A.Scan)
        sql = result.optimized.request["query"]
        assert sql.count("from") == 1
        for table in ("locus", "object_genbank_eref", "locus_cyto_location"):
            assert table in sql
        assert "loc_cyto_chrom_num = '22'" in sql

    def test_pushdown_preserves_results(self, gdb_session):
        optimized = gdb_session.query(LOCI22_CPL).value
        unoptimized = gdb_session.query(LOCI22_CPL, optimize=False).value
        assert optimized == unoptimized
        assert len(optimized) > 0

    def test_single_scan_request_after_pushdown(self, gdb_session):
        gdb_session.query(LOCI22_CPL)
        assert gdb_session.engine.last_eval_statistics.scan_requests == 1

    def test_selection_and_projection_pushdown(self, gdb_session):
        query = '{[sym = x] | [locus_symbol = \\x, chromosome = "22", ...] <- GDB-Tab("locus")}'
        result = gdb_session.query(query)
        assert isinstance(result.optimized, A.Scan)
        sql = result.optimized.request["query"]
        assert "chromosome = '22'" in sql
        assert result.value == gdb_session.query(query, optimize=False).value

    def test_head_referencing_whole_tuple_pushes_star(self, gdb_session):
        query = '{p | \\p <- GDB-Tab("locus"), p.chromosome = "22"}'
        result = gdb_session.query(query)
        assert isinstance(result.optimized, A.Scan)
        assert ".*" in result.optimized.request["query"]
        assert result.value == gdb_session.query(query, optimize=False).value

    def test_unpushable_condition_stays_local_and_correct(self, gdb_session):
        # string_length is not expressible in the SQL subset, so the query must
        # still run (partially pushed or fully local) with correct results.
        query = ('{p.locus_symbol | \\p <- GDB-Tab("locus"),'
                 ' string_length(p.locus_symbol) > 5}')
        result = gdb_session.query(query)
        assert result.value == gdb_session.query(query, optimize=False).value


class TestPathPushdown:
    def test_projection_comprehension_extends_path(self, genbank_session):
        query = '{e.accession | \\e <- GenBank([db = "na", select = "organism homo_sapiens"])}'
        # organism values are indexed lowercased with spaces; use the chromosome index instead.
        query = '{e.accession | \\e <- GenBank([db = "na", select = "chromosome 22"])}'
        result = genbank_session.query(query)
        assert isinstance(result.optimized, A.Scan)
        assert result.optimized.request.get("path", "").endswith(".accession")
        assert result.value == genbank_session.query(query, optimize=False).value
        assert len(result.value) == 10

    def test_nested_projection_chain(self, genbank_session):
        query = '{e.seq.length | \\e <- GenBank([db = "na", select = "chromosome 22"])}'
        result = genbank_session.query(query)
        assert isinstance(result.optimized, A.Scan)
        assert result.optimized.request["path"].endswith(".seq.length")
        assert result.value == genbank_session.query(query, optimize=False).value

    def test_explicit_path_request_still_works(self, genbank_session):
        query = ('GenBank([db = "na", select = "chromosome 22",'
                 ' path = "Seq-entry.seq.id..giim"])')
        result = genbank_session.query(query)
        assert len(result.value) == 10
        assert all(isinstance(uid, int) for uid in result.value)

    def test_non_projection_body_is_not_pushed(self, genbank_session):
        query = ('{[acc = e.accession, org = e.organism] |'
                 ' \\e <- GenBank([db = "na", select = "chromosome 22"])}')
        result = genbank_session.query(query)
        # A record head cannot become a single path; the loop stays local.
        assert not isinstance(result.optimized, A.Scan)
        assert result.value == genbank_session.query(query, optimize=False).value
