"""Tests for the staged optimizer pipeline and its ablation switches."""

import pytest

from repro.core.nrc import ast as A
from repro.core.nrc import builder as B
from repro.core.optimizer import (
    OptimizerConfig,
    OptimizerPipeline,
    ScanSpec,
    count_projection_sites,
    homogeneous_projection,
)
from repro.core.optimizer.projections import is_homogeneous
from repro.core.records import Record
from repro.core.values import CSet


@pytest.fixture()
def pipeline():
    registry = {"GDB-Tab": ScanSpec("GDB", {}, argument_key="table")}
    capabilities = {"GDB": frozenset({"sql"}), "GenBank": frozenset({"path", "index-select"})}
    return OptimizerPipeline(function_registry=registry, capabilities=capabilities)


class TestPipeline:
    def test_stages_compose(self, pipeline):
        # A bare-projection head cannot be expressed as a SQL result relation
        # (SQL returns records, CPL wants a set of strings), so the whole block
        # is not collapsed — but the projection IS pushed as a column list.
        expr = B.ext("x", B.singleton(B.project(B.var("x"), "locus_symbol")),
                     B.apply(B.var("GDB-Tab"), B.const("locus")))
        optimized = pipeline.optimize(expr)
        assert isinstance(optimized, A.Ext)
        assert isinstance(optimized.source, A.Scan)
        assert optimized.source.request["columns"] == ["locus_symbol"]

    def test_record_head_collapses_to_single_query(self, pipeline):
        expr = B.ext("x", B.singleton(B.record(sym=B.project(B.var("x"), "locus_symbol"))),
                     B.apply(B.var("GDB-Tab"), B.const("locus")))
        optimized = pipeline.optimize(expr)
        assert isinstance(optimized, A.Scan)
        assert "select" in optimized.request["query"]

    def test_disabled_config_is_identity_on_driverless_terms(self):
        pipeline = OptimizerPipeline(config=OptimizerConfig.disabled())
        expr = B.ext("x", B.singleton(B.var("x")), B.var("S"))
        assert pipeline.optimize(expr) == expr

    def test_monadic_only_config(self):
        pipeline = OptimizerPipeline(config=OptimizerConfig(
            sql_pushdown=False, path_pushdown=False, local_joins=False,
            caching=False, parallelism=False))
        inner = B.ext("y", B.singleton(B.var("y")), B.var("S"))
        outer = B.ext("x", B.singleton(B.var("x")), inner)
        optimized = pipeline.optimize(outer)
        assert isinstance(optimized, A.Ext)
        assert isinstance(optimized.source, A.Var)

    def test_explain_produces_stage_traces(self, pipeline):
        expr = B.apply(B.var("GDB-Tab"), B.const("locus"))
        _, stats, traces = pipeline.explain(expr)
        assert any(name == "introduction" for name, _ in traces)
        assert stats.fired("driver-introduction") == 1

    def test_rebuild_picks_up_new_registry(self, pipeline):
        pipeline.function_registry["NewFn"] = ScanSpec("GDB", {"table": "locus"})
        pipeline.rebuild()
        optimized = pipeline.optimize(B.apply(B.var("NewFn"), B.const(None)))
        assert isinstance(optimized, A.Scan)


class TestProjectionHelpers:
    def test_count_projection_sites(self):
        body = B.singleton(B.record(a=B.project(B.var("x"), "locus"),
                                    b=B.project(B.var("x"), "locus"),
                                    c=B.project(B.var("x"), "chrom")))
        counts = count_projection_sites(body, "x")
        assert counts == {"locus": 2, "chrom": 1}

    def test_is_homogeneous(self):
        homogeneous = [Record({"a": i, "b": i}) for i in range(5)]
        assert is_homogeneous(homogeneous)
        assert not is_homogeneous(homogeneous + [Record({"a": 1})])
        assert not is_homogeneous([Record({"a": 1}), "not a record"])

    def test_homogeneous_projection_matches_naive(self):
        records = [Record({"locus": f"D22S{i}", "chrom": "22", "n": i}) for i in range(50)]
        optimized = homogeneous_projection(records, ["locus", "n"])
        naive = CSet([Record({"locus": r.project("locus"), "n": r.project("n")})
                      for r in records])
        assert optimized == naive

    def test_homogeneous_projection_custom_combine(self):
        records = [Record({"a": i, "b": i * 2}) for i in range(10)]
        result = homogeneous_projection(records, ["a", "b"],
                                        combine=lambda a, b: a + b, kind="list")
        assert list(result) == [i * 3 for i in range(10)]


class TestPrepare:
    def test_prepare_rewrites_then_lowers_to_closures(self, pipeline):
        from repro.core.nrc.compile import CompiledQuery
        from repro.core.nrc.eval import EvalContext, Environment

        expr = B.ext("x", B.singleton(B.prim("add", B.var("x"), B.const(1))),
                     B.ext("y", B.singleton(B.var("y")), B.var("S")))
        optimized, compiled = pipeline.prepare(expr)
        assert isinstance(compiled, CompiledQuery)
        # The compiler saw the post-rewrite term (fused: one loop, not two).
        assert compiled.expr is optimized
        assert isinstance(optimized, A.Ext) and not isinstance(optimized.source, A.Ext)
        context = EvalContext()
        value = compiled(Environment({"S": CSet([1, 2, 3])}), context)
        assert value == CSet([2, 3, 4])
        assert context.statistics.ext_iterations == 3
