"""Tests for the ASN.1 substrate: schemas, value text, paths, pruning parse, Entrez."""

import pytest

from repro.asn1 import (
    EntrezServer,
    parse_asn1_schema,
    parse_path,
    parse_value,
    parse_value_with_path,
    print_value,
)
from repro.core import types as T
from repro.core.errors import ASN1Error, ASN1ParseError, PathApplicationError, PathSyntaxError
from repro.core.values import CList, CSet, Record, Variant
from repro.asn1.values import conforms, validate_value

SPEC = """
Seq-entry ::= SEQUENCE {
    accession VisibleString,
    seq SEQUENCE {
        id SET OF CHOICE { giim INTEGER, genbank VisibleString },
        length INTEGER
    },
    keywd SET OF VisibleString
}
"""


@pytest.fixture(scope="module")
def seq_entry_type():
    return parse_asn1_schema(SPEC).cpl_type("Seq-entry")


@pytest.fixture()
def sample_entry():
    return Record({
        "accession": "M81409",
        "seq": Record({"id": CSet([Variant("giim", 5001), Variant("genbank", "M81409")]),
                       "length": 1234}),
        "keywd": CSet(["perforin", "chromosome 22"]),
    })


class TestTypeSpec:
    def test_sequence_of_and_set_of(self):
        schema = parse_asn1_schema("T ::= SEQUENCE OF INTEGER\nS ::= SET OF VisibleString")
        assert schema.cpl_type("T") == T.ListType(T.INT)
        assert schema.cpl_type("S") == T.SetType(T.STRING)

    def test_choice_becomes_variant(self, seq_entry_type):
        id_type = seq_entry_type.field("seq").field("id")
        assert isinstance(id_type.element, T.VariantType)
        assert id_type.element.case("giim") == T.INT

    def test_named_type_references_resolve(self):
        schema = parse_asn1_schema("""
            Author ::= SEQUENCE { name VisibleString }
            Publication ::= SEQUENCE { authors SEQUENCE OF Author }
        """)
        ty = schema.cpl_type("Publication")
        assert ty.field("authors") == T.ListType(T.RecordType({"name": T.STRING}))

    def test_undefined_reference_raises(self):
        schema = parse_asn1_schema("T ::= SEQUENCE { x Undefined }")
        with pytest.raises(ASN1ParseError):
            schema.cpl_type("T")

    def test_recursive_type_rejected(self):
        schema = parse_asn1_schema("Node ::= SEQUENCE { child Node }")
        with pytest.raises(ASN1ParseError):
            schema.cpl_type("Node")

    def test_unknown_type_name(self, seq_entry_type):
        schema = parse_asn1_schema(SPEC)
        with pytest.raises(ASN1ParseError):
            schema.cpl_type("NoSuchType")


class TestValueTextRoundtrip:
    def test_roundtrip(self, seq_entry_type, sample_entry):
        text = print_value(sample_entry)
        assert parse_value(text, seq_entry_type) == sample_entry

    def test_string_escaping(self):
        ty = T.RecordType({"note": T.STRING})
        value = Record({"note": 'says "hi"'})
        assert parse_value(print_value(value), ty) == value

    def test_validation(self, seq_entry_type, sample_entry):
        validate_value(sample_entry, seq_entry_type)
        assert conforms(sample_entry, seq_entry_type)
        assert not conforms(Record({"accession": 42}), seq_entry_type)

    def test_malformed_text_raises(self, seq_entry_type):
        with pytest.raises(ASN1ParseError):
            parse_value("{ accession }", seq_entry_type)
        with pytest.raises(ASN1ParseError):
            parse_value('{ accession "x" } trailing', seq_entry_type)


class TestPathLanguage:
    def test_parse_paper_path(self):
        path = parse_path("Seq-entry.seq.id..giim")
        assert path.root == "Seq-entry"
        assert repr(path) == "Seq-entry.seq.id..giim"

    def test_apply_projections_and_variant_extraction(self, sample_entry):
        path = parse_path("Seq-entry.seq.id..giim")
        assert path.apply(sample_entry) == CSet([5001])

    def test_projection_maps_over_collections(self, sample_entry):
        entries = CSet([sample_entry])
        assert parse_path("E.accession").apply(entries) == CSet(["M81409"])

    def test_variant_step_on_mismatching_single_variant_raises(self):
        path = parse_path("E..giim")
        with pytest.raises(PathApplicationError):
            path.apply(Variant("genbank", "M81409"))

    def test_missing_field_raises(self, sample_entry):
        with pytest.raises(PathApplicationError):
            parse_path("E.nosuch").apply(sample_entry)

    def test_syntax_errors(self):
        with pytest.raises(PathSyntaxError):
            parse_path("")
        with pytest.raises(PathSyntaxError):
            parse_path("E...x")
        with pytest.raises(PathSyntaxError):
            parse_path("E.seq.")


class TestPruningParse:
    def test_pruned_parse_equals_parse_then_apply(self, seq_entry_type, sample_entry):
        text = print_value(sample_entry)
        for path_text in ("Seq-entry.accession", "Seq-entry.seq.length",
                          "Seq-entry.seq.id..giim", "Seq-entry.keywd"):
            path = parse_path(path_text)
            assert parse_value_with_path(text, seq_entry_type, path) == \
                path.apply(parse_value(text, seq_entry_type))

    def test_pruning_skips_fields_not_on_path(self, seq_entry_type, sample_entry):
        text = print_value(sample_entry)
        value = parse_value_with_path(text, seq_entry_type, parse_path("Seq-entry.accession"))
        assert value == "M81409"

    def test_path_to_missing_field_raises(self, seq_entry_type, sample_entry):
        text = print_value(sample_entry)
        with pytest.raises(PathApplicationError):
            parse_value_with_path(text, seq_entry_type, parse_path("Seq-entry.nosuch"))


class TestEntrez:
    @pytest.fixture()
    def server(self, seq_entry_type, sample_entry):
        server = EntrezServer("NCBI")
        division = server.create_division("na", seq_entry_type)
        uid = division.add_entry(sample_entry, {"accession": ["M81409"],
                                                "keyword": ["perforin"]})
        other = Record({
            "accession": "X999",
            "seq": Record({"id": CSet([Variant("giim", 7002)]), "length": 50}),
            "keywd": CSet(["perforin"]),
        })
        other_uid = division.add_entry(other, {"accession": ["X999"], "keyword": ["perforin"]})
        division.add_link(uid, other_uid, "na", 42.0, organism="Mus musculus")
        return server

    def test_index_selection(self, server):
        assert len(server.query("na", "accession M81409")) == 1
        assert len(server.query("na", "keyword perforin")) == 2

    def test_boolean_combination(self, server):
        assert len(server.query_uids("na", "keyword perforin AND accession X999")) == 1
        assert len(server.query_uids("na", "accession M81409 OR accession X999")) == 2

    def test_unknown_index_raises(self, server):
        with pytest.raises(ASN1Error):
            server.query("na", "organism human")

    def test_path_applied_during_retrieval(self, server):
        values = server.query("na", "accession M81409", path="Seq-entry.seq.id..giim")
        assert values == [CSet([5001])]

    def test_fetch_and_links(self, server):
        uid = server.query_uids("na", "accession M81409")[0]
        entry = server.fetch("na", uid)
        assert entry.project("accession") == "M81409"
        links = server.links("na", uid)
        assert len(links) == 1
        assert links[0]["organism"] == "Mus musculus"

    def test_unknown_division_raises(self, server):
        with pytest.raises(ASN1Error):
            server.query("protein", "accession X")

    def test_request_log_records_traffic(self, server):
        server.query("na", "accession M81409")
        assert server.request_log[-1]["select"] == "accession M81409"
