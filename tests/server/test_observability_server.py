"""The observability wire surface: metrics/trace/profile ops, view frame-cap.

Server-side behaviours PR 10 added:

* ``metrics`` — Prometheus text exposition, paged past the frame cap via
  ``offset``/``next_offset``;
* ``trace`` — the tracer's recent-trace ring, frame-capped by dropping the
  oldest traces;
* ``profile`` — this connection's last EXPLAIN ANALYZE (thread-local on
  the engine, so sessions never see each other's profiles);
* the ``view`` op is frame-capped like ``stats``: oversized replies shed
  ``value`` first, then page the body via ``section``/``offset``;
* admission outcomes and graceful drains feed the hub's counters.

Every op also answers on a hub-less server (``attached: false``) — the
zero-recorder contract extends to the wire.
"""

import pytest

from repro.obs import Observability
from repro.server import KleisliClient, KleisliServer
from repro.views.parameters import ViewParameter
from repro.views.registry import ViewRegistry
from repro.views.view import UserView

DEFINE_DB = ('define DB == {[title = "perforin", year = 1989], '
             '[title = "bcr", year = 1992], '
             '[title = "exons", year = 1992]}')
YEAR_QUERY = '{p.title | \\p <- DB, p.year = 1992}'


def _hub_server(**kwargs):
    server = KleisliServer(**kwargs)
    hub = server.engine.attach_observability(
        Observability(slow_query_threshold=0.0))
    return server, hub


@pytest.fixture()
def hub_server():
    server, hub = _hub_server()
    with server:
        yield server, hub


@pytest.fixture()
def client(hub_server):
    server, _ = hub_server
    with KleisliClient(server.address) as c:
        c.run(DEFINE_DB)
        yield c


# -- the metrics op -----------------------------------------------------------

class TestMetricsOp:
    def test_exposition_contains_the_standard_instruments(self, client):
        client.query(YEAR_QUERY)
        reply = client.metrics()
        assert reply["attached"] is True and reply["complete"] is True
        text = reply["text"]
        assert "# TYPE repro_queries_total counter" in text
        assert "# TYPE repro_driver_request_seconds histogram" in text
        assert client.metrics_text() == text

    def test_oversized_exposition_pages_by_offset(self, client, monkeypatch):
        client.query(YEAR_QUERY)
        full = client.metrics()["text"]
        monkeypatch.setattr("repro.server.service._STATS_BYTE_BUDGET", 900)
        first = client.metrics()
        assert first["complete"] is False
        assert 0 < len(first["text"]) < len(full)
        assert first["next_offset"] == len(first["text"])
        assert client.metrics_text() == full

    def test_hubless_server_answers_detached(self):
        with KleisliServer() as server, KleisliClient(server.address) as c:
            reply = c.metrics()
            assert reply["attached"] is False and reply["text"] == ""

    def test_bad_offset_is_a_typed_wire_error(self, client):
        from repro.core.errors import RemoteQueryError
        with pytest.raises(RemoteQueryError) as info:
            client.metrics(offset=-1)
        assert info.value.error_type == "WireProtocolError"


# -- the trace op -------------------------------------------------------------

class TestTraceOp:
    def test_finished_queries_appear_in_the_ring(self, client):
        client.query(YEAR_QUERY)
        client.query(YEAR_QUERY)
        reply = client.trace()
        assert reply["attached"] is True
        assert reply["tracer"]["finished"] >= 2
        assert len(reply["traces"]) >= 2
        assert reply["traces"][-1]["finished"] is True

    def test_limit_takes_the_newest(self, client):
        for _ in range(3):
            client.query(YEAR_QUERY)
        assert len(client.trace(limit=1)["traces"]) == 1

    def test_oversized_reply_drops_oldest_traces(self, client, monkeypatch):
        for _ in range(4):
            client.query(YEAR_QUERY)
        monkeypatch.setattr("repro.server.service._STATS_BYTE_BUDGET", 500)
        reply = client.trace()
        assert reply["dropped"] >= 1
        assert "hint" in reply

    def test_hubless_server_answers_detached(self):
        with KleisliServer() as server, KleisliClient(server.address) as c:
            assert c.trace() == {"ok": True, "attached": False, "traces": []}


# -- the profile op -----------------------------------------------------------

class TestProfileOp:
    def test_profiled_query_yields_explain_analyze(self, client):
        value = client.query(YEAR_QUERY, profile=True)
        assert {v for v in value} == {"bcr", "exons"}
        reply = client.profile()
        assert reply["available"] is True
        assert reply["render"].startswith("EXPLAIN ANALYZE")
        profile = reply["profile"]
        assert profile["actual_rows"] == 2.0
        assert profile["status"] == "ok"
        assert profile["trace"] is not None

    def test_profile_is_per_connection(self, hub_server):
        server, _ = hub_server
        with KleisliClient(server.address) as a, \
                KleisliClient(server.address) as b:
            a.run(DEFINE_DB)
            a.query(YEAR_QUERY, profile=True)
            assert a.profile()["available"] is True
            assert b.profile()["available"] is False

    def test_streamed_profile_finalizes_when_the_cursor_drains(self, client):
        elements = list(client.stream(YEAR_QUERY, profile=True))
        assert len(elements) == 2
        reply = client.profile()
        assert reply["available"] is True
        assert reply["profile"]["actual_rows"] == 2.0

    def test_oversized_profile_sheds_the_span_tree(self, client, monkeypatch):
        client.query(YEAR_QUERY, profile=True)
        monkeypatch.setattr("repro.server.service._STATS_BYTE_BUDGET", 700)
        reply = client.profile()
        assert reply["truncated"] == ["profile.trace"]
        assert reply["profile"]["trace"] == {"truncated": True}
        assert reply["render"].startswith("EXPLAIN ANALYZE")


# -- stats sections -----------------------------------------------------------

class TestStatsSections:
    def test_observability_section_reports_the_hub(self, client):
        client.query(YEAR_QUERY)
        section = client.server_stats("observability")["observability"]
        assert section["attached"] is True
        assert section["tracer"]["finished"] >= 1
        assert section["metric_count"] == 16

    def test_slow_queries_section_lists_profiles(self, client):
        client.query(YEAR_QUERY)
        entries = client.server_stats("slow_queries")["slow_queries"]
        assert entries and entries[-1]["actual_rows"] == 2.0

    def test_sections_answer_detached_without_a_hub(self):
        with KleisliServer() as server, KleisliClient(server.address) as c:
            reply = c.server_stats("observability")
            assert reply["observability"] == {"attached": False}
            assert c.server_stats("slow_queries")["slow_queries"] == []


# -- admission + drain counters -----------------------------------------------

class TestServiceCounters:
    def test_immediate_admissions_are_counted(self, hub_server):
        server, hub = hub_server
        with KleisliClient(server.address) as c:
            c.run(DEFINE_DB)
            c.query(YEAR_QUERY)
        assert hub.admissions_immediate.value >= 2

    def test_graceful_stop_counts_one_drain(self):
        server, hub = _hub_server()
        server.start()
        server.stop()
        assert hub.drains.value == 1


# -- the view frame cap -------------------------------------------------------

def _view_server():
    registry = ViewRegistry()
    registry.register(UserView(
        "papers-from-year",
        '{[title = p.title] | \\p <- DB, p.year = year}',
        parameters=[ViewParameter("year", "int")],
        output="tabular"))
    return KleisliServer(view_registry=registry,
                         session_setup=lambda s: s.run(DEFINE_DB))


class TestViewFrameCap:
    def test_small_replies_pass_through_untouched(self):
        with _view_server() as server, KleisliClient(server.address) as c:
            reply = c.view("papers-from-year", {"year": 1992})
            assert "truncated" not in reply
            assert {r.project("title") for r in reply["value"]} == \
                {"bcr", "exons"}

    def test_oversized_reply_sheds_value_then_pages_the_body(self,
                                                             monkeypatch):
        with _view_server() as server, KleisliClient(server.address) as c:
            full = c.view("papers-from-year", {"year": 1992})
            monkeypatch.setattr("repro.server.service._STATS_BYTE_BUDGET", 420)
            capped = c.view("papers-from-year", {"year": 1992})
            assert "value" not in capped
            assert "value" in capped["truncated"]
            assert capped["status"] == full["status"] == 200
            # page the body back together, one section frame at a time
            body, offset = "", 0
            while True:
                page = c.view("papers-from-year", {"year": 1992},
                              section="body", offset=offset)
                body += page["body"]
                if "next_offset" not in page:
                    break
                offset = page["next_offset"]
            assert body == full["body"]
            # and the shed value is re-requestable as its own section
            value_reply = c.view("papers-from-year", {"year": 1992},
                                 section="value")
            titles = {r.project("title") for r in value_reply["value"]}
            assert titles == {"bcr", "exons"}

    def test_bad_section_and_offset_are_typed_wire_errors(self):
        from repro.core.errors import RemoteQueryError
        with _view_server() as server, KleisliClient(server.address) as c:
            with pytest.raises(RemoteQueryError) as info:
                c.view("papers-from-year", section="nope")
            assert info.value.error_type == "WireProtocolError"
            with pytest.raises(RemoteQueryError) as info:
                c.view("papers-from-year", offset=-3)
            assert info.value.error_type == "WireProtocolError"
