"""Graceful drain: ``KleisliServer.stop()`` lets in-flight work finish.

The drain contract, one behaviour at a time: a mid-stream client drains
its cursor to the last element while the server is stopping; new
admissions during the drain are refused with a typed overload error (not a
vanished connection); a cursor held past the drain deadline is
force-closed exactly as the old abrupt stop did; and the engine's plan
store is durably flushed at the end of the stop, so everything the
server's queries taught the planner survives the process.
"""

import os
import threading
import time

import pytest

from conftest import wait_until
from fault_drivers import FaultInjectingDriver

from repro.core.errors import ServerOverloadedError
from repro.core.planner import PlanStore
from repro.kleisli.engine import KleisliEngine
from repro.server import KleisliClient, KleisliServer

QUERY = "{x | \\x <- Faulty(40)}"


def _server(tmp_path=None, drain_timeout=5.0, latency=None):
    engine = KleisliEngine(
        plan_store=PlanStore(os.fspath(tmp_path / "plans"),
                             stats_interval=10_000.0, compact_bytes=0)
        if tmp_path is not None else None)
    engine.register_driver(
        FaultInjectingDriver(total=1000, latency=latency))
    return KleisliServer(engine=engine, max_concurrent_queries=4,
                         drain_timeout=drain_timeout)


def test_mid_stream_client_finishes_during_drain(tmp_path):
    server = _server().start()
    try:
        with KleisliClient(server.address) as client:
            stream = client.stream(QUERY, batch=4)
            consumed = [next(stream) for _ in range(8)]  # mid-stream now
            results = {}

            def finish():
                results["rest"] = list(stream)

            def stop():
                server.stop()

            stopper = threading.Thread(target=stop)
            stopper.start()
            # The drain must keep serving this cursor's fetches: the
            # client finishes its stream while the server is stopping.
            finisher = threading.Thread(target=finish)
            finisher.start()
            finisher.join(timeout=10.0)
            stopper.join(timeout=10.0)
            assert not finisher.is_alive()
            assert not stopper.is_alive()
            assert consumed + results["rest"] == list(range(40))
    finally:
        if server.address is not None:  # pragma: no cover - failure path
            server.stop()


def test_drain_refuses_new_admissions_with_typed_error():
    server = _server().start()
    client = KleisliClient(server.address)
    try:
        stream = client.stream(QUERY, batch=4)
        next(stream)  # hold one cursor so the drain has work to wait on
        stopper = threading.Thread(target=server.stop)
        stopper.start()
        assert wait_until(lambda: server._draining.is_set())
        # A new query on the existing connection during the drain: typed
        # rejection, session and connection stay usable for the cursor.
        with pytest.raises(ServerOverloadedError):
            client.query("{x | \\x <- Faulty(3)}")
        rest = list(stream)
        stopper.join(timeout=10.0)
        assert not stopper.is_alive()
        assert len(rest) == 39
    finally:
        client.close()
        if server.address is not None:
            server.stop()


def test_drain_deadline_force_closes_stuck_cursors():
    server = _server(drain_timeout=0.2).start()
    client = KleisliClient(server.address)
    try:
        stream = client.stream(QUERY, batch=4)
        next(stream)
        # Nobody drains the cursor: stop() must give up at the deadline
        # and force-disconnect, not hang.
        started = time.monotonic()
        server.stop()
        elapsed = time.monotonic() - started
        assert elapsed < 5.0
        assert server.stats.cursors_opened == server.stats.cursors_closed
    finally:
        client.close()
        if server.address is not None:  # pragma: no cover - failure path
            server.stop()


def test_stop_flushes_plan_store_for_warm_restart(tmp_path):
    server = _server(tmp_path).start()
    with KleisliClient(server.address) as client:
        values = list(client.stream(QUERY, batch=16))
        assert values == list(range(40))
    server.stop()
    books = server.engine.health()["persistence"]
    assert books["flushes"] >= 1
    assert books["records_appended"] >= 1
    server.engine.plan_store.close()

    # A fresh engine on the same store warm-starts from this server's runs.
    warm = KleisliEngine(plan_store=PlanStore(
        os.fspath(tmp_path / "plans"), stats_interval=10_000.0))
    assert warm.health()["persistence"]["entries_loaded"] >= 1
    assert len(warm.plan_feedback) >= 1
    warm.plan_store.close()


def test_stats_op_reports_persistence_books(tmp_path):
    server = _server(tmp_path).start()
    try:
        with KleisliClient(server.address) as client:
            list(client.stream(QUERY, batch=16))
            stats = client.server_stats()
            books = stats["engine"]["persistence"]
            assert books["attached"] is True
            assert books["records_appended"] >= 1
    finally:
        server.stop()
        server.engine.plan_store.close()


def test_storeless_server_stop_is_unchanged():
    server = _server().start()
    with KleisliClient(server.address) as client:
        assert client.query("{x | \\x <- Faulty(3)}") is not None
    server.stop()
    assert server.address is None
    assert server.engine.health()["persistence"] == {"attached": False}
