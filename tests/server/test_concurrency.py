"""The soak harness: many concurrent sessions, faults injected, books balanced.

The acceptance bar for the query service: with >= 8 concurrent client
sessions running a mixed CPL corpus (eager queries, streamed cursors,
abandoned cursors) against ONE shared engine,

* every served value is **bit-identical** to a single-user ``execute`` of
  the same query on a reference session,
* fault-injection schedules (dead sources, mid-stream failures, latency
  stalls) surface as typed errors on the session that hit them and *only*
  that session — afterwards the same session recovers and other sessions
  never notice,
* when the dust settles the books balance: zero live ``EvalScope``s beyond
  the baseline, zero open driver cursors, ``cursors_opened ==
  cursors_closed``, ``sessions_opened == sessions_closed``.
"""

import threading

import pytest

from conftest import wait_until
from fault_drivers import FaultInjectingDriver

from repro.core.errors import RemoteQueryError
from repro.core.nrc.eval import EvalScope
from repro.core.values import iter_collection
from repro.kleisli.engine import KleisliEngine
from repro.kleisli.session import Session
from repro.server import KleisliClient, KleisliServer

CLIENTS = 8
ROUNDS = 3

SETUP = '''
define DB == {[title = "perforin", year = 1989],
              [title = "bcr", year = 1992],
              [title = "exons", year = 1992],
              [title = "maps", year = 1994]}
define Xs == [|5, 3, 1, 4, 1, 5, 9, 2, 6|]
'''

# Each corpus entry: (label, CPL expression, how it is run).
CORPUS = [
    ("filter", '{p.title | \\p <- DB, p.year = 1992}', "query"),
    ("restructure", '{[t = p.title, y = p.year] | \\p <- DB}', "query"),
    ("nested", '{[y = p.year, ts = {q.title | \\q <- DB, q.year = p.year}]'
               ' | \\p <- DB}', "query"),
    ("arithmetic", '{x * x | \\x <- Xs}', "query"),
    ("scan", '{x | \\x <- Stable(12)}', "query"),
    ("stream-scan", '{x + 100 | \\x <- Stable(20)}', "stream"),
    ("stream-abandon", '{x | \\x <- Stable(500)}', "abandon"),
]


def _reference_values():
    """Single-user ground truth on a private engine with a private driver."""
    engine = KleisliEngine()
    engine.register_driver(FaultInjectingDriver(name="Stable", total=1000))
    session = Session(engine=engine)
    session.run(SETUP)
    expected = {}
    for label, source, _ in CORPUS:
        expected[label] = session.query(source).value
    return expected


@pytest.fixture(scope="module")
def expected():
    return _reference_values()


def _soak_server(**kwargs):
    engine = KleisliEngine()
    stable = engine.register_driver(
        FaultInjectingDriver(name="Stable", total=1000))
    server = KleisliServer(engine, max_sessions=CLIENTS + 4,
                           max_concurrent_queries=CLIENTS + 4,
                           session_setup=lambda s: s.run(SETUP), **kwargs)
    return server, stable


def _client_script(address, expected, errors, seed):
    """One simulated user: the full corpus, ROUNDS times, mixed run styles."""
    try:
        with KleisliClient(address) as client:
            for round_number in range(ROUNDS):
                for index, (label, source, how) in enumerate(CORPUS):
                    value = None
                    if how == "query":
                        value = client.query(source)
                    elif how == "stream":
                        batch = 1 + (seed + round_number + index) % 7
                        streamed = list(client.stream(source, batch=batch))
                        reference = list(iter_collection(expected[label]))
                        if streamed != reference:
                            errors.append(f"{label}: streamed {streamed!r}"
                                          f" != {reference!r}")
                        continue
                    else:  # abandon: take a few elements, close mid-cursor
                        stream = client.stream(source, batch=4)
                        taken = [next(stream) for _ in range(3)]
                        stream.close()
                        if taken != [0, 1, 2]:
                            errors.append(f"{label}: prefix {taken!r}")
                        continue
                    if value != expected[label] or \
                            type(value) is not type(expected[label]):
                        errors.append(
                            f"{label}: {value!r} != {expected[label]!r}")
    except Exception as error:  # noqa: BLE001 - collected, not swallowed
        errors.append(f"client {seed}: {type(error).__name__}: {error}")


class TestSoak:
    def test_eight_concurrent_sessions_match_single_user_execution(
            self, expected):
        server, stable = _soak_server()
        baseline_scopes = EvalScope.live_count()
        errors = []
        with server:
            threads = [threading.Thread(
                target=_client_script,
                args=(server.address, expected, errors, seed))
                for seed in range(CLIENTS)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
            assert not any(thread.is_alive() for thread in threads), \
                "soak clients wedged"
            assert wait_until(lambda: server.active_sessions == 0)
        assert not errors, "\n".join(errors[:10])
        # The books balance.
        assert wait_until(lambda: stable.open_cursors == 0), \
            f"{stable.open_cursors} driver cursors leaked"
        assert wait_until(
            lambda: EvalScope.live_count() == baseline_scopes), \
            "EvalScopes leaked by the soak"
        stats = server.stats.snapshot()
        assert stats["sessions_opened"] == stats["sessions_closed"] == CLIENTS
        assert stats["cursors_opened"] == stats["cursors_closed"] > 0
        assert stats["failures"] == 0
        expected_queries = CLIENTS * ROUNDS * len(CORPUS)
        assert stats["queries"] == expected_queries
        # Shared caches were actually shared: far fewer compilations than
        # queries (every session after the first rides the warm cache).
        health = server.engine.health()
        assert health["live_scopes"] == baseline_scopes
        gets = health["compile_cache"]["hits"] + \
            health["compile_cache"]["misses"]
        assert gets > 0
        assert health["compile_cache"]["hits"] > \
            health["compile_cache"]["misses"]

    def test_fault_schedules_poison_nothing_but_their_own_request(
            self, expected):
        """Half the clients hammer a driver with a fault schedule (every
        3rd request dies, every 7th dies mid-stream, odd requests stall);
        the other half run clean queries throughout.  Faults must surface
        as typed errors on the requesting session only; afterwards every
        session still gets exact values."""
        server, stable = _soak_server()
        flaky = server.engine.register_driver(FaultInjectingDriver(
            name="Flaky", total=50,
            fail_on=set(range(3, 300, 3)),
            midstream_fail_on=set(range(7, 300, 7)),
            latency={n: 0.002 for n in range(1, 300, 2)}))
        baseline_scopes = EvalScope.live_count()
        errors = []
        faults_seen = []

        def faulty_script(seed):
            try:
                with KleisliClient(server.address) as client:
                    for _ in range(6):
                        try:
                            value = client.query('{x | \\x <- Flaky(6)}')
                            if sorted(iter_collection(value)) != \
                                    list(range(6)):
                                errors.append(f"flaky value: {value!r}")
                        except RemoteQueryError as error:
                            if error.error_type != "DriverError":
                                errors.append(
                                    f"wrong fault type: {error.error_type}")
                            faults_seen.append(seed)
                    # Recovery on the *same* session: a clean source works.
                    value = client.query('{p.title | \\p <- DB,'
                                         ' p.year = 1992}')
                    if value != expected["filter"]:
                        errors.append(f"post-fault recovery: {value!r}")
            except Exception as error:  # noqa: BLE001
                errors.append(f"faulty client {seed}: {error}")

        with server:
            threads = [threading.Thread(target=faulty_script, args=(seed,))
                       for seed in range(CLIENTS // 2)]
            threads += [threading.Thread(
                target=_client_script,
                args=(server.address, expected, errors, seed))
                for seed in range(CLIENTS // 2)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
            assert not any(thread.is_alive() for thread in threads)
            assert wait_until(lambda: server.active_sessions == 0)
        assert not errors, "\n".join(errors[:10])
        assert faults_seen, "the schedule injected no faults at all"
        assert flaky.faults_raised > 0
        assert wait_until(lambda: flaky.open_cursors == 0)
        assert wait_until(lambda: stable.open_cursors == 0)
        assert wait_until(
            lambda: EvalScope.live_count() == baseline_scopes)
        stats = server.stats.snapshot()
        assert stats["sessions_opened"] == stats["sessions_closed"]
        assert stats["cursors_opened"] == stats["cursors_closed"]
        assert stats["failures"] == len(faults_seen)

    def test_mass_dirty_disconnects_leak_nothing(self):
        """Every client opens a long cursor and vanishes without a goodbye;
        the server must tear all of them down on its own."""
        server, stable = _soak_server()
        baseline_scopes = EvalScope.live_count()
        with server:
            clients = []
            for _ in range(CLIENTS):
                client = KleisliClient(server.address)
                reply = client.request(
                    {"op": "open", "source": '{x | \\x <- Stable(800)}'})
                client.request({"op": "fetch", "cursor": reply["cursor"],
                                "n": 2})
                clients.append(client)
            assert stable.open_cursors == CLIENTS
            for client in clients:
                client.kill()
            assert wait_until(lambda: stable.open_cursors == 0), \
                f"{stable.open_cursors} cursors survived dirty disconnects"
            assert wait_until(lambda: server.active_sessions == 0)
        assert EvalScope.live_count() == baseline_scopes
        stats = server.stats.snapshot()
        assert stats["cursors_opened"] == stats["cursors_closed"] == CLIENTS
        assert stats["sessions_opened"] == stats["sessions_closed"] == CLIENTS
