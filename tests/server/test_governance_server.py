"""Server-side query governance: the cancel op, watchdog, quotas, stats cap.

The acceptance scenario this file pins: a mid-stream ``cancel`` wire op
tears down only the target query's cursors — the governance books balance,
other sessions are unaffected — under an 8-session soak; the watchdog kills
runaway queries cooperatively; per-session quotas (cursor count, memory)
reject at admission instead of letting one session exhaust the shared
engine; and the ``stats`` op caps its reply body against the 16 MiB frame
limit instead of killing the connection that asked about server health.
"""

import pytest

from conftest import wait_until

from repro.core.errors import RemoteQueryError, ServerOverloadedError
from repro.core.nrc.eval import EvalScope
from repro.kleisli.engine import KleisliEngine
from repro.server import KleisliClient, KleisliServer

N = 400


def _setup(session):
    session.bind("Nums", list(range(N)))


@pytest.fixture()
def server():
    with KleisliServer(max_concurrent_queries=16,
                       session_setup=_setup) as srv:
        yield srv


@pytest.fixture()
def client(server):
    with KleisliClient(server.address) as c:
        yield c


QUERY = "{ x | \\x <- Nums }"


# ---------------------------------------------------------------------------
# the cancel op
# ---------------------------------------------------------------------------

class TestCancelOp:
    def test_mid_stream_cancel_tears_down_and_books_balance(self, server, client):
        cursor = client.open(QUERY)
        first = client.fetch(cursor, batch=8)
        assert first["values"] == list(range(8)) and not first["done"]

        assert client.cancel(cursor) is True
        # Teardown is synchronous with the reply: the cursor is gone ...
        with pytest.raises(RemoteQueryError, match="unknown cursor"):
            client.fetch(cursor)
        # ... its EvalScope released the run's cursors ...
        assert wait_until(lambda: EvalScope.live_count() == 0)
        # ... and the books recorded exactly one cancellation.
        books = server.engine.governor.snapshot()
        assert books["cancellations"] == 1
        assert server.stats.cursors_opened == server.stats.cursors_closed == 1

    def test_cancel_unknown_cursor_reports_false(self, client):
        assert client.cancel("c999") is False

    def test_cancel_is_not_a_failure_session_stays_usable(self, server, client):
        cursor = client.open(QUERY)
        client.fetch(cursor, batch=4)
        client.cancel(cursor)
        assert list(client.stream("{ x | \\x <- Nums, x < 5 }")) == \
            list(range(5))
        assert server.stats.failures == 0

    def test_cancel_only_touches_the_target_query(self, server, client):
        survivor = client.open(QUERY)
        victim = client.open(QUERY)
        client.fetch(victim, batch=4)
        client.cancel(victim)
        # The surviving cursor in the SAME session drains completely.
        drained = []
        done = False
        while not done:
            reply = client.fetch(survivor, batch=64)
            drained.extend(reply["values"])
            done = reply["done"]
        assert drained == list(range(N))
        assert server.engine.governor.snapshot()["cancellations"] == 1


# ---------------------------------------------------------------------------
# the watchdog
# ---------------------------------------------------------------------------

class TestWatchdog:
    def test_runaway_cursor_is_killed_cooperatively(self):
        with KleisliServer(session_setup=_setup, max_query_runtime=0.2,
                           watchdog_interval=0.02) as server:
            with KleisliClient(server.address) as client:
                cursor = client.open(QUERY)
                client.fetch(cursor, batch=4)
                # Idle past the runtime limit: the watchdog cancels the
                # token (exactly once) but tears nothing down itself.
                assert wait_until(lambda: server.engine.governor.snapshot()
                                  ["watchdog_kills"] == 1)
                # The serving thread surfaces the typed error at the next
                # fetch — cooperative teardown, never mid-value.
                with pytest.raises(RemoteQueryError) as info:
                    while True:
                        client.fetch(cursor, batch=4)
                assert info.value.error_type == "QueryCancelledError"
                assert "watchdog" in str(info.value)
                books = server.engine.governor.snapshot()
                assert books["watchdog_kills"] == 1
                assert books["cancellations"] == 1
                assert wait_until(lambda: EvalScope.live_count() == 0)
                # The session survives its killed query.
                assert list(client.stream("{ x | \\x <- Nums, x < 3 }")) == \
                    [0, 1, 2]

    def test_fast_queries_never_meet_the_watchdog(self):
        with KleisliServer(session_setup=_setup, max_query_runtime=30.0,
                           watchdog_interval=0.02) as server:
            with KleisliClient(server.address) as client:
                assert len(list(client.stream(QUERY))) == N
                books = server.engine.governor.snapshot()
                assert books["watchdog_kills"] == 0
                assert books["cancellations"] == 0


# ---------------------------------------------------------------------------
# per-session quotas
# ---------------------------------------------------------------------------

class TestSessionQuotas:
    def test_cursor_quota_rejects_at_admission(self):
        with KleisliServer(session_setup=_setup, max_concurrent_queries=16,
                           session_cursor_quota=2) as server:
            with KleisliClient(server.address) as client:
                first = client.open(QUERY)
                client.open(QUERY)
                with pytest.raises(ServerOverloadedError, match="quota"):
                    client.open(QUERY)
                assert server.stats.rejections == 1
                # Quota rejections are admission control, not failures —
                # closing a cursor frees the quota immediately.
                assert server.stats.failures == 0
                client.close_cursor(first)
                client.open(QUERY)

    def test_quota_is_per_session_not_global(self):
        with KleisliServer(session_setup=_setup, max_concurrent_queries=16,
                           session_cursor_quota=1) as server:
            with KleisliClient(server.address) as one, \
                    KleisliClient(server.address) as two:
                one.open(QUERY)
                two.open(QUERY)   # a different session: its own quota

    def test_session_memory_limit_rejects_oversized_queries(self):
        with KleisliServer(session_setup=_setup,
                           session_memory_limit=1024) as server:
            with KleisliClient(server.address) as client:
                with pytest.raises(RemoteQueryError) as info:
                    client.query(QUERY, spill=False)
                assert info.value.error_type == "MemoryBudgetExceededError"
                assert server.engine.governor.snapshot()
                # The failed run returned its charges: small queries fit.
                assert list(client.stream("{ x | \\x <- Nums, x < 4 }",
                                          spill=False)) == [0, 1, 2, 3]
                books = server.engine.governor.snapshot()
                assert books["budget_rejections"] == 1

    def test_per_request_budget_caps_inside_the_session_quota(self):
        with KleisliServer(session_setup=_setup,
                           session_memory_limit=1 << 20) as server:
            with KleisliClient(server.address) as client:
                with pytest.raises(RemoteQueryError) as info:
                    client.query(QUERY, memory_budget=64, spill=False)
                assert info.value.error_type == "MemoryBudgetExceededError"

    def test_invalid_governance_options_are_wire_errors(self, client):
        with pytest.raises(RemoteQueryError) as info:
            client.query(QUERY, memory_budget=-5)
        assert info.value.error_type == "WireProtocolError"
        with pytest.raises(RemoteQueryError) as info:
            client.request({"op": "query", "source": QUERY, "spill": "yes"})
        assert info.value.error_type == "WireProtocolError"


# ---------------------------------------------------------------------------
# the stats op: governance section + frame cap
# ---------------------------------------------------------------------------

class TestStatsOp:
    def test_governance_books_are_a_stats_section(self, server, client):
        cursor = client.open(QUERY)
        client.fetch(cursor, batch=4)
        client.cancel(cursor)
        reply = client.server_stats(section="governance")
        assert reply["governance"]["cancellations"] == 1
        # The full reply carries the books inside engine health.
        full = client.server_stats()
        assert full["engine"]["governance"]["cancellations"] == 1

    def test_unknown_section_is_a_wire_error(self, client):
        with pytest.raises(RemoteQueryError) as info:
            client.server_stats(section="nonsense")
        assert info.value.error_type == "WireProtocolError"

    def test_oversized_stats_reply_is_capped_not_fatal(self, server, client,
                                                       monkeypatch):
        # Shrink the soft budget so the ordinary reply is "oversized";
        # the hard 16 MiB frame cap still applies to what goes out.
        monkeypatch.setattr("repro.server.service._STATS_BYTE_BUDGET", 600)
        reply = client.server_stats()
        assert reply["truncated"]                 # something was shed ...
        assert "section" in reply["hint"]
        for label in reply["truncated"]:          # ... and marked in place
            container = reply
            for part in label.split("."):
                if container == {"truncated": True}:
                    break                         # an ancestor was shed too
                container = container[part]
            assert container == {"truncated": True}
        # Every shed section is re-requestable as its own frame.
        section = reply["truncated"][0].split(".")[0]
        follow_up = client.server_stats(section=section)
        assert follow_up[section] != {"truncated": True}
        # The connection survived the whole exchange.
        assert client.hello()["ok"]

    def test_stats_cap_prefers_shedding_engine_subsections(self, server,
                                                           client,
                                                           monkeypatch):
        from repro.net.framing import encode_frame
        full = client.server_stats()
        monkeypatch.setattr("repro.server.service._STATS_BYTE_BUDGET",
                            len(encode_frame(full)) - 1)
        reply = client.server_stats()
        # A near-miss budget sheds the bulkiest engine sub-section first,
        # keeping the server counters intact.
        assert reply["truncated"][0].startswith("engine.")
        assert "sessions_opened" in reply["server"]


# ---------------------------------------------------------------------------
# the 8-session soak
# ---------------------------------------------------------------------------

def test_eight_session_soak_cancel_some_drain_others():
    """Half the sessions cancel mid-stream, half drain to the end; every
    drained session sees exact values, the books balance, and nothing
    leaks."""
    engine = KleisliEngine()
    with KleisliServer(engine=engine, session_setup=_setup,
                       max_concurrent_queries=16) as server:
        clients = [KleisliClient(server.address) for _ in range(8)]
        try:
            cursors = [c.open(QUERY) for c in clients]
            # Everyone fetches a first batch mid-stream.
            for client, cursor in zip(clients, cursors):
                reply = client.fetch(cursor, batch=8)
                assert reply["values"] == list(range(8))
            # Sessions 0, 2, 4, 6 cancel; the rest drain fully.
            for i in (0, 2, 4, 6):
                assert clients[i].cancel(cursors[i]) is True
            for i in (1, 3, 5, 7):
                drained = list(range(8))
                done = False
                while not done:
                    reply = clients[i].fetch(cursors[i], batch=64)
                    drained.extend(reply["values"])
                    done = reply["done"]
                assert drained == list(range(N)), f"session {i} saw bad data"
            # Cancelled sessions remain usable alongside the drained ones.
            for i in (0, 2, 4, 6):
                assert list(clients[i].stream(
                    "{ x | \\x <- Nums, x < 2 }")) == [0, 1]
        finally:
            for client in clients:
                client.close()
        # The books balance: exactly the four cancels, nothing else.
        assert wait_until(
            lambda: server.stats.cursors_opened == server.stats.cursors_closed)
        books = engine.governor.snapshot()
        assert books["cancellations"] == 4
        assert books["watchdog_kills"] == 0
        assert books["budget_rejections"] == 0
        assert server.stats.failures == 0
        assert wait_until(lambda: EvalScope.live_count() == 0)
    assert wait_until(
        lambda: server.stats.sessions_opened == server.stats.sessions_closed)
