"""Resilience over the wire: warnings, options, books, and the chaos soak.

What this file pins down, end to end through the framed-JSON protocol:

* transient driver faults recover *server-side* — clients receive exact
  values and never learn a retry happened;
* ``on_source_failure="degrade"`` rides the wire: degraded runs answer
  with partial values plus typed warning records in the response (and in
  every ``fetch`` reply of a degraded stream) — never silent truncation;
* malformed resilience options are wire-protocol errors, not 500s;
* the ``stats`` op exposes the engine's per-driver resilience books;
* the chaos soak: 8 concurrent sessions, half of them drawing from a
  driver with a transient-fault schedule, all of them receiving values
  bit-identical to a fault-free single-user run, with balanced books and
  zero cursor/scope leaks afterwards.
"""

import threading

import pytest

from conftest import wait_until
from fault_drivers import FaultInjectingDriver

from repro.core.errors import RemoteQueryError, TransientDriverError
from repro.core.nrc.eval import EvalScope
from repro.core.values import iter_collection
from repro.kleisli.engine import KleisliEngine
from repro.kleisli.resilience import CircuitBreakerPolicy, RetryPolicy
from repro.server import KleisliClient, KleisliServer

FAST_RETRY = RetryPolicy(max_attempts=4, backoff_base=0.0)


def _server(driver, retry=FAST_RETRY, breaker=None, **server_kwargs):
    engine = KleisliEngine()
    engine.register_driver(driver)
    if retry is not None or breaker is not None:
        engine.configure_resilience(driver.name, retry, breaker)
    return KleisliServer(engine, **server_kwargs)


class TestWireResilience:
    def test_transient_fault_recovers_invisibly(self):
        driver = FaultInjectingDriver(fail_on={1},
                                      fault_type=TransientDriverError)
        with _server(driver) as server, \
                KleisliClient(server.address) as client:
            value = client.query('{x | \\x <- Faulty(6)}')
            assert sorted(iter_collection(value)) == list(range(6))
            assert client.last_warnings == []
        assert driver.requests_served == 2  # the fault plus the retry

    def test_midstream_fault_recovers_over_streamed_cursor(self):
        driver = FaultInjectingDriver(midstream_fail_on={1},
                                      midstream_after=3,
                                      fault_type=TransientDriverError)
        with _server(driver) as server, \
                KleisliClient(server.address) as client:
            values = list(client.stream('{x | \\x <- Faulty(8)}', batch=3))
            assert sorted(values) == list(range(8))
            assert client.last_warnings == []
        assert driver.open_cursors == 0

    def test_degraded_run_answers_with_typed_warnings(self):
        driver = FaultInjectingDriver(fail_on={1, 2, 3, 4},
                                      fault_type=TransientDriverError)
        with _server(driver) as server, \
                KleisliClient(server.address) as client:
            value = client.query('{x | \\x <- Faulty(6)}',
                                 on_source_failure="degrade")
            assert list(iter_collection(value)) == []
            assert len(client.last_warnings) == 1
            warning = client.last_warnings[0]
            assert warning["driver"] == "Faulty"
            assert warning["error_type"] == "TransientDriverError"
            assert "reason" in warning and "requests_dropped" in warning

    def test_degraded_stream_carries_warnings_on_fetch(self):
        # Cursor #1 dies at 3 elements, its replacement at 0: the retry
        # budget is spent mid-stream, so the degraded cursor ends at the
        # delivered prefix and the fetch replies say so.
        driver = FaultInjectingDriver(
            midstream_fail_on={1, 2}, midstream_after={1: 3, 2: 0},
            fault_type=TransientDriverError)
        with _server(driver, retry=RetryPolicy(max_attempts=2,
                                               backoff_base=0.0)) as server, \
                KleisliClient(server.address) as client:
            values = list(client.stream('{x | \\x <- Faulty(8)}', batch=2,
                                        on_source_failure="degrade"))
            assert sorted(values) == [0, 1, 2]
            assert [w["driver"] for w in client.last_warnings] == ["Faulty"]
        assert driver.open_cursors == 0

    def test_fail_policy_faults_carry_their_type(self):
        driver = FaultInjectingDriver(fail_on={1, 2, 3, 4},
                                      fault_type=TransientDriverError)
        with _server(driver) as server, \
                KleisliClient(server.address) as client:
            with pytest.raises(RemoteQueryError) as excinfo:
                client.query('{x | \\x <- Faulty(6)}')
            assert excinfo.value.error_type == "TransientDriverError"

    def test_generous_deadline_passes_through(self):
        driver = FaultInjectingDriver(fault_type=TransientDriverError)
        with _server(driver) as server, \
                KleisliClient(server.address) as client:
            value = client.query('{x | \\x <- Faulty(4)}', deadline=60.0)
            assert sorted(iter_collection(value)) == list(range(4))

    @pytest.mark.parametrize("message", [
        {"op": "query", "source": "{x | \\x <- Faulty(2)}",
         "deadline": -1.0},
        {"op": "query", "source": "{x | \\x <- Faulty(2)}",
         "deadline": True},
        {"op": "query", "source": "{x | \\x <- Faulty(2)}",
         "deadline": "soon"},
        {"op": "query", "source": "{x | \\x <- Faulty(2)}",
         "on_source_failure": "shrug"},
        {"op": "open", "source": "{x | \\x <- Faulty(2)}",
         "on_source_failure": 7},
    ])
    def test_malformed_options_are_wire_errors(self, message):
        driver = FaultInjectingDriver(fault_type=TransientDriverError)
        with _server(driver) as server, \
                KleisliClient(server.address) as client:
            with pytest.raises(RemoteQueryError) as excinfo:
                client.request(message)
            assert excinfo.value.error_type == "WireProtocolError"

    def test_stats_op_exposes_resilience_books(self):
        driver = FaultInjectingDriver(fail_on={1},
                                      fault_type=TransientDriverError)
        with _server(driver, breaker=CircuitBreakerPolicy(
                failure_threshold=50)) as server, \
                KleisliClient(server.address) as client:
            client.query('{x | \\x <- Faulty(4)}')
            books = client.server_stats()["engine"]["resilience"]["Faulty"]
            assert books["requests"] == 1
            assert books["retries"] == 1
            assert books["failures"] == 1
            assert books["breaker"]["state"] == "closed"
            assert books["breaker"]["trips"] == 0


class TestChaosSoak:
    """8 concurrent sessions; half draw from a transiently-faulty driver.

    The fault schedule is bounded (3 pre-open + 3 mid-stream fault
    ordinals, every mid-stream cursor makes progress first) and the retry
    budget exceeds it, so *every* request is guaranteed to recover no
    matter how the threads interleave — which makes "all clients see
    bit-identical values" a deterministic assertion, not a probabilistic
    one.
    """

    CLIENTS = 8
    ROUNDS = 3

    def test_soak_recovers_bit_identically_with_balanced_books(self):
        engine = KleisliEngine()
        stable = engine.register_driver(
            FaultInjectingDriver(name="Stable", total=100))
        flaky = engine.register_driver(FaultInjectingDriver(
            name="Flaky", total=100,
            fail_on={2, 5, 9}, midstream_fail_on={3, 7, 11},
            midstream_after=3, fault_type=TransientDriverError))
        engine.configure_resilience(
            "Flaky", FAST_RETRY, CircuitBreakerPolicy(failure_threshold=50))
        server = KleisliServer(engine, max_sessions=self.CLIENTS + 4,
                               max_concurrent_queries=self.CLIENTS + 4)
        baseline_scopes = EvalScope.live_count()
        errors = []

        def script(seed):
            faulty = seed % 2 == 0  # half the clients draw from Flaky
            source_name = "Flaky" if faulty else "Stable"
            try:
                with KleisliClient(server.address) as client:
                    for round_number in range(self.ROUNDS):
                        value = client.query(
                            '{x + 1 | \\x <- %s(8)}' % source_name)
                        if sorted(iter_collection(value)) != \
                                list(range(1, 9)):
                            errors.append(f"{source_name} query: {value!r}")
                        if client.last_warnings:
                            errors.append(
                                f"unexpected degradation: "
                                f"{client.last_warnings!r}")
                        batch = 1 + (seed + round_number) % 5
                        streamed = sorted(client.stream(
                            '{x | \\x <- %s(10)}' % source_name,
                            batch=batch))
                        if streamed != list(range(10)):
                            errors.append(
                                f"{source_name} stream: {streamed!r}")
            except Exception as error:  # noqa: BLE001 - collected below
                errors.append(f"client {seed}: "
                              f"{type(error).__name__}: {error}")

        with server:
            threads = [threading.Thread(target=script, args=(seed,))
                       for seed in range(self.CLIENTS)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
            assert not any(thread.is_alive() for thread in threads), \
                "soak clients wedged"
            assert wait_until(lambda: server.active_sessions == 0)

            assert not errors, "\n".join(errors[:10])

            # Every scheduled fault actually fired and was recovered.
            assert flaky.faults_raised == 6
            books = server.engine.health()["resilience"]["Flaky"]
            assert books["failures"] + books["midstream_faults"] == 6
            assert books["retries"] == 6
            assert books["breaker"]["state"] == "closed"
            assert books["breaker"]["trips"] == 0
            # Breaker books balance: every fault (pre-open AND mid-stream)
            # landed on the breaker.
            assert books["breaker"]["failures"] == \
                books["failures"] + books["midstream_faults"]

            # Zero leaks: cursors, scopes, service counters.
            assert wait_until(lambda: flaky.open_cursors == 0), \
                f"{flaky.open_cursors} flaky cursors leaked"
            assert wait_until(lambda: stable.open_cursors == 0), \
                f"{stable.open_cursors} stable cursors leaked"
            assert wait_until(
                lambda: EvalScope.live_count() == baseline_scopes), \
                "EvalScopes leaked by the soak"
            stats = server.stats.snapshot()
            assert stats["sessions_opened"] == stats["sessions_closed"] \
                == self.CLIENTS
            assert stats["cursors_opened"] == stats["cursors_closed"] > 0
            assert stats["failures"] == 0
