"""The query service, one behaviour at a time.

Protocol basics (framing, codec, handshake), single-session semantics
(run/query/stream parity with a local session), session isolation on
disconnect, admission control (queue and reject policies, typed rejections,
drainability afterwards), the view op, and fault propagation — the
concurrency soak lives in ``test_concurrency.py``.
"""

import socket
import threading

import pytest

from conftest import wait_until
from fault_drivers import FaultInjectingDriver

from repro.core.errors import (
    RemoteQueryError,
    ServerOverloadedError,
    WireProtocolError,
)
from repro.core.nrc.eval import EvalScope
from repro.core.values import CBag, CList, CSet, Record, UNIT_VALUE, Variant
from repro.kleisli.engine import KleisliEngine
from repro.kleisli.session import Session
from repro.net.framing import encode_frame, recv_message, send_message
from repro.server import KleisliClient, KleisliServer
from repro.server.wire import decode_value, encode_value
from repro.views.parameters import ViewParameter
from repro.views.registry import ViewRegistry
from repro.views.view import UserView

DEFINE_DB = ('define DB == {[title = "perforin", year = 1989], '
             '[title = "bcr", year = 1992], '
             '[title = "exons", year = 1992]}')
YEAR_QUERY = '{p.title | \\p <- DB, p.year = 1992}'


@pytest.fixture()
def server():
    with KleisliServer(max_concurrent_queries=4) as srv:
        yield srv


@pytest.fixture()
def client(server):
    with KleisliClient(server.address) as c:
        yield c


# ---------------------------------------------------------------------------
# wire codec + framing
# ---------------------------------------------------------------------------

class TestWireCodec:
    VALUES = [
        None, True, 0, -7, 3.5, "hello", b"\x00\xffraw", UNIT_VALUE,
        Record({"title": "t", "year": 1989}),
        CSet(["b", "a", "c"]),
        CBag([1, 1, 2]),
        CList([3, 1, 2, 1]),
        Variant("controlled", Variant("medline-jta", "J Immunol")),
        CList([Record({"authors": CList([Record({"name": "Hart"})]),
                       "keywd": CSet(["Exons"]),
                       "journal": Variant("uncontrolled", "preprint")})]),
    ]

    @pytest.mark.parametrize("value", VALUES, ids=[str(i) for i in range(len(VALUES))])
    def test_round_trip_is_identity(self, value):
        assert decode_value(encode_value(value)) == value

    def test_list_order_survives(self):
        value = CList([5, 3, 5, 1])
        assert list(decode_value(encode_value(value))) == [5, 3, 5, 1]

    def test_record_label_named_percent_cannot_be_confused(self):
        value = Record({"%": "not-a-tag", "x": 1})
        assert decode_value(encode_value(value)) == value

    def test_unencodable_value_raises(self):
        with pytest.raises(WireProtocolError):
            encode_value(object())

    def test_unknown_tag_raises(self):
        with pytest.raises(WireProtocolError):
            decode_value({"%": "frobnicate"})


class TestFraming:
    def test_messages_round_trip_over_a_socketpair(self):
        left, right = socket.socketpair()
        try:
            send_message(left, {"op": "hello", "n": 3})
            send_message(left, {"values": ["a", "b"]})
            assert recv_message(right) == {"op": "hello", "n": 3}
            assert recv_message(right) == {"values": ["a", "b"]}
        finally:
            left.close()
            right.close()

    def test_clean_eof_is_none_truncation_raises(self):
        left, right = socket.socketpair()
        try:
            left.close()
            assert recv_message(right) is None
        finally:
            right.close()
        left, right = socket.socketpair()
        try:
            left.sendall(encode_frame({"op": "hello"})[:-2])
            left.close()
            with pytest.raises(WireProtocolError, match="mid-frame"):
                recv_message(right)
        finally:
            right.close()


# ---------------------------------------------------------------------------
# protocol basics
# ---------------------------------------------------------------------------

class TestProtocolBasics:
    def test_hello_reports_protocol_and_ops(self, client):
        reply = client.hello()
        assert reply["protocol"] == 1
        assert {"run", "query", "open", "fetch", "close", "bye"} <= set(reply["ops"])

    def test_unknown_op_is_a_typed_protocol_error(self, client):
        with pytest.raises(RemoteQueryError) as info:
            client.request({"op": "frobnicate"})
        assert info.value.error_type == "WireProtocolError"

    def test_missing_source_is_a_typed_protocol_error(self, client):
        with pytest.raises(RemoteQueryError) as info:
            client.request({"op": "query"})
        assert info.value.error_type == "WireProtocolError"

    def test_define_only_program_returns_none(self, client):
        assert client.run(DEFINE_DB) is None

    def test_a_failing_query_does_not_poison_the_session(self, client):
        client.run(DEFINE_DB)
        with pytest.raises(RemoteQueryError):
            client.query('{p.title | \\p <- NoSuchSource}')
        assert client.query('{p.title | \\p <- DB, p.year = 1989}') == \
            CSet(["perforin"])
        assert client._closed is False


# ---------------------------------------------------------------------------
# parity with a local session
# ---------------------------------------------------------------------------

class TestParity:
    def test_query_value_is_bit_identical_to_local_execute(self, client):
        client.run(DEFINE_DB)
        served = client.query(YEAR_QUERY)
        reference = Session(engine=KleisliEngine())
        reference.run(DEFINE_DB)
        expected = reference.query(YEAR_QUERY).value
        assert served == expected
        assert type(served) is type(expected)

    def test_streamed_elements_match_execute_order(self, client):
        client.run('define Xs == [|9, 3, 7, 3, 1|]')
        reference = Session(engine=KleisliEngine())
        reference.run('define Xs == [|9, 3, 7, 3, 1|]')
        expected = list(reference.query('{x * 2 | \\x <- Xs}').value)
        for batch in (1, 2, 100):
            assert list(client.stream('{x * 2 | \\x <- Xs}', batch=batch)) == \
                expected

    def test_definitions_are_per_session(self, server):
        with KleisliClient(server.address) as a, \
                KleisliClient(server.address) as b:
            a.run('define N == 1')
            b.run('define N == 2')
            assert a.query('N + 0') == 1
            assert b.query('N + 0') == 2


# ---------------------------------------------------------------------------
# cursors and disconnects
# ---------------------------------------------------------------------------

def _cursor_server(**kwargs):
    engine = KleisliEngine()
    driver = engine.register_driver(FaultInjectingDriver(total=1000))
    return KleisliServer(engine, **kwargs), driver


class TestCursors:
    def test_drained_cursor_releases_itself(self):
        server, driver = _cursor_server()
        with server, KleisliClient(server.address) as client:
            values = list(client.stream('{x | \\x <- Faulty(5)}', batch=2))
            assert values == [0, 1, 2, 3, 4]
            assert driver.open_cursors == 0
            stats = server.stats.snapshot()
            assert stats["cursors_opened"] == stats["cursors_closed"] == 1

    def test_fetch_after_done_reports_unknown_cursor(self):
        server, _ = _cursor_server()
        with server, KleisliClient(server.address) as client:
            reply = client.request({"op": "open",
                                    "source": '{x | \\x <- Faulty(2)}'})
            cursor = reply["cursor"]
            reply = client.request({"op": "fetch", "cursor": cursor, "n": 10})
            assert reply["done"] is True
            with pytest.raises(RemoteQueryError) as info:
                client.request({"op": "fetch", "cursor": cursor, "n": 1})
            assert info.value.error_type == "QueryServiceError"

    def test_abandoning_the_client_generator_closes_the_cursor(self):
        server, driver = _cursor_server()
        with server, KleisliClient(server.address) as client:
            stream = client.stream('{x | \\x <- Faulty(1000)}', batch=2)
            assert next(stream) == 0
            assert driver.open_cursors == 1
            stream.close()
            assert wait_until(lambda: driver.open_cursors == 0)
            stats = server.stats.snapshot()
            assert stats["cursors_opened"] == stats["cursors_closed"] == 1

    def test_dirty_disconnect_closes_only_that_sessions_cursors(self):
        """A client that vanishes mid-stream (no goodbye) must have exactly
        its own cursors released; the surviving session keeps streaming."""
        server, driver = _cursor_server()
        baseline_scopes = EvalScope.live_count()
        with server:
            victim = KleisliClient(server.address)
            survivor = KleisliClient(server.address)
            victim_stream = victim.stream('{x | \\x <- Faulty(1000)}', batch=2)
            survivor_stream = survivor.stream('{x | \\x <- Faulty(1000)}',
                                              batch=2)
            assert next(victim_stream) == 0
            assert next(survivor_stream) == 0
            assert driver.open_cursors == 2
            victim.kill()
            assert wait_until(lambda: driver.open_cursors == 1), \
                "dead session's cursor not released"
            assert [next(survivor_stream) for _ in range(4)] == [1, 2, 3, 4]
            survivor.close()
        assert wait_until(lambda: driver.open_cursors == 0)
        assert EvalScope.live_count() == baseline_scopes, "leaked EvalScope"
        stats = server.stats.snapshot()
        assert stats["cursors_opened"] == stats["cursors_closed"] == 2
        assert stats["sessions_opened"] == stats["sessions_closed"] == 2


# ---------------------------------------------------------------------------
# admission control
# ---------------------------------------------------------------------------

class TestAdmission:
    def test_reject_policy_returns_typed_error_and_stays_drainable(self):
        server, driver = _cursor_server(max_concurrent_queries=1,
                                        admission="reject")
        with server, KleisliClient(server.address) as client:
            stream = client.stream('{x | \\x <- Faulty(1000)}', batch=2)
            assert next(stream) == 0  # the open cursor holds the only slot
            with pytest.raises(ServerOverloadedError):
                client.query('{x | \\x <- Faulty(3)}')
            assert server.stats.rejections == 1
            stream.close()  # frees the slot ...
            assert client.query('{x | \\x <- Faulty(3)}') == CSet([0, 1, 2])
            assert client.last_admission == "immediate"

    def test_queue_policy_waits_for_a_slot(self):
        server, _ = _cursor_server(max_concurrent_queries=1,
                                   admission="queue", queue_timeout=10.0)
        with server, KleisliClient(server.address) as holder, \
                KleisliClient(server.address) as waiter:
            stream = holder.stream('{x | \\x <- Faulty(1000)}', batch=2)
            assert next(stream) == 0
            outcome = {}

            def blocked_query():
                outcome["value"] = waiter.query('{x | \\x <- Faulty(3)}')
                outcome["admission"] = waiter.last_admission

            thread = threading.Thread(target=blocked_query)
            thread.start()
            assert wait_until(lambda: server.stats.queued == 1), \
                "waiter never queued"
            assert not outcome, "query finished while the slot was held"
            stream.close()
            thread.join(timeout=10.0)
            assert outcome["value"] == CSet([0, 1, 2])
            assert outcome["admission"] == "queued"
            assert server.stats.rejections == 0

    def test_queue_timeout_rejects_with_typed_error(self):
        server, _ = _cursor_server(max_concurrent_queries=1,
                                   admission="queue", queue_timeout=0.05)
        with server, KleisliClient(server.address) as client:
            stream = client.stream('{x | \\x <- Faulty(1000)}', batch=2)
            assert next(stream) == 0
            with pytest.raises(ServerOverloadedError, match="no in-flight"):
                client.query('{x | \\x <- Faulty(3)}')
            assert server.stats.rejections == 1
            stream.close()

    def test_session_cap_refuses_the_extra_connection(self):
        server, _ = _cursor_server(max_sessions=1)
        with server:
            with KleisliClient(server.address) as first:
                first.hello()  # guarantees the slot is taken
                second = KleisliClient(server.address)
                try:
                    with pytest.raises(ServerOverloadedError, match="capacity"):
                        second.hello()
                finally:
                    second.kill()
                assert server.stats.sessions_refused == 1
                # The admitted session is unaffected.
                assert first.query('{x | \\x <- Faulty(2)}') == CSet([0, 1])
            # ... and once it leaves, a new connection is admitted.
            assert wait_until(lambda: server.active_sessions == 0)
            with KleisliClient(server.address) as third:
                third.hello()


# ---------------------------------------------------------------------------
# the view op
# ---------------------------------------------------------------------------

def _view_server():
    registry = ViewRegistry()
    registry.register(UserView(
        "papers-from-year",
        '{[title = p.title] | \\p <- DB, p.year = year}',
        parameters=[ViewParameter("year", "int")],
        output="tabular"))
    return KleisliServer(view_registry=registry,
                         session_setup=lambda s: s.run(DEFINE_DB))


class TestViews:
    def test_view_submission_returns_body_and_decoded_value(self):
        with _view_server() as server, KleisliClient(server.address) as client:
            reply = client.view("papers-from-year", {"year": 1992})
            assert reply["status"] == 200 and reply["view_ok"] is True
            titles = {row.project("title") for row in reply["value"]}
            assert titles == {"bcr", "exons"}
            assert "bcr" in reply["body"]

    def test_view_without_form_serves_the_form_page(self):
        with _view_server() as server, KleisliClient(server.address) as client:
            reply = client.view("papers-from-year")
            assert reply["status"] == 200
            assert "value" not in reply
            assert "<form" in reply["body"]

    def test_unknown_view_is_a_404_not_a_dead_session(self):
        with _view_server() as server, KleisliClient(server.address) as client:
            assert client.view("nope")["status"] == 404
            assert client.view("papers-from-year", {"year": 1989})["view_ok"]

    def test_viewless_server_reports_a_typed_error(self, client):
        with pytest.raises(RemoteQueryError) as info:
            client.view("anything")
        assert info.value.error_type == "QueryServiceError"


# ---------------------------------------------------------------------------
# stats / health
# ---------------------------------------------------------------------------

class TestStats:
    def test_stats_op_exposes_service_and_engine_health(self, client):
        client.run(DEFINE_DB)
        client.query(YEAR_QUERY)
        reply = client.server_stats()
        assert reply["server"]["queries"] >= 1
        assert reply["admission"]["policy"] == "queue"
        health = reply["engine"]
        assert {"compile_cache", "subquery_cache", "plan_feedback",
                "drivers", "live_scopes"} <= set(health)
        assert health["compile_cache"]["misses"] >= 1

    def test_fault_recovery_is_visible_in_failures_counter(self):
        engine = KleisliEngine()
        engine.register_driver(FaultInjectingDriver(fail_on={1}))
        with KleisliServer(engine) as server, \
                KleisliClient(server.address) as client:
            with pytest.raises(RemoteQueryError) as info:
                client.query('{x | \\x <- Faulty(3)}')
            assert info.value.error_type == "DriverError"
            # Recovery: the same session retries and succeeds.
            assert client.query('{x | \\x <- Faulty(3)}') == CSet([0, 1, 2])
            assert server.stats.failures == 1
