"""Fixtures/plumbing for the query-service tests.

The shared fault-injection fixtures live in ``tests/kleisli/fault_drivers.py``
(they are also used by the engine-level stream tests); test directories are
not packages, so make that directory importable from here.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

_KLEISLI_TESTS = str(Path(__file__).resolve().parent.parent / "kleisli")
if _KLEISLI_TESTS not in sys.path:
    sys.path.insert(0, _KLEISLI_TESTS)


def wait_until(predicate, timeout: float = 5.0, interval: float = 0.005) -> bool:
    """Poll ``predicate`` until true or ``timeout`` elapses (asynchronous
    server-side effects — disconnect cleanup, queued admissions — land on
    other threads)."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()
