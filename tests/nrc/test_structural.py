"""Structural recursion: the Fold node, CPL's ``fold`` special form, and the
derived operations (transitive closure, nest/unnest, well-definedness checks).

Section 2 of the paper: comprehension syntax is derived from structural
recursion, which "allows the expression of aggregate functions such as
summation, as well as functions such as transitive closure, that cannot be
expressed through comprehensions alone."
"""

import pytest
from hypothesis import given, strategies as st

from repro.core.errors import CPLTypeError, EvaluationError
from repro.core.nrc import ast as A
from repro.core.nrc import builder as B
from repro.core.nrc.eval import EvalContext, EvalStatistics, Evaluator, evaluate
from repro.core.nrc.structural import (
    check_fold_well_defined,
    fold_value,
    group_by,
    is_duplicate_insensitive,
    is_order_insensitive,
    nest,
    transitive_closure,
    unnest,
)
from repro.core.cpl.typecheck import infer_expression_type
from repro.core.types import parse_type
from repro.core.values import CBag, CList, CSet, Record
from repro.kleisli.session import Session


def _sum_fold(source_expr):
    """fold(\\a => \\x => a + x, 0, source)"""
    combiner = B.lam("a", B.lam("x", B.prim("add", B.var("a"), B.var("x"))))
    return B.fold(combiner, B.const(0), source_expr)


class TestFoldNode:
    def test_fold_sums_a_set(self):
        expr = _sum_fold(B.var("nums"))
        assert evaluate(expr, {"nums": CSet([1, 2, 3, 4])}) == 10

    def test_fold_over_list_respects_order(self):
        # String accumulation over a list is order-dependent and well defined.
        combiner = B.lam("a", B.lam("x", B.prim("string_concat", B.var("a"), B.var("x"))))
        expr = B.fold(combiner, B.const(""), B.var("xs"))
        assert evaluate(expr, {"xs": CList(["a", "b", "c"])}) == "abc"

    def test_fold_over_empty_collection_returns_init(self):
        assert evaluate(_sum_fold(B.empty("set"))) == 0

    def test_fold_counts_iterations(self):
        from repro.core.nrc.eval import Environment

        stats = EvalStatistics()
        evaluator = Evaluator(EvalContext(statistics=stats))
        evaluator.evaluate(_sum_fold(B.var("nums")), Environment({"nums": CSet([5, 6, 7])}))
        assert stats.fold_iterations == 3

    def test_fold_with_native_python_combiner(self):
        expr = B.fold(B.var("f"), B.const(0), B.var("nums"))
        value = evaluate(expr, {"f": lambda a: (lambda x: max(a, x)),
                                "nums": CBag([3, 9, 1])})
        assert value == 9

    def test_fold_over_non_collection_fails(self):
        with pytest.raises(EvaluationError):
            evaluate(_sum_fold(B.const(3)))

    def test_fold_structural_equality_and_rebuild(self):
        expr = _sum_fold(B.var("nums"))
        same = _sum_fold(B.var("nums"))
        assert expr == same and hash(expr) == hash(same)
        rebuilt = expr.rebuild(list(expr.children()))
        assert rebuilt == expr

    def test_fold_free_variables_and_substitution(self):
        expr = _sum_fold(B.var("nums"))
        assert "nums" in A.free_variables(expr)
        replaced = A.substitute(expr, "nums", B.var("other"))
        assert "other" in A.free_variables(replaced)
        assert "nums" not in A.free_variables(replaced)

    def test_fold_pretty_printer(self):
        text = _sum_fold(B.var("nums")).pretty()
        assert text.startswith("fold(") and "nums" in text


class TestFoldInCPL:
    def test_fold_sum_from_cpl(self):
        session = Session()
        session.bind("Nums", {1, 2, 3, 4, 5})
        assert session.run(r"fold(\a => \x => a + x, 0, Nums)") == 15

    def test_fold_can_express_count(self):
        session = Session()
        session.bind("Nums", {10, 20, 30})
        assert session.run(r"fold(\a => \x => a + 1, 0, Nums)") == 3

    def test_fold_builds_collections_too(self):
        session = Session()
        session.bind("Nums", [1, 2, 3], list_as="list")
        value = session.run(r"fold(\a => \x => a + x * x, 0, Nums)")
        assert value == 14

    def test_fold_inside_define(self):
        session = Session()
        session.bind("DB", [{"title": "A", "year": 2}, {"title": "B", "year": 3}],
                     list_as="set")
        session.run(r"define total-years == fold(\a => \p => a + p.year, 0, DB)")
        assert session.run("total-years") == 5

    def test_fold_type_inference(self):
        ty = infer_expression_type(r"fold(\a => \x => a + x, 0, DB)",
                                   {"DB": parse_type("{int}")})
        assert str(ty) == "int"

    def test_fold_type_mismatch_is_an_error(self):
        with pytest.raises(CPLTypeError):
            infer_expression_type(r'fold(\a => \x => a + x, "zero", DB)',
                                  {"DB": parse_type("{int}")})

    def test_user_defined_fold_name_shadows_special_form(self):
        # A user binding named ``fold`` takes precedence in the type checker
        # (the special form only applies to the unbound name).
        ty = infer_expression_type("fold", {"fold": parse_type("int")})
        assert str(ty) == "int"


class TestWellDefinedness:
    def test_sum_is_well_defined_on_bags_but_flagged_on_sets(self):
        # Structural recursion theory ([6], [5]): a bag fold needs a
        # commutative combiner; a *set* fold additionally needs idempotence.
        # Addition is commutative but not idempotent, so summing is fine over
        # bags and flagged over sets.
        add = lambda a, x: a + x
        assert is_order_insensitive(add, 0, [1, 2, 3])
        assert check_fold_well_defined(add, 0, CBag([1, 2, 3])) == []
        issues = check_fold_well_defined(add, 0, CSet([1, 2, 3]))
        assert any("duplicate" in issue for issue in issues)

    def test_list_folds_are_always_well_defined(self):
        concat = lambda a, x: a + x
        assert check_fold_well_defined(concat, "", CList(["a", "b"])) == []

    def test_order_sensitive_fold_is_flagged_on_bags(self):
        concat = lambda a, x: a + x
        issues = check_fold_well_defined(concat, "", CBag(["a", "b"]))
        assert any("order" in issue for issue in issues)

    def test_duplicate_sensitive_fold_is_flagged_on_sets(self):
        count = lambda a, x: a + 1
        assert not is_duplicate_insensitive(count, 0, [1, 2])
        issues = check_fold_well_defined(count, 0, CSet([1, 2]))
        assert any("duplicate" in issue for issue in issues)

    def test_max_is_duplicate_insensitive(self):
        assert is_duplicate_insensitive(max, 0, [4, 2, 9])

    @given(st.lists(st.integers(min_value=-100, max_value=100), max_size=8))
    def test_fold_value_sum_matches_python_sum(self, numbers):
        assert fold_value(lambda a, x: a + x, 0, CList(numbers)) == sum(numbers)

    @given(st.sets(st.integers(min_value=-50, max_value=50), max_size=8))
    def test_set_fold_with_commutative_idempotent_combiner_never_flagged(self, numbers):
        # max is both commutative and idempotent, so it is a well-defined set fold.
        assert check_fold_well_defined(max, -1000, CSet(numbers)) == []


class TestTransitiveClosure:
    def _edges(self, pairs):
        return CSet([Record({"src": a, "dst": b}) for a, b in pairs])

    def test_chain_is_closed(self):
        closure = transitive_closure(self._edges([("a", "b"), ("b", "c"), ("c", "d")]))
        reached = {(r.project("src"), r.project("dst")) for r in closure}
        assert ("a", "d") in reached and ("b", "d") in reached
        assert len(reached) == 6

    def test_cycle_terminates(self):
        closure = transitive_closure(self._edges([("a", "b"), ("b", "a")]))
        reached = {(r.project("src"), r.project("dst")) for r in closure}
        assert reached == {("a", "b"), ("b", "a"), ("a", "a"), ("b", "b")}

    def test_labels_are_preserved(self):
        closure = transitive_closure(
            CSet([Record({"contains": "chr22", "part": "band11"}),
                  Record({"contains": "band11", "part": "locusX"})]))
        assert all(set(r.labels) == {"contains", "part"} for r in closure)
        reached = {(r.project("contains"), r.project("part")) for r in closure}
        assert ("chr22", "locusX") in reached

    def test_pair_lists_are_accepted(self):
        closure = transitive_closure(CSet([CList(["a", "b"]), CList(["b", "c"])]))
        assert CList(["a", "c"]) in closure

    def test_closure_is_idempotent(self):
        edges = self._edges([("a", "b"), ("b", "c")])
        once = transitive_closure(edges)
        twice = transitive_closure(once)
        assert once == twice

    def test_via_cpl_primitive(self):
        session = Session()
        session.bind("Links", CSet([Record({"src": "u1", "dst": "u2"}),
                                    Record({"src": "u2", "dst": "u3"})]))
        closure = session.run("tclosure(Links)")
        assert Record({"src": "u1", "dst": "u3"}) in closure

    def test_bad_arity_record_rejected(self):
        with pytest.raises(EvaluationError):
            transitive_closure(CSet([Record({"a": 1, "b": 2, "c": 3})]))

    def test_non_collection_rejected(self):
        with pytest.raises(EvaluationError):
            transitive_closure(42)

    @given(st.lists(st.tuples(st.integers(0, 5), st.integers(0, 5)), max_size=10))
    def test_closure_contains_original_edges_and_is_transitive(self, pairs):
        closure = transitive_closure(CSet([CList([a, b]) for a, b in pairs]))
        reached = {(edge[0], edge[1]) for edge in closure}
        assert set(pairs) <= reached
        for a, b in reached:
            for c, d in reached:
                if b == c:
                    assert (a, d) in reached


class TestNestUnnest:
    def _flat(self):
        return CSet([
            Record({"title": "T1", "keyword": "Exons"}),
            Record({"title": "T1", "keyword": "Genes"}),
            Record({"title": "T2", "keyword": "Exons"}),
        ])

    def test_nest_groups_by_field(self):
        nested = nest(self._flat(), "titles", "keyword")
        by_keyword = {r.project("keyword"): r.project("titles") for r in nested}
        assert Record({"title": "T1"}) in by_keyword["Exons"]
        assert Record({"title": "T2"}) in by_keyword["Exons"]
        assert len(by_keyword["Genes"]) == 1

    def test_unnest_inverts_nest_up_to_set_equality(self):
        flat = self._flat()
        assert unnest(nest(flat, "grouped", "title"), "grouped") == flat

    def test_nest_requires_records(self):
        with pytest.raises(EvaluationError):
            nest(CSet([1, 2]), "group", "key")

    def test_nest_requires_grouping_fields(self):
        with pytest.raises(EvaluationError):
            nest(self._flat(), "group")

    def test_group_by_key_function(self):
        groups = group_by(CList([1, 2, 3, 4, 5]), lambda n: n % 2)
        assert groups[0] == [2, 4] and groups[1] == [1, 3, 5]

    def test_nest_unnest_from_cpl(self):
        session = Session()
        session.bind("Flat", self._flat())
        nested = session.run('nest(Flat, "titles", "keyword")')
        assert len(nested) == 2
        flat_again = session.run('unnest(nest(Flat, "titles", "keyword"), "titles")')
        assert flat_again == self._flat()

    def test_keyword_inversion_example_matches_comprehension(self):
        """The paper's keyword-inversion restructuring, once via comprehension,
        once via the nest operator: same answer."""
        session = Session()
        session.bind("DB", CSet([
            Record({"title": "P1", "keywd": CSet(["Exons", "Genes"])}),
            Record({"title": "P2", "keywd": CSet(["Exons"])}),
        ]))
        by_comprehension = session.run(
            "{[keyword = k, titles = {x.title | \\x <- DB, k <- x.keywd}] |"
            " \\y <- DB, \\k <- y.keywd}")
        flattened = session.run(
            "{[title = t, keyword = k] | [title = \\t, keywd = \\kk, ...] <- DB, \\k <- kk}")
        by_nest = nest(flattened, "titles", "keyword")
        as_dict = {r.project("keyword"): CSet([t.project("title") for t in r.project("titles")])
                   for r in by_nest}
        expected = {r.project("keyword"): r.project("titles") for r in by_comprehension}
        assert as_dict == expected


class TestFoldRewriteRules:
    def test_fold_over_empty_normalises_to_init(self):
        from repro.core.nrc.rules_monadic import monadic_rule_set

        expr = _sum_fold(B.empty("set"))
        assert monadic_rule_set().apply(expr) == B.const(0)

    def test_fold_over_singleton_normalises_to_one_application(self):
        from repro.core.nrc.rules_monadic import monadic_rule_set

        expr = _sum_fold(B.singleton(B.const(7)))
        rewritten = monadic_rule_set().apply(expr)
        assert not isinstance(rewritten, A.Fold)
        assert evaluate(rewritten) == 7

    def test_rewriting_preserves_fold_meaning(self):
        from repro.core.nrc.rules_monadic import monadic_rule_set

        expr = _sum_fold(B.union(B.singleton(B.const(1)),
                                 B.union(B.singleton(B.const(2)), B.singleton(B.const(3)))))
        rewritten = monadic_rule_set().apply(expr)
        assert evaluate(rewritten) == evaluate(expr) == 6

    def test_optimizer_pipeline_keeps_fold_queries_correct(self, integrated_session):
        query = (r'fold(\a => \x => a + 1, 0, '
                 r'{[s = l.locus_symbol] | \l <- GDB-Tab("locus")})')
        optimized = integrated_session.run(query, optimize=True)
        unoptimized = integrated_session.run(query, optimize=False)
        assert optimized == unoptimized
        assert optimized > 0

    def test_fold_combiner_sees_driver_rows(self, integrated_session):
        total_length = integrated_session.run(
            r'fold(\a => \e => a + e.seq.length, 0, '
            r'GenBank([db = "na", select = "chromosome 22"]))')
        assert total_length > 0


class TestStructuralProperties:
    @given(st.lists(st.tuples(st.sampled_from(["T1", "T2", "T3"]),
                              st.sampled_from(["Exons", "Genes", "Maps", "Bands"])),
                    max_size=12))
    def test_nest_unnest_round_trip(self, pairs):
        flat = CSet([Record({"title": title, "keyword": keyword}) for title, keyword in pairs])
        assert unnest(nest(flat, "grouped", "keyword"), "grouped") == flat

    @given(st.lists(st.integers(min_value=-1000, max_value=1000), min_size=0, max_size=12))
    def test_cpl_fold_agrees_with_sum_primitive_on_lists(self, numbers):
        session = Session()
        session.bind("Xs", numbers, list_as="list")
        folded = session.run(r"fold(\a => \x => a + x, 0, Xs)")
        assert folded == sum(numbers)


class TestKindProof:
    """The static collection-kind inference the typed streaming union rests on.

    ``proven_collection_kind(term) == k`` must mean: whenever the term
    evaluates successfully, its value is the kind-``k`` collection class.
    A wrong "proven" would let the streaming backend skip ``union_like``'s
    run-time operand class check unsoundly, so these tests err strict.
    """

    def test_constructors_and_loops_prove_their_declared_kind(self):
        from repro.core.nrc.structural import proven_collection_kind

        cases = [
            (A.Empty("bag"), "bag"),
            (B.singleton(B.const(1), "list"), "list"),
            (B.ext("x", B.singleton(B.var("x")), B.var("S")), "set"),
            (A.Join("blocked", "o", B.var("O"), "i", B.var("I"), None,
                    B.singleton(B.var("o"), "list"), None, None, "list", 4),
             "list"),
        ]
        for expr, expected in cases:
            assert proven_collection_kind(expr) == expected, expr

    def test_externally_supplied_values_are_unproven(self):
        from repro.core.nrc.structural import proven_collection_kind

        unproven = [
            B.var("S"),                       # whatever is bound
            A.Const(CList([1, 2])),           # even a literal collection: the
                                              # prover dispatches on structure
            A.Scan("d", {"table": "t"}, kind="list"),  # driver controls class
            A.Cached(A.Empty("set"), key="k"),  # shared cache, not this term
            B.prim("count", B.var("S")),
            B.fold(B.var("f"), B.const(0), B.var("S")),
        ]
        for expr in unproven:
            assert proven_collection_kind(expr) is None, expr

    def test_union_is_proven_only_when_both_operands_agree(self):
        from repro.core.nrc.structural import proven_collection_kind

        proven = A.Union(A.Empty("list"), B.singleton(B.const(1), "list"), "list")
        assert proven_collection_kind(proven) == "list"
        half = A.Union(A.Empty("list"), B.var("S"), "list")
        assert proven_collection_kind(half) is None
        # A provable MISMATCH is unproven, not an error here: the streaming
        # lowering falls back to the eager union, which raises at run time
        # exactly like execute.
        mismatch = A.Union(A.Empty("bag"), A.Empty("list"), "list")
        assert proven_collection_kind(mismatch) is None

    def test_transparent_spine_propagates_the_proof(self):
        from repro.core.nrc.structural import proven_collection_kind

        let = A.Let("x", B.const(1), A.Empty("set"))
        assert proven_collection_kind(let) == "set"
        agreeing = B.if_then_else(B.var("c"), A.Empty("bag"), A.Empty("bag"))
        assert proven_collection_kind(agreeing) == "bag"
        disagreeing = B.if_then_else(B.var("c"), A.Empty("bag"), A.Empty("list"))
        assert proven_collection_kind(disagreeing) is None

    def test_ext_subclasses_need_their_own_prover(self):
        from repro.core.nrc.structural import proven_collection_kind
        from repro.core.optimizer.parallel import ParallelExt

        # ParallelExt registered one (parallel.py); an unregistered subclass
        # must stay unproven — exact-type dispatch, like the compilers.
        parallel = ParallelExt("x", B.singleton(B.var("x")), B.var("S"))
        assert proven_collection_kind(parallel) == "set"

        class UnregisteredExt(A.Ext):
            pass

        unknown = UnregisteredExt("x", B.singleton(B.var("x")), B.var("S"))
        assert proven_collection_kind(unknown) is None

    def test_nested_unions_prove_through(self):
        from repro.core.nrc.structural import proven_collection_kind

        nested = A.Union(
            A.Union(A.Empty("list"), B.singleton(B.const(1), "list"), "list"),
            B.ext("x", B.singleton(B.var("x"), "list"), B.var("S"), kind="list"),
            "list")
        assert proven_collection_kind(nested) == "list"
