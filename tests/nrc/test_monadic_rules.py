"""Tests for the monadic rewrite rules R1–R4 and the supporting laws.

Each rule is checked both for the *shape* it produces and for semantic
preservation (optimized and unoptimized terms evaluate to the same value).
"""

import pytest

from repro.core.nrc import ast as A
from repro.core.nrc import builder as B
from repro.core.nrc.eval import evaluate
from repro.core.nrc.rewrite import RewriteStats
from repro.core.nrc.rules_monadic import (
    monadic_rule_set,
    rule_case_of_variant,
    rule_ext_singleton_source,
    rule_filter_promotion,
    rule_horizontal_fusion,
    rule_projection_reduction,
    rule_vertical_fusion,
)
from repro.core.values import CBag, CList, CSet, Record


def ext_depth(expr):
    """Longest chain of nested Ext nodes (a proxy for intermediate collections)."""
    if isinstance(expr, A.Ext):
        return 1 + max((ext_depth(child) for child in expr.children()), default=0)
    return max((ext_depth(child) for child in expr.children()), default=0)


class TestR1VerticalFusion:
    def _producer_consumer(self):
        # U{ {x * 10} | \x <- U{ {y + 1} | \y <- S } }
        producer = B.ext("y", B.singleton(B.prim("add", B.var("y"), B.const(1))), B.var("S"))
        return B.ext("x", B.singleton(B.prim("mul", B.var("x"), B.const(10))), producer)

    def test_shape_becomes_single_outer_loop(self):
        fused = rule_vertical_fusion.apply(self._producer_consumer())
        assert fused is not None
        assert isinstance(fused, A.Ext)
        assert isinstance(fused.source, A.Var)  # the inner source is now the outer source

    def test_semantics_preserved(self):
        expr = self._producer_consumer()
        fused = rule_vertical_fusion.apply(expr)
        data = {"S": CSet([1, 2, 3])}
        assert evaluate(expr, data) == evaluate(fused, data) == CSet([20, 30, 40])

    def test_binder_capture_is_avoided(self):
        # The consumer body references a free variable named like the inner binder.
        producer = B.ext("y", B.singleton(B.var("y")), B.var("S"))
        consumer = B.ext("x", B.singleton(B.prim("add", B.var("x"), B.var("y"))), producer)
        fused = rule_vertical_fusion.apply(consumer)
        data = {"S": CSet([1, 2]), "y": 100}
        assert evaluate(consumer, data) == evaluate(fused, data) == CSet([101, 102])

    def test_not_applicable_across_collection_kinds(self):
        producer = B.ext("y", B.singleton(B.var("y"), "list"), B.var("S"), "list")
        consumer = B.ext("x", B.singleton(B.var("x")), producer)
        assert rule_vertical_fusion.apply(consumer) is None


class TestR2HorizontalFusion:
    def _two_loops(self, kind="set"):
        left = B.ext("x", B.singleton(B.prim("add", B.var("x"), B.const(1)), kind),
                     B.var("S"), kind)
        right = B.ext("x", B.singleton(B.prim("mul", B.var("x"), B.const(2)), kind),
                      B.var("S"), kind)
        return B.union(left, right, kind)

    def test_two_traversals_become_one(self):
        fused = rule_horizontal_fusion.apply(self._two_loops())
        assert isinstance(fused, A.Ext)
        assert isinstance(fused.body, A.Union)

    def test_semantics_preserved_for_sets_and_bags(self):
        for kind, cls in (("set", CSet), ("bag", CBag)):
            expr = self._two_loops(kind)
            fused = rule_horizontal_fusion.apply(expr)
            data = {"S": cls([1, 2, 3])}
            assert evaluate(expr, data) == evaluate(fused, data)

    def test_rule_does_not_apply_to_lists(self):
        """The paper: R2 applies to sets and multisets, but not to lists."""
        assert rule_horizontal_fusion.apply(self._two_loops("list")) is None

    def test_rule_requires_identical_sources(self):
        left = B.ext("x", B.singleton(B.var("x")), B.var("S"))
        right = B.ext("x", B.singleton(B.var("x")), B.var("T"))
        assert rule_horizontal_fusion.apply(B.union(left, right)) is None


class TestR3FilterPromotion:
    def _loop_with_invariant_filter(self):
        body = B.if_then_else(B.prim("gt", B.var("threshold"), B.const(5)),
                              B.singleton(B.var("x")), B.empty())
        return B.ext("x", body, B.var("S"))

    def test_filter_moves_out_of_loop(self):
        promoted = rule_filter_promotion.apply(self._loop_with_invariant_filter())
        assert isinstance(promoted, A.IfThenElse)
        assert isinstance(promoted.then_branch, A.Ext)

    def test_semantics_preserved(self):
        expr = self._loop_with_invariant_filter()
        promoted = rule_filter_promotion.apply(expr)
        for threshold in (1, 10):
            data = {"S": CSet([1, 2]), "threshold": threshold}
            assert evaluate(expr, data) == evaluate(promoted, data)

    def test_dependent_filter_stays_inside(self):
        body = B.if_then_else(B.prim("gt", B.var("x"), B.const(5)),
                              B.singleton(B.var("x")), B.empty())
        assert rule_filter_promotion.apply(B.ext("x", body, B.var("S"))) is None


class TestR4ProjectionReduction:
    def test_projection_of_record_literal_reduces(self):
        expr = B.project(B.record(l1=B.apply(B.var("f"), B.var("y")), l2=B.var("g")), "l1")
        assert rule_projection_reduction.apply(expr) == B.apply(B.var("f"), B.var("y"))

    def test_missing_label_is_left_alone(self):
        expr = B.project(B.record(a=B.const(1)), "b")
        assert rule_projection_reduction.apply(expr) is None

    def test_paper_composition_of_r1_and_r4(self):
        """The paper's example: R1 then R4 turns the nested projection loop into U{{f(y)} | y <- R}."""
        inner = B.ext("y", B.singleton(B.record(l1=B.apply(B.var("f"), B.var("y")),
                                                l2=B.apply(B.var("g"), B.var("y")))),
                      B.var("R"))
        outer = B.ext("x", B.singleton(B.project(B.var("x"), "l1")), inner)
        optimized = monadic_rule_set().apply(outer)
        assert isinstance(optimized, A.Ext)
        assert isinstance(optimized.source, A.Var)       # single loop over R
        # The record construction (and g's column) is gone entirely.
        assert "l2" not in optimized.pretty()
        data = {"R": CSet([1, 2, 3]), "f": lambda v: v * 10, "g": lambda v: v + 1}
        assert evaluate(outer, data) == evaluate(optimized, data) == CSet([10, 20, 30])


class TestSupportingRules:
    def test_left_unit_law(self):
        expr = B.ext("x", B.singleton(B.prim("add", B.var("x"), B.const(1))),
                     B.singleton(B.const(41)))
        assert rule_ext_singleton_source.apply(expr) == \
            B.singleton(B.prim("add", B.const(41), B.const(1)))

    def test_case_of_variant_resolves_statically(self):
        expr = B.case_of(B.variant("giim", B.const(5)),
                         [A.CaseBranch("giim", "v", B.var("v"))])
        assert rule_case_of_variant.apply(expr) == A.Const(5)

    def test_full_rule_set_is_semantics_preserving_on_nested_query(self):
        db = CSet([Record({"title": "A", "keywd": CSet(["k1", "k2"])}),
                   Record({"title": "B", "keywd": CSet(["k1"])})])
        inner = B.ext("p", B.singleton(B.record(t=B.project(B.var("p"), "title"),
                                                ks=B.project(B.var("p"), "keywd"))),
                      B.var("DB"))
        outer = B.ext("r", B.ext("k", B.singleton(B.record(title=B.project(B.var("r"), "t"),
                                                           keyword=B.var("k"))),
                                 B.project(B.var("r"), "ks")), inner)
        stats = RewriteStats()
        optimized = monadic_rule_set().apply(outer, stats)
        assert stats.fired("R1-vertical-fusion") >= 1
        assert evaluate(outer, {"DB": db}) == evaluate(optimized, {"DB": db})

    def test_ablation_switches_disable_rules(self):
        rule_set = monadic_rule_set(include_vertical=False)
        inner = B.ext("y", B.singleton(B.var("y")), B.var("S"))
        outer = B.ext("x", B.singleton(B.var("x")), inner)
        stats = RewriteStats()
        rule_set.apply(outer, stats)
        assert stats.fired("R1-vertical-fusion") == 0

    def test_fusion_reduces_intermediate_collection_size(self):
        """The point of R1: less intermediate data (observable via evaluator statistics)."""
        from repro.core.nrc.eval import EvalContext, Evaluator

        source = B.const(CSet(range(100)))
        producer = B.ext("y", B.singleton(B.record(a=B.var("y"), b=B.var("y"))), source)
        consumer = B.ext("x", B.singleton(B.project(B.var("x"), "a")), producer)
        optimized = monadic_rule_set().apply(consumer)

        unopt_context = EvalContext()
        Evaluator(unopt_context).evaluate(consumer)
        opt_context = EvalContext()
        Evaluator(opt_context).evaluate(optimized)
        assert opt_context.statistics.ext_iterations < unopt_context.statistics.ext_iterations
