"""Tests for the built-in primitives (the structural-recursion derived operations)."""

import pytest

from repro.core.errors import EvaluationError
from repro.core.nrc.prims import lookup_primitive, primitive_names, register_primitive
from repro.core.values import CBag, CList, CSet, Record, Variant


def prim(name, *args):
    return lookup_primitive(name)(*args)


class TestArithmeticAndComparison:
    def test_arithmetic(self):
        assert prim("add", 2, 3) == 5
        assert prim("sub", 2, 3) == -1
        assert prim("mul", 2, 3) == 6
        assert prim("div", 7, 2) == 3          # integer division on ints
        assert prim("div", 7.0, 2) == 3.5
        assert prim("mod", 7, 3) == 1
        assert prim("neg", 4) == -4

    def test_division_by_zero(self):
        with pytest.raises(EvaluationError):
            prim("div", 1, 0)
        with pytest.raises(EvaluationError):
            prim("mod", 1, 0)

    def test_type_errors(self):
        with pytest.raises(EvaluationError):
            prim("add", 1, "x")
        with pytest.raises(EvaluationError):
            prim("add", True, 1)

    def test_comparisons(self):
        assert prim("lt", 1, 2) is True
        assert prim("ge", "b", "a") is True
        with pytest.raises(EvaluationError):
            prim("lt", 1, "a")

    def test_equality_is_structural(self):
        assert prim("eq", Record({"a": 1}), Record({"a": 1})) is True
        assert prim("neq", CSet([1]), CSet([2])) is True

    def test_arity_checking(self):
        with pytest.raises(EvaluationError):
            prim("add", 1)


class TestStringsAndBooleans:
    def test_boolean_connectives(self):
        assert prim("and", True, False) is False
        assert prim("or", True, False) is True
        assert prim("not", False) is True
        with pytest.raises(EvaluationError):
            prim("and", 1, True)

    def test_string_operations(self):
        assert prim("string_concat", "a", "b") == "ab"
        assert prim("string_length", "abc") == 3
        assert prim("string_upper", "acgt") == "ACGT"
        assert prim("string_contains", "chromosome 22", "22") is True
        assert prim("string_startswith", "D22S1", "D22") is True
        assert prim("string_split", "a,b", ",") == CList(["a", "b"])
        assert prim("string_of_int", 81001) == "81001"
        assert prim("int_of_string", "42") == 42
        with pytest.raises(EvaluationError):
            prim("int_of_string", "not a number")


class TestCollectionPrimitives:
    def test_aggregates(self):
        assert prim("count", CSet([1, 2, 3])) == 3
        assert prim("sum", CBag([1, 1, 2])) == 4
        assert prim("avg", CList([2, 4])) == 3
        assert prim("max", CSet(["a", "c", "b"])) == "c"
        assert prim("min", CSet([3, 1])) == 1
        with pytest.raises(EvaluationError):
            prim("avg", CSet())
        with pytest.raises(EvaluationError):
            prim("max", CList())

    def test_membership_and_emptiness(self):
        assert prim("isempty", CSet()) is True
        assert prim("member", 2, CSet([1, 2])) is True
        assert prim("member", Record({"a": 1}), CSet([Record({"a": 1})])) is True

    def test_structure_manipulation(self):
        assert prim("flatten", CSet([CSet([1]), CSet([2, 3])])) == CSet([1, 2, 3])
        assert prim("distinct", CList([1, 1, 2])) == CList([1, 2])
        assert prim("set_of", CList([1, 1, 2])) == CSet([1, 2])
        assert prim("bag_of", CSet([1, 2])) == CBag([1, 2])
        assert prim("list_of", CBag([1])) == CList([1])
        assert prim("setunion", CSet([1]), CSet([2])) == CSet([1, 2])
        assert prim("setdiff", CSet([1, 2]), CSet([2])) == CSet([1])
        assert prim("setintersect", CSet([1, 2]), CSet([2, 3])) == CSet([2])

    def test_ordering_and_indexing(self):
        assert prim("sort", CSet([3, 1, 2])) == CList([1, 2, 3])
        assert prim("head", CList(["x", "y"])) == "x"
        assert prim("nth", CList([10, 20, 30]), 1) == 20
        assert prim("take", CList([1, 2, 3]), 2) == CList([1, 2])
        with pytest.raises(EvaluationError):
            prim("nth", CList([1]), 5)
        with pytest.raises(EvaluationError):
            prim("head", CSet())

    def test_sort_handles_mixed_nested_values(self):
        mixed = CSet([Record({"a": 2}), Record({"a": 1})])
        assert prim("sort", mixed) == CList([Record({"a": 1}), Record({"a": 2})])

    def test_record_and_variant_helpers(self):
        assert prim("record_labels", Record({"b": 1, "a": 2})) == CList(["a", "b"])
        assert prim("variant_tag", Variant("giim", 1)) == "giim"
        assert prim("variant_value", Variant("giim", 1)) == 1
        with pytest.raises(EvaluationError):
            prim("variant_tag", 42)


class TestRegistry:
    def test_unknown_primitive(self):
        with pytest.raises(EvaluationError):
            lookup_primitive("no_such_primitive")

    def test_primitive_names_is_sorted(self):
        names = primitive_names()
        assert names == sorted(names)
        assert "count" in names

    def test_fail_primitive_raises(self):
        with pytest.raises(EvaluationError):
            prim("fail", "boom")

    def test_registration_extends_the_table(self):
        @register_primitive("test_only_triple", arity=1)
        def _triple(x):
            return x * 3

        assert prim("test_only_triple", 4) == 12
