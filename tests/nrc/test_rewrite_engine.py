"""Tests for the rewrite engine: rules, rule sets, traversal orders, statistics."""

import pytest

from repro.core.errors import NRCError
from repro.core.nrc import ast as A
from repro.core.nrc import builder as B
from repro.core.nrc.rewrite import RewriteEngine, RewriteStats, Rule, RuleSet


def _fold_add(expr):
    """Constant-fold add(Const, Const) — a simple rule for exercising the engine."""
    if (isinstance(expr, A.PrimCall) and expr.name == "add"
            and all(isinstance(arg, A.Const) for arg in expr.args)):
        return A.Const(expr.args[0].value + expr.args[1].value)
    return None


class TestRule:
    def test_rule_returns_none_when_not_applicable(self):
        rule = Rule("fold", _fold_add)
        assert rule.apply(B.var("x")) is None

    def test_rule_rewrites_matching_node(self):
        rule = Rule("fold", _fold_add)
        assert rule.apply(B.prim("add", B.const(1), B.const(2))) == A.Const(3)


class TestRuleSet:
    def test_bottom_up_reaches_fixpoint(self):
        rule_set = RuleSet("fold", [Rule("fold", _fold_add)])
        expr = B.prim("add", B.prim("add", B.const(1), B.const(2)), B.const(3))
        assert rule_set.apply(expr) == A.Const(6)

    def test_top_down_traversal(self):
        rule_set = RuleSet("fold", [Rule("fold", _fold_add)], direction="top-down")
        expr = B.prim("add", B.prim("add", B.const(1), B.const(2)), B.const(3))
        assert rule_set.apply(expr) == A.Const(6)

    def test_unknown_direction_rejected(self):
        with pytest.raises(NRCError):
            RuleSet("bad", [], direction="sideways")

    def test_iteration_bound_prevents_runaway(self):
        # A rule that keeps wrapping a node would loop forever without the bound.
        def wrap(expr):
            if isinstance(expr, A.Const) and isinstance(expr.value, int) and expr.value < 1000:
                return A.Const(expr.value + 1)
            return None

        rule_set = RuleSet("wrap", [Rule("wrap", wrap)], max_iterations=3)
        result = rule_set.apply(A.Const(0))
        assert isinstance(result, A.Const)
        assert result.value < 1000  # stopped by the bound, not by reaching 1000

    def test_statistics_record_firings(self):
        stats = RewriteStats()
        rule_set = RuleSet("fold", [Rule("fold", _fold_add)])
        rule_set.apply(B.prim("add", B.prim("add", B.const(1), B.const(2)), B.const(3)), stats)
        assert stats.fired("fold") == 2
        assert stats.total() == 2

    def test_add_rule_extensibility(self):
        """New rules can be added to an existing rule set (the paper's extensibility point)."""
        rule_set = RuleSet("empty", [])
        assert rule_set.apply(B.prim("add", B.const(1), B.const(1))) == \
            B.prim("add", B.const(1), B.const(1))
        rule_set.add_rule(Rule("fold", _fold_add))
        assert rule_set.apply(B.prim("add", B.const(1), B.const(1))) == A.Const(2)


class TestRewriteEngine:
    def test_rule_sets_apply_in_order(self):
        def to_mul(expr):
            if isinstance(expr, A.PrimCall) and expr.name == "add":
                return A.PrimCall("mul", expr.args)
            return None

        def fold_mul(expr):
            if (isinstance(expr, A.PrimCall) and expr.name == "mul"
                    and all(isinstance(arg, A.Const) for arg in expr.args)):
                return A.Const(expr.args[0].value * expr.args[1].value)
            return None

        engine = RewriteEngine([
            RuleSet("first", [Rule("to-mul", to_mul)]),
            RuleSet("second", [Rule("fold-mul", fold_mul)]),
        ])
        assert engine.rewrite(B.prim("add", B.const(3), B.const(4))) == A.Const(12)

    def test_explain_reports_per_stage_traces(self):
        engine = RewriteEngine([RuleSet("fold", [Rule("fold", _fold_add)])])
        result, stats, traces = engine.explain(B.prim("add", B.const(1), B.const(2)))
        assert result == A.Const(3)
        assert stats.fired("fold") == 1
        assert len(traces) == 1
        assert "fold" == traces[0][0]

    def test_engine_with_no_rule_sets_is_identity(self):
        expr = B.prim("add", B.const(1), B.const(2))
        assert RewriteEngine().rewrite(expr) == expr


class TestAstUtilities:
    def test_free_variables(self):
        expr = B.ext("x", B.singleton(B.prim("add", B.var("x"), B.var("y"))), B.var("S"))
        assert A.free_variables(expr) == frozenset({"y", "S"})

    def test_substitution_is_capture_avoiding(self):
        # Substituting y := x inside a binder over x must not capture.
        expr = B.ext("x", B.singleton(B.prim("add", B.var("x"), B.var("y"))), B.var("S"))
        substituted = A.substitute(expr, "y", B.var("x"))
        # The binder must have been renamed so the free x stays free.
        assert "x" in A.free_variables(substituted)
        assert substituted.var != "x"

    def test_substitute_in_lambda_shadowing(self):
        lam = B.lam("x", B.var("x"))
        assert A.substitute(lam, "x", B.const(1)) == lam

    def test_node_count(self):
        expr = B.prim("add", B.const(1), B.prim("add", B.const(2), B.const(3)))
        assert A.node_count(expr) == 5

    def test_structural_equality_and_hash(self):
        a = B.ext("x", B.singleton(B.var("x")), B.var("S"))
        b = B.ext("x", B.singleton(B.var("x")), B.var("S"))
        assert a == b
        assert hash(a) == hash(b)
        assert a != B.ext("y", B.singleton(B.var("y")), B.var("S"))
