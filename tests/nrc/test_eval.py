"""Tests for the NRC evaluator: every node type, closures, joins, caching, scans."""

import pytest

from repro.core.errors import EvaluationError, UnboundVariableError
from repro.core.nrc import ast as A
from repro.core.nrc import builder as B
from repro.core.nrc.eval import Environment, EvalContext, EvalStatistics, Evaluator, evaluate
from repro.core.values import CBag, CList, CSet, Record, Ref, UNIT_VALUE, Variant


class TestBasicNodes:
    def test_const_and_var(self):
        assert evaluate(B.const(42)) == 42
        assert evaluate(B.var("x"), {"x": "hello"}) == "hello"

    def test_unbound_variable(self):
        with pytest.raises(UnboundVariableError):
            evaluate(B.var("missing"))

    def test_lambda_and_application(self):
        inc = B.lam("x", B.prim("add", B.var("x"), B.const(1)))
        assert evaluate(B.apply(inc, B.const(41))) == 42

    def test_applying_non_function_fails(self):
        with pytest.raises(EvaluationError):
            evaluate(B.apply(B.const(3), B.const(4)))

    def test_native_python_callable_can_be_applied(self):
        assert evaluate(B.apply(B.var("f"), B.const(2)), {"f": lambda x: x * 10}) == 20

    def test_record_construction_and_projection(self):
        record = B.record(title=B.const("A"), year=B.const(1989))
        assert evaluate(B.project(record, "year")) == 1989
        with pytest.raises(EvaluationError):
            evaluate(B.project(record, "missing"))

    def test_projection_of_non_record_fails(self):
        with pytest.raises(EvaluationError):
            evaluate(B.project(B.const(3), "x"))

    def test_variant_and_case(self):
        subject = B.variant("uncontrolled", B.const("Notes"))
        expr = B.case_of(subject, [A.CaseBranch("uncontrolled", "s", B.var("s"))])
        assert evaluate(expr) == "Notes"

    def test_case_default_branch(self):
        subject = B.variant("other", B.const(1))
        expr = B.case_of(subject, [A.CaseBranch("x", "v", B.var("v"))],
                         default=("whole", B.const("fallback")))
        assert evaluate(expr) == "fallback"

    def test_case_without_match_fails(self):
        subject = B.variant("other", B.const(1))
        expr = B.case_of(subject, [A.CaseBranch("x", "v", B.var("v"))])
        with pytest.raises(EvaluationError):
            evaluate(expr)

    def test_if_requires_boolean(self):
        with pytest.raises(EvaluationError):
            evaluate(B.if_then_else(B.const(1), B.const(2), B.const(3)))

    def test_let_binding(self):
        expr = B.let("x", B.const(5), B.prim("mul", B.var("x"), B.var("x")))
        assert evaluate(expr) == 25

    def test_deref(self):
        class Store:
            def resolve(self, ref):
                return Record({"name": ref.identifier})

        ref = Ref("Locus", "D22S1", Store())
        assert evaluate(A.Deref(B.const(ref))) == Record({"name": "D22S1"})
        assert evaluate(B.project(B.const(ref), "name")) == "D22S1"


class TestCollectionsAndExt:
    def test_empty_singleton_union(self):
        assert evaluate(B.empty("set")) == CSet()
        assert evaluate(B.singleton(B.const(1), "bag")) == CBag([1])
        assert evaluate(B.union(B.singleton(B.const(1), "list"),
                                B.singleton(B.const(2), "list"), "list")) == CList([1, 2])

    def test_union_kind_mismatch_fails(self):
        expr = B.union(B.singleton(B.const(1), "set"), B.singleton(B.const(2), "list"), "set")
        with pytest.raises(EvaluationError):
            evaluate(expr)

    def test_ext_is_flat_map(self):
        source = B.const(CSet([1, 2, 3]))
        body = B.singleton(B.prim("mul", B.var("x"), B.const(10)))
        assert evaluate(B.ext("x", body, source)) == CSet([10, 20, 30])

    def test_ext_over_list_preserves_duplicates_and_order(self):
        source = B.const(CList([1, 2, 2]))
        body = B.singleton(B.var("x"), "list")
        assert evaluate(B.ext("x", body, source, "list")) == CList([1, 2, 2])

    def test_ext_body_must_be_collection(self):
        expr = B.ext("x", B.var("x"), B.const(CSet([1])))
        with pytest.raises(EvaluationError):
            evaluate(expr)

    def test_comprehension_builder(self):
        expr = B.comprehension(B.var("x"), [("x", B.const(CSet([1, 2, 3, 4]))),
                                            B.prim("gt", B.var("x"), B.const(2))])
        assert evaluate(expr) == CSet([3, 4])

    def test_statistics_track_iterations_and_intermediates(self):
        context = EvalContext()
        source = B.const(CSet(range(10)))
        expr = B.ext("x", B.singleton(B.var("x")), source)
        Evaluator(context).evaluate(expr)
        assert context.statistics.ext_iterations == 10
        assert context.statistics.peak_intermediate == 10


class TestScanAndCache:
    def test_scan_requires_executor(self):
        with pytest.raises(EvaluationError):
            evaluate(A.Scan("GDB", {"table": "locus"}))

    def test_scan_calls_executor_with_evaluated_args(self):
        seen = []

        def executor(driver, request):
            seen.append((driver, request))
            return CSet([1, 2])

        context = EvalContext(driver_executor=executor)
        scan = A.Scan("GDB", {"table": "locus"}, {"extra": B.const("arg")})
        result = Evaluator(context).evaluate(scan)
        assert result == CSet([1, 2])
        assert seen == [("GDB", {"table": "locus", "extra": "arg"})]
        assert context.statistics.scan_requests == 1
        assert context.statistics.scan_elements == 2

    def test_cached_node_evaluates_once(self):
        calls = []

        def executor(driver, request):
            calls.append(request)
            return CSet([1])

        context = EvalContext(driver_executor=executor)
        cached = A.Cached(A.Scan("GDB", {"table": "locus"}), key="k1")
        loop = B.ext("x", B.ext("y", B.singleton(B.var("y")), cached),
                     B.const(CSet([1, 2, 3])))
        Evaluator(context).evaluate(loop)
        assert len(calls) == 1
        assert context.statistics.cache_hits == 2
        assert context.statistics.cache_misses == 1


class TestJoins:
    def _inputs(self):
        outer = CSet([Record({"id": i, "name": f"n{i}"}) for i in range(1, 6)])
        inner = CSet([Record({"ref": i % 3, "data": f"d{i}"}) for i in range(6)])
        return outer, inner

    def _expected(self, outer, inner):
        return CSet([
            Record({"name": o.project("name"), "data": i.project("data")})
            for o in outer for i in inner
            if o.project("id") == i.project("ref")
        ])

    def test_blocked_join_matches_nested_loop_semantics(self):
        outer, inner = self._inputs()
        join = A.Join("blocked", "o", B.const(outer), "i", B.const(inner),
                      B.eq(B.project(B.var("o"), "id"), B.project(B.var("i"), "ref")),
                      B.singleton(B.record(name=B.project(B.var("o"), "name"),
                                           data=B.project(B.var("i"), "data"))),
                      block_size=2)
        assert evaluate(join) == self._expected(outer, inner)

    def test_indexed_join_matches_nested_loop_semantics(self):
        outer, inner = self._inputs()
        join = A.Join("indexed", "o", B.const(outer), "i", B.const(inner),
                      None,
                      B.singleton(B.record(name=B.project(B.var("o"), "name"),
                                           data=B.project(B.var("i"), "data"))),
                      outer_key=B.project(B.var("o"), "id"),
                      inner_key=B.project(B.var("i"), "ref"))
        assert evaluate(join) == self._expected(outer, inner)

    def test_indexed_join_requires_keys(self):
        join = A.Join("indexed", "o", B.const(CSet()), "i", B.const(CSet()),
                      None, B.singleton(B.const(1)))
        with pytest.raises(EvaluationError):
            evaluate(join)

    def test_join_statistics(self):
        outer, inner = self._inputs()
        context = EvalContext()
        join = A.Join("blocked", "o", B.const(outer), "i", B.const(inner),
                      None, B.singleton(B.const(1)))
        Evaluator(context).evaluate(join)
        assert context.statistics.joins_blocked == 1
        assert context.statistics.joins_indexed == 0


class TestEnvironmentChain:
    """lookup/contains share one chain walk; shadowing across child/extended."""

    def test_child_shadows_parent(self):
        env = Environment({"x": 1, "y": 2}).child("x", 10)
        assert env.lookup("x") == 10
        assert env.lookup("y") == 2
        assert env.contains("x") and env.contains("y")

    def test_extended_shadows_across_levels(self):
        env = (Environment({"x": 1})
               .extended({"x": 2, "y": 2})
               .child("y", 3)
               .extended({"z": 4}))
        assert env.lookup("x") == 2
        assert env.lookup("y") == 3
        assert env.lookup("z") == 4

    def test_contains_agrees_with_lookup_for_shadowed_names(self):
        env = Environment({"x": 1}).child("x", None).child("q", False)
        for name in ("x", "q"):
            assert env.contains(name)
            env.lookup(name)  # must not raise
        assert env.lookup("x") is None
        assert env.lookup("q") is False

    def test_missing_name_is_consistent(self):
        env = Environment({"x": 1}).child("y", 2)
        assert not env.contains("z")
        with pytest.raises(UnboundVariableError):
            env.lookup("z")

    def test_none_valued_binding_is_not_missing(self):
        """A binding whose value is None must not look like an absent one."""
        env = Environment({"x": None})
        assert env.contains("x")
        assert env.lookup("x") is None
