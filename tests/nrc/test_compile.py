"""Unit tests for the compile-to-closures backend and its engine wiring."""

import pytest

from repro.core.nrc import ast as A
from repro.core.nrc import builder as B
from repro.core.nrc import compile as C
from repro.core.nrc.compile import CompiledQuery, ExecutionMode, compile_term
from repro.core.nrc.eval import EvalContext, Environment, Evaluator
from repro.core.errors import EvaluationError
from repro.core.optimizer.parallel import ParallelExt
from repro.core.values import CBag, CList, CSet, Record, from_python
from repro.kleisli.engine import KleisliEngine
from repro.kleisli.session import Session


class TestCompileBasics:
    def test_every_core_node_has_a_native_compiler(self):
        supported = C.supported_node_types()
        for name in ["Const", "Var", "Lam", "Apply", "RecordExpr", "Project",
                     "VariantExpr", "Case", "Empty", "Singleton", "Union",
                     "Ext", "Fold", "IfThenElse", "PrimCall", "Let", "Deref",
                     "Scan", "Join", "Cached", "ParallelExt"]:
            assert name in supported

    def test_simple_arithmetic(self):
        term = B.prim("add", B.const(40), B.const(2))
        assert compile_term(term)() == 42

    def test_free_variables_read_from_environment(self):
        query = compile_term(B.prim("mul", B.var("x"), B.var("y")))
        assert query.free_names == ("x", "y")
        assert query(Environment({"x": 6, "y": 7})) == 42

    def test_collection_kinds_are_preserved(self):
        for kind, cls in [("set", CSet), ("bag", CBag), ("list", CList)]:
            term = B.ext("x", B.singleton(B.var("x"), kind),
                         A.Const(from_python([3, 1, 2], list_as=kind)), kind)
            value = compile_term(term)()
            assert isinstance(value, cls)

    def test_compiled_record_uses_interned_directory(self):
        term = B.record(b=B.const(2), a=B.const(1))
        value = compile_term(term)()
        assert value == Record({"a": 1, "b": 2})
        assert value.directory is Record({"a": 9, "b": 9}).directory

    def test_statistics_count_iterations(self):
        term = B.ext("x", B.singleton(B.var("x")), A.Const(CSet(range(7))))
        context = EvalContext()
        compile_term(term)(context=context)
        assert context.statistics.ext_iterations == 7
        assert context.statistics.elements_fetched == 7


class TestFallback:
    def test_unsupported_node_falls_back_to_the_interpreter(self, monkeypatch):
        monkeypatch.delitem(C._COMPILERS, A.Fold)
        plus = B.lam("a", B.lam("b", B.prim("add", B.var("a"), B.var("b"))))
        term = B.prim("mul", B.const(2),
                      B.fold(plus, B.const(0), A.Const(CSet([1, 2, 3]))))
        query = compile_term(term)
        assert query.fallback_nodes == ("Fold",)
        assert not query.fully_compiled
        context = EvalContext()
        assert query(context=context) == 12
        assert context.statistics.compiled_fallbacks == 1
        assert context.statistics.fold_iterations == 3

    def test_fallback_sees_compiled_bindings(self, monkeypatch):
        """A fallback subtree must observe Let/Ext bindings made by compiled
        frames (the frame is reconstructed into an Environment)."""
        monkeypatch.delitem(C._COMPILERS, A.Fold)
        plus = B.lam("a", B.lam("b", B.prim("add", B.var("a"), B.var("b"))))
        term = B.let("base", B.const(100),
                     B.fold(plus, B.var("base"), A.Const(CSet([1, 2, 3]))))
        assert compile_term(term)() == 106

    def test_unknown_node_memo_does_not_conflate_equal_terms(self, monkeypatch):
        """Terms containing nodes without a native compiler are memo-keyed by
        identity, so structurally-equal fallback terms (True == 1!) never
        share a burned-in compiled query."""
        monkeypatch.delitem(C._COMPILERS, A.Singleton)
        engine = KleisliEngine()
        first = B.singleton(B.const(1))
        second = B.singleton(B.const(True))
        assert first == second  # the equality trap, now through fallback
        assert engine.execute(first, optimize=False) == CSet([1])
        value = engine.execute(second, optimize=False)
        assert next(iter(value)) is True

    def test_interpreter_closures_cross_into_compiled_apply(self):
        interpreted_closure = Evaluator().evaluate(
            B.lam("x", B.prim("add", B.var("x"), B.const(1))))
        query = compile_term(B.apply(B.var("f"), B.const(41)))
        assert query(Environment({"f": interpreted_closure})) == 42


class TestParallelExtCompiled:
    def test_parallel_ext_compiles_natively_and_agrees(self):
        term = ParallelExt("x", B.singleton(B.prim("mul", B.var("x"), B.const(3))),
                           A.Const(CSet([1, 2, 3, 4])), kind="set", max_workers=2)
        query = compile_term(term)
        assert query.fully_compiled
        context = EvalContext()
        assert query(context=context) == CSet([3, 6, 9, 12])
        assert context.statistics.ext_iterations == 4


class TestFingerprintExtSubclasses:
    def test_parallel_ext_scheduler_settings_are_in_the_fingerprint(self):
        from repro.core.nrc.compile import term_fingerprint

        source = A.Const(CSet([1, 2]))
        body = B.singleton(B.var("x"))
        two = ParallelExt("x", body, source, max_workers=2)
        five = ParallelExt("x", body, source, max_workers=5)
        assert term_fingerprint(two) != term_fingerprint(five)

    def test_registered_subclass_without_extras_is_identity_keyed(self, monkeypatch):
        """A registered Ext subclass that does not declare fingerprint_extras
        may bake in parameters the fingerprint cannot see — key by identity
        so structurally-equal terms never share a compiled query."""
        from repro.core.nrc.compile import term_fingerprint

        class StepExt(A.Ext):
            __slots__ = ("step",)

            def __init__(self, var, body, source, kind="set", step=1):
                super().__init__(var, body, source, kind)
                self.step = step

        def compile_step(expr, scope, state):
            source_fn = C._compile(expr.source, scope, state)
            body_fn = C._compile(expr.body, scope + (expr.var,), state)

            def run(frame, context):
                items = list(source_fn(frame, context))[::expr.step]
                out = []
                for item in items:
                    out.extend(body_fn(frame + [item], context))
                from repro.core.values import make_collection
                return make_collection(expr.kind, out)

            return run

        monkeypatch.setitem(C._COMPILERS, StepExt, compile_step)
        source = A.Const(CList([1, 2, 3, 4]))
        body = B.singleton(B.var("x"), "list")
        one = StepExt("x", body, source, kind="list", step=1)
        two = StepExt("x", body, source, kind="list", step=2)
        assert one == two  # _key() does not include step
        assert term_fingerprint(one) != term_fingerprint(two)
        engine = KleisliEngine()
        assert engine.execute(one, optimize=False) == CList([1, 2, 3, 4])
        assert engine.execute(two, optimize=False) == CList([1, 3])


class TestEngineModes:
    def test_execute_modes_agree_and_report_mode(self):
        engine = KleisliEngine()
        term = B.ext("x", B.singleton(B.prim("add", B.var("x"), B.const(1))),
                     A.Const(CSet(range(10))))
        compiled_value = engine.execute(term, mode="compiled")
        assert engine.last_eval_statistics.execution_mode == "compiled"
        interpreted_value = engine.execute(term, mode="interpret")
        assert engine.last_eval_statistics.execution_mode == "interpreted"
        assert compiled_value == interpreted_value

    def test_default_mode_is_compiled(self):
        engine = KleisliEngine()
        assert engine.execution_mode is ExecutionMode.COMPILED
        engine.execute(B.const(1))
        assert engine.last_eval_statistics.execution_mode == "compiled"

    def test_fallback_is_surfaced_in_statistics(self, monkeypatch):
        monkeypatch.delitem(C._COMPILERS, A.Fold)
        engine = KleisliEngine()
        plus = B.lam("a", B.lam("b", B.prim("add", B.var("a"), B.var("b"))))
        term = B.fold(plus, B.const(0), A.Const(CSet([1, 2, 3])))
        engine.execute(term, optimize=False)
        stats = engine.last_eval_statistics
        assert stats.execution_mode == "compiled+fallback"
        assert stats.compiled_fallbacks == 1

    def test_compiled_queries_are_memoized(self):
        engine = KleisliEngine()
        term = B.prim("add", B.const(1), B.const(2))
        assert engine.compiled_query(term) is engine.compiled_query(
            B.prim("add", B.const(1), B.const(2)))

    def test_equal_cached_nodes_with_different_keys_do_not_share_a_query(self):
        """Cached.__eq__ ignores the cache key (rewrite-fixpoint detection
        needs that), but the compiled closure bakes the key in — the memo must
        not conflate them, or one term would read the other's cache entry."""
        engine = KleisliEngine()
        first = A.Cached(B.var("X"), key="k1")
        second = A.Cached(B.var("X"), key="k2")
        assert first == second  # the structural-equality trap
        assert engine.compiled_query(first) is not engine.compiled_query(second)
        assert engine.execute(first, {"X": CSet([1])}, optimize=False) == CSet([1])
        assert engine.execute(second, {"X": CSet([2])}, optimize=False) == CSet([2])
        interpreted = engine.execute(second, {"X": CSet([2])}, optimize=False,
                                     mode="interpret")
        assert interpreted == CSet([2])

    def test_equal_joins_with_different_block_sizes_do_not_share_a_query(self):
        """Join.__eq__ ignores block_size, but the compiled blocked join bakes
        it in — list-kind results depend on the blocking factor, so the memo
        must keep the two apart."""
        engine = KleisliEngine()
        outer = CList([Record({"id": 0}), Record({"id": 1})])
        inner = CList([Record({"v": 0}), Record({"v": 1})])
        body = B.singleton(B.record(o=B.project(B.var("o"), "id"),
                                    v=B.project(B.var("i"), "v")), "list")

        def join(block_size):
            return A.Join("blocked", "o", A.Const(outer), "i", A.Const(inner),
                          None, body, None, None, "list", block_size)

        assert join(1) == join(4)  # the structural-equality trap
        bindings = {}
        for block_size in (1, 4):
            compiled = engine.execute(join(block_size), bindings, optimize=False)
            interpreted = engine.execute(join(block_size), bindings,
                                         optimize=False, mode="interpret")
            assert compiled == interpreted, f"block_size={block_size}"

    def test_memo_distinguishes_literal_types(self):
        """Python's True == 1 == 1.0 makes Const(True)/Const(1) structurally
        equal; the memo must not hand one query the other's burned-in
        constant."""
        engine = KleisliEngine()
        assert A.Const(1) == A.Const(True)  # the equality trap
        assert engine.execute(A.Const(1), optimize=False) == 1
        value = engine.execute(A.Const(True), optimize=False)
        assert value is True
        assert engine.execute(A.Const(1.0), optimize=False) == 1.0
        assert isinstance(engine.execute(A.Const(1.0), optimize=False), float)

    def test_memo_hits_across_fresh_binder_names(self):
        """Re-desugaring the same query mints fresh variable names; the
        alpha-invariant fingerprint must still share one compiled query."""
        session = Session()
        session.bind("DB", [1, 2, 3], list_as="set")
        first = session.query(r"{x + 1 | \x <- DB}")
        second = session.query(r"{x + 1 | \x <- DB}")
        assert first.value == second.value
        assert first.optimized != second.optimized  # fresh binders differ
        assert len(session.engine._compiled_queries) == 1

    def test_compiled_closure_applies_under_the_callers_context(self):
        """A closure escaping one run must charge statistics to (and resolve
        drivers through) the context of the run that applies it — like an
        interpreter Closure."""
        make_closure = compile_term(
            B.lam("x", B.ext("y", B.singleton(B.var("y")), B.var("x"))))
        creation_context = EvalContext()
        closure = make_closure(context=creation_context)
        applying_context = EvalContext()
        value = Evaluator(applying_context).apply_function(closure, CSet([1, 2, 3]))
        assert value == CSet([1, 2, 3])
        assert applying_context.statistics.ext_iterations == 3
        assert creation_context.statistics.ext_iterations == 0

    def test_unknown_mode_is_rejected(self):
        with pytest.raises(EvaluationError):
            KleisliEngine(execution_mode="warp-speed")

    def test_stream_modes_yield_identical_elements(self):
        engine = KleisliEngine()
        term = A.Ext("x", B.singleton(B.prim("mul", B.var("x"), B.const(2)), "list"),
                     A.Const(CList([3, 1, 2])), kind="list")
        compiled = list(engine.stream(term, optimize=False, mode="compiled"))
        assert engine.last_eval_statistics.execution_mode == "compiled"
        interpreted = list(engine.stream(term, optimize=False, mode="interpret"))
        assert engine.last_eval_statistics.execution_mode == "interpreted"
        assert compiled == interpreted == [6, 2, 4]


class TestSessionModes:
    def test_session_query_mode_override(self):
        session = Session()
        session.bind("DB", [1, 2, 3], list_as="set")
        compiled = session.query(r"{x + 1 | \x <- DB}")
        assert session.engine.last_eval_statistics.execution_mode == "compiled"
        interpreted = session.query(r"{x + 1 | \x <- DB}", mode="interpret")
        assert session.engine.last_eval_statistics.execution_mode == "interpreted"
        assert compiled.value == interpreted.value == CSet([2, 3, 4])

    def test_interpret_only_session(self):
        session = Session(execution_mode="interpret")
        session.bind("DB", [1, 2], list_as="set")
        session.query(r"{x | \x <- DB}")
        assert session.engine.last_eval_statistics.execution_mode == "interpreted"

    def test_explicit_engine_honours_session_execution_mode(self):
        engine = KleisliEngine()
        session = Session(engine=engine, execution_mode="interpret")
        assert engine.execution_mode is ExecutionMode.INTERPRET
        engine2 = KleisliEngine(execution_mode="interpret")
        Session(engine=engine2)  # no mode given: the engine's own is kept
        assert engine2.execution_mode is ExecutionMode.INTERPRET
