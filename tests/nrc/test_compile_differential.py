"""Differential testing: the closure compiler against the reference interpreter.

Every hypothesis-generated NRC term is evaluated twice — once by the
tree-walking :class:`~repro.core.nrc.eval.Evaluator` and once through
:func:`~repro.core.nrc.compile.compile_term` — and the two runs must agree on

* the **value** (CPL structural equality), and
* ``EvalStatistics.elements_fetched`` (scan elements + loop iterations +
  fold iterations), which pins the compiled control flow to the
  interpreter's: same number of elements drawn from every source.

Three generators feed the harness:

* type-directed random NRC terms (scalars, records, variants, folds,
  comprehensions, let/lambda, caching) — built well-formed by construction;
* the property-suite's CPL query pool over generated publication data
  (reusing the strategies in ``tests/properties/test_properties.py``);
* the same queries after the monadic rewrite rules, so the compiler is also
  exercised on optimizer *output*.

Together the three families run 550+ examples; the acceptance bar for the
compiled backend is zero divergence.
"""

import importlib.util
import pathlib

from hypothesis import given, settings, strategies as st

from repro.core.errors import ReproError
from repro.core.nrc import ast as A
from repro.core.nrc import builder as B
from repro.core.nrc.compile import compile_term
from repro.core.nrc.eval import Environment, EvalContext, Evaluator
from repro.core.nrc.rules_monadic import monadic_rule_set
from repro.core.cpl.desugar import desugar_expression
from repro.core.cpl.parser import parse_expression
from repro.core.values import from_python

# -- reuse the property-suite strategies (tests are not a package) ------------

_PROPERTIES = pathlib.Path(__file__).resolve().parent.parent / "properties" / "test_properties.py"
_spec = importlib.util.spec_from_file_location("_property_strategies", _PROPERTIES)
_property_strategies = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(_property_strategies)

publication_rows = _property_strategies.publication_rows
QUERIES = _property_strategies.QUERIES


# -- the differential oracle --------------------------------------------------

def assert_modes_agree(expr: A.Expr, bindings: dict) -> None:
    """Evaluate ``expr`` under both modes; values and statistics must match."""
    environment = Environment(dict(bindings))

    interp_context = EvalContext()
    try:
        interp_value = Evaluator(interp_context).evaluate(expr, environment)
        interp_error = None
    except ReproError as error:
        interp_value, interp_error = None, error

    compiled = compile_term(expr)
    assert compiled.fully_compiled, (
        f"generated term fell back on {compiled.fallback_nodes}: {expr!r}")
    compiled_context = EvalContext()
    try:
        compiled_value = compiled(environment, compiled_context)
        compiled_error = None
    except ReproError as error:
        compiled_value, compiled_error = None, error

    if interp_error is not None or compiled_error is not None:
        assert interp_error is not None and compiled_error is not None, (
            f"only one mode failed: interpreter={interp_error!r}, "
            f"compiled={compiled_error!r} for {expr!r}")
        return

    assert interp_value == compiled_value, (
        f"value divergence on {expr!r}: {interp_value!r} != {compiled_value!r}")
    assert (interp_context.statistics.elements_fetched
            == compiled_context.statistics.elements_fetched), (
        f"elements_fetched divergence on {expr!r}: "
        f"{interp_context.statistics.as_dict()} != "
        f"{compiled_context.statistics.as_dict()}")


# -- type-directed random NRC terms ------------------------------------------
#
# Terms are generated well-formed by construction: integer-valued expressions,
# boolean conditions over them, and collections of integers / small records.
# Binders introduce numbered variables so inner draws can reference (and
# shadow) outer ones.

_KINDS = st.sampled_from(["set", "bag", "list"])


def _int_leaf(depth):
    options = [st.integers(min_value=-20, max_value=20).map(B.const)]
    if depth > 0:
        options.append(st.sampled_from([f"%n{i}" for i in range(depth)]).map(B.var))
    return st.one_of(options)


def _int_expr(depth, size):
    if size <= 0:
        return _int_leaf(depth)
    smaller = st.deferred(lambda: _int_expr(depth, size - 1))
    arith = st.tuples(st.sampled_from(["add", "sub", "mul"]), smaller, smaller) \
        .map(lambda t: B.prim(t[0], t[1], t[2]))
    conditional = st.tuples(_bool_expr(depth, size - 1), smaller, smaller) \
        .map(lambda t: B.if_then_else(t[0], t[1], t[2]))
    let_bound = st.tuples(smaller, st.deferred(lambda: _int_expr(depth + 1, size - 1))) \
        .map(lambda t: B.let(f"%n{depth}", t[0], t[1]))
    applied = st.tuples(st.deferred(lambda: _int_expr(depth + 1, size - 1)), smaller) \
        .map(lambda t: B.apply(B.lam(f"%n{depth}", t[0]), t[1]))
    aggregated = _int_collection(depth, size - 1).map(lambda c: B.prim("sum", c))
    counted = _int_collection(depth, size - 1).map(lambda c: B.prim("count", c))
    folded = st.tuples(_int_collection(depth, size - 1), _int_leaf(depth)).map(
        lambda t: B.fold(
            B.lam("%acc", B.lam("%item",
                                B.prim("add", B.var("%acc"), B.var("%item")))),
            t[1], t[0]))
    projected = _record_expr(depth, size - 1).map(lambda r: B.project(r, "a"))
    matched = st.tuples(st.sampled_from(["left", "right"]), smaller, smaller,
                        st.booleans()).map(_make_case)
    return st.one_of(_int_leaf(depth), arith, conditional, let_bound, applied,
                     aggregated, counted, folded, projected, matched)


def _make_case(parts):
    tag, payload, other, with_default = parts
    subject = B.variant(tag, payload)
    branches = [A.CaseBranch("left", "%v", B.var("%v"))]
    if with_default:
        return B.case_of(subject, branches,
                         default=("%w", other))
    branches.append(A.CaseBranch("right", "%v",
                                 B.prim("add", B.var("%v"), other)))
    return B.case_of(subject, branches)


def _bool_expr(depth, size):
    comparison = st.tuples(st.sampled_from(["eq", "lt", "le", "gt", "ge", "neq"]),
                           _int_leaf(depth), _int_leaf(depth)) \
        .map(lambda t: B.prim(t[0], t[1], t[2]))
    if size <= 0:
        return comparison
    smaller = st.deferred(lambda: _bool_expr(depth, size - 1))
    connective = st.tuples(st.sampled_from(["and", "or"]), smaller, smaller) \
        .map(lambda t: B.prim(t[0], t[1], t[2]))
    negated = smaller.map(B.not_)
    return st.one_of(comparison, connective, negated)


def _record_expr(depth, size):
    return st.tuples(_int_leaf(depth), _int_leaf(depth)) \
        .map(lambda t: B.record(a=t[0], b=t[1]))


def _int_collection(depth, size, kind="set"):
    literal = st.lists(st.integers(min_value=-10, max_value=10), max_size=5) \
        .map(lambda xs: _literal_collection(xs, kind))
    if size <= 0:
        return literal
    smaller = st.deferred(lambda: _int_collection(depth, size - 1, kind))
    unioned = st.tuples(smaller, smaller) \
        .map(lambda t: B.union(t[0], t[1], kind))
    comprehended = st.tuples(
        smaller,
        st.deferred(lambda: _int_expr(depth + 1, max(0, size - 2))),
        st.booleans(),
        st.deferred(lambda: _bool_expr(depth + 1, 0)),
    ).map(lambda t: B.ext(
        f"%n{depth}",
        B.if_then_else(t[3], B.singleton(t[1], kind), B.empty(kind))
        if t[2] else B.singleton(t[1], kind),
        t[0], kind))
    cached = smaller.map(A.Cached)
    cached_twice = cached.map(lambda c: B.union(c, c, kind))
    return st.one_of(literal, unioned, comprehended, cached_twice)


def _literal_collection(values, kind):
    lifted = from_python(list(values), list_as=kind)
    return A.Const(lifted)


nrc_terms = st.one_of(
    _int_expr(0, 3),
    _KINDS.flatmap(lambda kind: _int_collection(0, 3, kind)),
)


class TestRandomTermDifferential:
    @settings(max_examples=300, deadline=None)
    @given(nrc_terms)
    def test_compiled_agrees_with_interpreter(self, term):
        assert_modes_agree(term, {})


# -- CPL query pool over generated publication data ---------------------------

class TestQueryDifferential:
    @settings(max_examples=150, deadline=None)
    @given(publication_rows, st.sampled_from(QUERIES))
    def test_desugared_queries_agree(self, rows, query):
        db = from_python([dict(row, keywd=set(row["keywd"])) for row in rows],
                         list_as="set")
        nrc = desugar_expression(parse_expression(query))
        assert_modes_agree(nrc, {"DB": db})

    @settings(max_examples=100, deadline=None)
    @given(publication_rows, st.sampled_from(QUERIES))
    def test_optimized_queries_agree(self, rows, query):
        """The compiler must also be sound on rewrite-rule *output*."""
        db = from_python([dict(row, keywd=set(row["keywd"])) for row in rows],
                         list_as="set")
        nrc = monadic_rule_set().apply(desugar_expression(parse_expression(query)))
        assert_modes_agree(nrc, {"DB": db})


# -- fixed regression corners -------------------------------------------------

class TestDifferentialCorners:
    """Hand-picked shapes that stress compiler-specific machinery."""

    def test_escaping_closure_snapshots_loop_frame(self):
        # One closure per element escapes the loop; each must remember *its*
        # element, not the slot's final value.
        term = B.ext("x", B.singleton(B.lam("y", B.var("x"))),
                     A.Const(from_python([1, 2, 3], list_as="set")))
        environment = Environment({})
        compiled_closures = compile_term(term)(environment, EvalContext())
        seen = sorted(closure(None) for closure in compiled_closures)
        assert seen == [1, 2, 3]

    def test_shadowing_binders(self):
        term = B.let("x", B.const(1),
                     B.let("x", B.const(2),
                           B.prim("add", B.var("x"), B.const(10))))
        assert_modes_agree(term, {})

    def test_unbound_variable_in_dead_branch_is_not_reached(self):
        term = B.if_then_else(B.const(True), B.const(1), B.var("missing"))
        assert_modes_agree(term, {})

    def test_unbound_variable_in_live_branch_raises_in_both_modes(self):
        term = B.if_then_else(B.const(False), B.const(1), B.var("missing"))
        assert_modes_agree(term, {})

    def test_unknown_primitive_raises_lazily(self):
        term = B.if_then_else(B.const(True), B.const(1),
                              B.prim("no_such_primitive", B.const(1)))
        assert_modes_agree(term, {})

    def test_join_nodes_agree(self):
        from repro.core.optimizer.joins import make_join_rule_set
        from repro.core.values import CSet, Record

        outer = CSet([Record({"id": i, "s": f"o{i}"}) for i in range(40)])
        inner = CSet([Record({"ref": i % 13, "v": i}) for i in range(40)])
        condition = B.eq(B.project(B.var("o"), "id"), B.project(B.var("i"), "ref"))
        head = B.record(s=B.project(B.var("o"), "s"), v=B.project(B.var("i"), "v"))
        nested = B.ext("o", B.ext("i", B.if_then_else(
            condition, B.singleton(head), B.empty()), B.var("INNER")), B.var("OUTER"))
        joined = make_join_rule_set(minimum_inner_size=0).apply(nested)
        assert isinstance(joined, A.Join)
        bindings = {"OUTER": outer, "INNER": inner}
        assert_modes_agree(nested, bindings)
        assert_modes_agree(joined, bindings)
        blocked = A.Join("blocked", joined.outer_var, joined.outer,
                         joined.inner_var, joined.inner, condition, joined.body,
                         None, None, joined.kind, 16)
        assert_modes_agree(blocked, bindings)
