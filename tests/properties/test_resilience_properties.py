"""The resilience layer's equivalence property.

The contract the whole PR rests on, stated as a property: **for any fault
schedule that eventually lets every request through, a run under the
resilience layer is bit-identical to the fault-free run** — same values,
same order, same ``elements_fetched`` accounting — across all three
lowerings (eager, per-element streamed, chunked streamed).  Faults may be
dead sources (pre-open), mid-stream cursor deaths at arbitrary depths, or
any mix; recovery must also never leak a driver cursor.

Hypothesis generates the schedules; the budget argument below guarantees
"eventually succeeds" by construction, so the property is total:

* pre-open fault ordinals and mid-stream fault ordinals are disjoint sets
  drawn from a bounded range;
* every faulty cursor dies only after producing at least one element, so
  each recovery makes progress and resets the consecutive-failure budget;
* the retry budget (``max_attempts``) exceeds the longest possible run of
  consecutive pre-open faults in the schedule.
"""

import sys
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import TransientDriverError
from repro.core.nrc import ast as A
from repro.core.nrc import builder as B
from repro.kleisli.engine import KleisliEngine
from repro.kleisli.resilience import RetryPolicy

# The shared fault-injection fixtures live in tests/kleisli (test dirs are
# not packages; resolved here rather than via a conftest so the module name
# "conftest" keeps resolving to tests/server's for the suites that import
# helpers from it).
_KLEISLI_TESTS = str(Path(__file__).resolve().parent.parent / "kleisli")
if _KLEISLI_TESTS not in sys.path:
    sys.path.insert(0, _KLEISLI_TESTS)

from fault_drivers import FaultInjectingDriver  # noqa: E402

LOWERINGS = ["eager", "stream", "chunked"]

# A schedule: disjoint pre-open / mid-stream fault ordinals plus a death
# depth (>= 1, so every recovery makes progress) for each mid-stream one.
_ordinals = st.sets(st.integers(min_value=1, max_value=12), max_size=4)


@st.composite
def fault_schedules(draw):
    fail_on = draw(_ordinals)
    midstream = draw(_ordinals.filter(lambda s: not (s & fail_on)))
    depths = {ordinal: draw(st.integers(min_value=1, max_value=7))
              for ordinal in midstream}
    count = draw(st.integers(min_value=1, max_value=9))
    return {"fail_on": fail_on, "midstream_fail_on": midstream,
            "depths": depths, "count": count}


def _term(count):
    body = B.singleton(B.prim("mul", B.var("x"), B.const(3)), "list")
    return B.ext("x", body,
                 A.Scan("Faulty", {"table": "t", "count": count},
                        kind="list"), kind="list")


def _run(engine, term, lowering):
    if lowering == "eager":
        values = list(engine.execute(term, optimize=False))
    else:
        values = list(engine.stream(term, optimize=False,
                                    chunked=(lowering == "chunked")))
    return values, engine.last_eval_statistics.elements_fetched


def _engine(schedule, resilient):
    engine = KleisliEngine()
    driver = engine.register_driver(FaultInjectingDriver(
        fail_on=schedule["fail_on"] if resilient else (),
        midstream_fail_on=schedule["midstream_fail_on"] if resilient else (),
        midstream_after=schedule["depths"],
        fault_type=TransientDriverError))
    if resilient:
        # max_attempts exceeds any possible consecutive-fault run: every
        # schedule in the domain eventually succeeds by construction.
        engine.configure_resilience(
            "Faulty",
            RetryPolicy(max_attempts=len(schedule["fail_on"])
                        + len(schedule["midstream_fail_on"]) + 2,
                        backoff_base=0.0))
    return engine, driver


class TestRecoveryEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(schedule=fault_schedules(), lowering=st.sampled_from(LOWERINGS))
    def test_eventually_succeeding_schedules_are_invisible(
            self, schedule, lowering):
        term = _term(schedule["count"])
        clean_engine, _clean = _engine(schedule, resilient=False)
        expected = _run(clean_engine, term, lowering)

        engine, driver = _engine(schedule, resilient=True)
        got = _run(engine, term, lowering)

        assert got == expected, (
            f"schedule {schedule!r} under {lowering}: recovered run "
            f"diverged (values, elements_fetched) {got!r} != {expected!r}")
        assert driver.open_cursors == 0, \
            f"schedule {schedule!r} leaked a cursor"

    @settings(max_examples=25, deadline=None)
    @given(schedule=fault_schedules())
    def test_lowerings_agree_with_each_other_under_faults(self, schedule):
        term = _term(schedule["count"])
        runs = []
        for lowering in LOWERINGS:
            engine, _driver = _engine(schedule, resilient=True)
            runs.append(_run(engine, term, lowering))
        assert runs[0] == runs[1] == runs[2], (
            f"schedule {schedule!r}: lowerings disagree: {runs!r}")
