"""Property tests for the planner's invariants.

Three contracts the planner subsystem rests on:

* **Filter monotonicity** — wrapping any collection expression in a filter
  never *grows* its cardinality estimate (selectivities are <= 1), so plan
  choices degrade monotonically with selectivity instead of oscillating;
* **Totality** — the estimator returns a finite non-negative number for
  every expression shape it can meet (unknown nodes fall back to the
  registry default, they never raise);
* **Graceful degradation** — with zero statistics and no feedback the
  chooser returns exactly the historical default knobs, whatever the query
  looks like (the bit-for-bit contract the differential harness pins at
  the engine level).
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.nrc import ast as A
from repro.core.nrc import builder as B
from repro.core.planner import CardinalityEstimator, PhysicalPlan, QueryPlanner
from repro.core.values import CList, iter_collection
from repro.kleisli.statistics import SourceStatisticsRegistry

KIND = "list"


def _const_collection(size):
    return A.Const(CList(range(size)))


def _scan(driver, table):
    return A.Scan(driver, {"table": table, "count": 4}, kind=KIND)


def _map_wrap(expr, multiplier):
    return B.ext("m", B.singleton(B.prim("mul", B.var("m"),
                                         B.const(multiplier)), KIND),
                 expr, kind=KIND)


def _filter_wrap(expr, threshold):
    return B.ext("f",
                 B.if_then_else(B.prim("gt", B.var("f"), B.const(threshold)),
                                B.singleton(B.var("f"), KIND),
                                B.empty(KIND)),
                 expr, kind=KIND)


def _collection_exprs():
    """Recursive collection-expression strategy: Const/Scan leaves under
    map, filter and union combinators."""
    leaves = st.one_of(
        st.integers(min_value=0, max_value=40).map(_const_collection),
        st.tuples(st.sampled_from(["gdb", "genbank", "acedb"]),
                  st.sampled_from(["locus", "sequence"])).map(
                      lambda pair: _scan(*pair)),
        st.just(A.Empty(KIND)),
        st.just(B.var("FREE")),
    )

    def extend(children):
        return st.one_of(
            st.tuples(children,
                      st.integers(min_value=0, max_value=9)).map(
                          lambda pair: _map_wrap(*pair)),
            st.tuples(children,
                      st.integers(min_value=0, max_value=9)).map(
                          lambda pair: _filter_wrap(*pair)),
            st.tuples(children, children).map(
                lambda pair: A.Union(pair[0], pair[1], KIND)),
        )

    return st.recursive(leaves, extend, max_leaves=8)


def _estimator():
    return CardinalityEstimator(SourceStatisticsRegistry())


@settings(max_examples=120, deadline=None)
@given(expr=_collection_exprs(),
       threshold=st.integers(min_value=-5, max_value=50))
def test_filter_monotonicity(expr, threshold):
    """estimate(filter(e)) <= estimate(e) for every shape and threshold."""
    estimator = _estimator()
    base = estimator.estimate(expr)
    filtered = estimator.estimate(_filter_wrap(expr, threshold))
    assert filtered <= base + 1e-9, (filtered, base)


@settings(max_examples=120, deadline=None)
@given(expr=_collection_exprs())
def test_estimates_are_finite_and_non_negative(expr):
    estimate = _estimator().estimate(expr)
    assert estimate >= 0.0
    assert math.isfinite(estimate)


@settings(max_examples=120, deadline=None)
@given(expr=_collection_exprs())
def test_stacked_filters_keep_shrinking(expr):
    """Monotonicity composes: each added filter layer can only shrink."""
    estimator = _estimator()
    previous = estimator.estimate(expr)
    current = expr
    for threshold in (0, 3, 7):
        current = _filter_wrap(current, threshold)
        estimate = estimator.estimate(current)
        assert estimate <= previous + 1e-9
        previous = estimate


@settings(max_examples=80, deadline=None)
@given(expr=_collection_exprs())
def test_chooser_degrades_to_default_knobs_with_zero_statistics(expr):
    """With an empty registry and no feedback, every plan is exactly the
    historical default knob set — the planner only ever adds knowledge."""
    planner = QueryPlanner(SourceStatisticsRegistry(),
                           default_block_size=256, parallel_max_workers=5)
    plan = planner.plan_for(expr)
    assert plan == PhysicalPlan.default(256)
    assert plan.is_default
    # The compile-time hooks stay silent too — except for a *literal* source
    # whose length proves the loop too tiny to overlap: a literal's length
    # is exact knowledge, not a statistic (and with zero statistics no
    # driver is remote, so the parallel rule could not have fired anyway).
    if isinstance(expr, A.Ext):
        workers = planner.parallel_workers(expr)
        source = expr.source
        if isinstance(source, A.Const) and \
                len(list(iter_collection(source.value))) < 2:
            assert workers == 0
        else:
            assert workers is None
