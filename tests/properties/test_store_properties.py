"""Property tests for the plan-store journal codec.

Two contracts the durability layer rests on:

* **Round-trip identity** — ``decode(encode(x)) == x`` exactly, for every
  value shape a term fingerprint or observation state can contain (nested
  tuples, frozensets, bytes, the JSON scalars, and bool/int distinctness —
  JSON would silently conflate several of these without the tagged
  encoding);
* **Framing paranoia** — for an arbitrary journal of records arbitrarily
  truncated, the reader never raises and every record it returns is a
  *prefix* of what was written, byte-for-byte: corruption can lose
  records, never mint them.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.planner.store import (
    _decode_value,
    _encode_value,
    encode_record,
    read_journal,
)

# The leaf types term fingerprints and observation states are built from.
scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-2**53, max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=20),
    st.binary(max_size=20),
)

# Nested containers: tuples anywhere, frozensets of hashable members.
fingerprint_values = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.tuples(children),
        st.tuples(children, children),
        st.tuples(children, children, children),
        st.lists(children, max_size=3),
        st.frozensets(
            st.one_of(scalars, st.tuples(scalars, scalars)), max_size=4),
    ),
    max_leaves=25,
)


@given(value=fingerprint_values)
@settings(max_examples=200, deadline=None)
def test_value_codec_roundtrip_identity(value):
    encoded = _encode_value(value)
    # Must survive an actual JSON hop (that's what hits the disk).
    decoded = _decode_value(json.loads(json.dumps(encoded)))
    assert decoded == value
    assert type(decoded) is type(value)


observation_states = st.fixed_dictionaries({
    "cardinality": st.floats(min_value=0, max_value=1e12,
                             allow_nan=False, allow_infinity=False),
    "runs": st.integers(min_value=0, max_value=10_000),
    "stages": st.dictionaries(
        st.text(min_size=1, max_size=12),
        st.lists(st.floats(min_value=0, max_value=1e9, allow_nan=False,
                           allow_infinity=False),
                 min_size=3, max_size=3),
        max_size=4),
})


@given(state=observation_states, ts=st.floats(min_value=0, max_value=4e9))
@settings(max_examples=100, deadline=None)
def test_feedback_record_roundtrip(state, ts):
    record = {"kind": "feedback", "ts": ts,
              "key": _encode_value(("Ext", ("Var", 0))), "obs": state}
    frame = encode_record(record)
    records, skipped = read_journal(frame)
    assert skipped == 0
    assert records == [json.loads(json.dumps(record))]


@given(
    states=st.lists(observation_states, min_size=1, max_size=5),
    cut=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=100, deadline=None)
def test_truncated_journal_yields_byte_exact_prefix(states, cut):
    frames = [encode_record({"kind": "feedback", "ts": float(i),
                             "key": ["t", "Ext", i], "obs": state})
              for i, state in enumerate(states)]
    data = b"".join(frames)
    truncated = data[:min(cut, len(data))]
    records, skipped = read_journal(truncated)  # must never raise
    # Prefix property: the recovered records are exactly the fully-
    # contained frames, in order — nothing invented, nothing reordered.
    whole, used = [], 0
    for i, frame in enumerate(frames):
        if used + len(frame) <= len(truncated):
            whole.append(i)
            used += len(frame)
        else:
            break
    assert [record["key"][2] for record in records] == whole
    assert skipped == len(truncated) - used
