"""Property tests for the observability primitives (hypothesis).

Histogram invariants:

* **Monotone bounds** — every exponential ladder is strictly increasing,
  whatever (start, growth, count) it is built from;
* **Count conservation** — after N observations the bucket cells sum to N
  and ``sum`` equals the observed total (no observation is ever lost or
  double-counted);
* **Merge associativity** — with identical bounds, ``(a ⊕ b) ⊕ c`` and
  ``a ⊕ (b ⊕ c)`` produce identical cells (the fan-in guarantee the
  fixed-bucket design exists for).

Trace invariants, over arbitrary begin/end/fault interleavings:

* **Every opened span is closed** — including spans abandoned by a fault
  unwinding several levels at once — so ``open_spans()`` returns to zero;
* **Proper nesting** — every recorded child's interval lies inside its
  parent's (driven by a monotone fake clock);
* **Bounded span count** — the tree never holds more than ``max_spans``
  real spans, however many begins the run issued.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import Histogram, exponential_buckets
from repro.obs.trace import QueryTrace


# -- histograms ----------------------------------------------------------------

@given(start=st.floats(min_value=1e-6, max_value=1e6,
                       allow_nan=False, allow_infinity=False),
       growth=st.floats(min_value=1.0001, max_value=16.0),
       count=st.integers(min_value=1, max_value=30))
def test_bucket_ladders_are_strictly_monotone(start, growth, count):
    bounds = exponential_buckets(start, growth, count)
    assert len(bounds) == count
    assert all(lo < hi for lo, hi in zip(bounds, bounds[1:]))
    assert all(math.isfinite(b) and b > 0 for b in bounds)


_VALUES = st.lists(st.floats(min_value=0.0, max_value=1e9,
                             allow_nan=False, allow_infinity=False),
                   max_size=80)


@given(values=_VALUES)
def test_observation_count_is_conserved(values):
    histogram = Histogram("h", exponential_buckets(0.001, 2.0, 12))
    for value in values:
        histogram.observe(value)
    snap = histogram.snapshot()
    assert sum(snap["counts"]) == len(values) == snap["count"]
    assert snap["sum"] == sum(values)


@given(a=_VALUES, b=_VALUES, c=_VALUES)
def test_merge_is_associative_and_exact(a, b, c):
    bounds = exponential_buckets(0.01, 3.0, 8)

    def hist(values):
        h = Histogram("h", bounds)
        for value in values:
            h.observe(value)
        return h

    left = hist(a)           # (a ⊕ b) ⊕ c
    left.merge(hist(b))
    left.merge(hist(c))
    bc = hist(b)             # a ⊕ (b ⊕ c)
    bc.merge(hist(c))
    right = hist(a)
    right.merge(bc)
    left_snap, right_snap = left.snapshot(), right.snapshot()
    # bucket counts merge exactly associatively; the float sum only up to
    # addition-order rounding
    assert left_snap["counts"] == right_snap["counts"]
    assert left_snap["count"] == right_snap["count"]
    assert math.isclose(left_snap["sum"], right_snap["sum"],
                        rel_tol=1e-9, abs_tol=1e-9)
    assert left.count == len(a) + len(b) + len(c)


# -- traces --------------------------------------------------------------------

class _Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        self.now += 1.0     # strictly monotone: nesting is checkable
        return self.now


# op encoding: 0 = begin, 1 = end the innermost span, 2 = fault-unwind to a
# random depth (ending an OUTER span while inner ones are still open),
# 3 = zero-duration event
_OPS = st.lists(st.tuples(st.integers(min_value=0, max_value=3),
                          st.integers(min_value=0, max_value=5)),
                max_size=60)


def _drive(trace, ops):
    stack = []
    for op, arg in ops:
        if op == 0:
            stack.append(trace.begin(f"s{len(stack)}", "scope"))
        elif op == 1 and stack:
            trace.end(stack.pop())
        elif op == 2 and stack:
            index = arg % len(stack)       # unwind to an arbitrary depth
            span = stack[index]
            del stack[index:]
            trace.end(span, status="error")
        elif op == 3:
            trace.event("retry", attempt=arg)
    while stack:                           # the run's finally-blocks
        trace.end(stack.pop())
    trace.finish()


def _walk(span):
    yield span
    for child in span.children:
        yield from _walk(child)


@given(ops=_OPS, max_spans=st.integers(min_value=1, max_value=24))
@settings(max_examples=200)
def test_every_opened_span_closes_even_on_fault_paths(ops, max_spans):
    trace = QueryTrace("q", clock=_Clock(), max_spans=max_spans)
    _drive(trace, ops)
    assert trace.open_spans() == 0
    assert trace.finished
    for span in _walk(trace.root):
        assert span.ended is not None


@given(ops=_OPS)
@settings(max_examples=200)
def test_recorded_spans_nest_properly(ops):
    trace = QueryTrace("q", clock=_Clock())
    _drive(trace, ops)
    for parent in _walk(trace.root):
        for child in parent.children:
            assert parent.started < child.started
            assert child.ended <= parent.ended


@given(ops=_OPS, max_spans=st.integers(min_value=1, max_value=8))
@settings(max_examples=200)
def test_span_count_is_bounded_and_drops_are_accounted(ops, max_spans):
    trace = QueryTrace("q", clock=_Clock(), max_spans=max_spans)
    _drive(trace, ops)
    assert trace.span_count() <= max_spans
    begins = sum(1 for op, _ in ops if op in (0, 3))
    # every begin either became a real span or was counted dropped
    assert (trace.span_count() - 1) + trace.dropped == begins
