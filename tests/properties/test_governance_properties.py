"""Property tests for query-lifecycle governance (hypothesis).

The cancellation contract, stated as properties over *arbitrary* injection
points rather than the hand-picked offsets of the example tests:

* **No cursor leaks** — wherever cancellation lands (before the run, at any
  pull offset, after exhaustion), every driver cursor the run opened is
  released: ``EvalScope.live_count()`` returns to zero.
* **No partial value without a typed error** — a governed run either
  completes with exactly the ungoverned result, or raises
  :class:`~repro.core.errors.QueryCancelledError`; it never returns a
  truncated result silently.
* **Prefix property** — whatever a cancelled stream yielded before the
  typed error is a *prefix* of the ungoverned element sequence, in all
  three lowerings (eager, per-element, chunked) and both execution modes.
* **Books balance** — each cancelled run counts exactly one cancellation.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import QueryCancelledError
from repro.core.nrc import ast as A
from repro.core.nrc import builder as B
from repro.core.nrc.eval import EvalScope
from repro.core.values import iter_collection
from repro.kleisli.drivers.base import Driver
from repro.kleisli.engine import ExecutionMode, KleisliEngine
from repro.kleisli.governance import CancellationToken

COUNT = 40


class RangeDriver(Driver):
    def __init__(self, name="ranges"):
        super().__init__(name)

    def _execute(self, request):
        base = int(request.get("base", 0))
        count = int(request.get("count", 5))

        def cursor():
            for i in range(base, base + count):
                yield i

        return cursor()


def _scan(count=COUNT, base=0):
    return A.Scan("ranges", {"table": "t", "count": count, "base": base},
                  args={}, kind="list")


def _shapes():
    """(label, expr) pairs spanning the lowerings' stage kinds: a mapping
    stage, a set-kind dedup stage, and a nested body scan (the shape whose
    body opens a *second* cursor per outer element — the leak-prone one)."""
    mapped = B.ext("x", B.singleton(B.prim("mul", B.var("x"), B.const(3)),
                                    "list"), _scan(), kind="list")
    dedup = B.ext("x", B.singleton(B.prim("mod", B.var("x"), B.const(7)),
                                   "set"), _scan(), kind="set")
    nested_body = B.ext("y", B.singleton(B.prim("add", B.var("x"),
                                                B.var("y")), "list"),
                        _scan(count=3, base=100), kind="list")
    nested = B.ext("x", nested_body, _scan(count=12), kind="list")
    return [("mapped", mapped), ("dedup", dedup), ("nested", nested)]


SHAPES = _shapes()

LOWERINGS = [
    ("eager-compiled", ExecutionMode.COMPILED, None),
    ("eager-interpreted", ExecutionMode.INTERPRET, None),
    ("per-element", ExecutionMode.COMPILED, False),
    ("chunked", ExecutionMode.COMPILED, True),
    ("interpreted-stream", ExecutionMode.INTERPRET, False),
]


def _engine():
    engine = KleisliEngine()
    engine.register_driver(RangeDriver())
    return engine


_BASELINES = {}


def _baseline(shape_index):
    """The ungoverned element sequence (per-element stream is the
    reference order for every lowering)."""
    if shape_index not in _BASELINES:
        engine = _engine()
        _BASELINES[shape_index] = list(
            engine.stream(SHAPES[shape_index][1], chunked=False))
    return _BASELINES[shape_index]


@settings(max_examples=60, deadline=None)
@given(
    shape_index=st.integers(min_value=0, max_value=len(SHAPES) - 1),
    lowering=st.integers(min_value=0, max_value=len(LOWERINGS) - 1),
    cancel_at=st.integers(min_value=0, max_value=COUNT + 5),
)
def test_cancellation_never_leaks_cursors_or_yields_partials(
        shape_index, lowering, cancel_at):
    label, expr = SHAPES[shape_index]
    _, mode, chunked = LOWERINGS[lowering]
    expected = _baseline(shape_index)
    engine = _engine()
    token = CancellationToken()
    got = []
    error = None

    if chunked is None:
        # Eager: cancellation before the run (offset 0) or not at all —
        # there is no mid-drain for execute(); offset > 0 degenerates to
        # a completed run, pinning cancel-after-completion is a no-op.
        if cancel_at == 0:
            token.cancel("property: before eager run")
        try:
            result = engine.execute(expr, mode=mode, cancellation=token)
            got = list(iter_collection(result))
        except QueryCancelledError as caught:
            error = caught
    else:
        stream = engine.stream(expr, mode=mode, chunked=chunked,
                               cancellation=token)
        if cancel_at == 0:
            token.cancel("property: before first pull")
        try:
            for value in stream:
                got.append(value)
                if len(got) == cancel_at:
                    token.cancel(f"property: at offset {cancel_at}")
        except QueryCancelledError as caught:
            error = caught

    # No cursor leaks, wherever the cancel landed.
    assert EvalScope.live_count() == 0, \
        f"leaked cursors ({label}, cancel_at={cancel_at})"

    if error is None:
        # No typed error → the run must have completed with the full,
        # untruncated result (the cancel arrived too late to matter).
        assert got == expected
        assert engine.governor.snapshot()["cancellations"] == 0
    else:
        # Typed error → whatever was yielded is a prefix of the ungoverned
        # sequence (cooperative checkpoints may let buffered chunk
        # elements flush, but never reorder or fabricate elements).
        assert got == expected[:len(got)]
        assert len(got) < len(expected) or chunked is None
        assert engine.governor.snapshot()["cancellations"] == 1


@settings(max_examples=25, deadline=None)
@given(
    shape_index=st.integers(min_value=0, max_value=len(SHAPES) - 1),
    lowering=st.integers(min_value=0, max_value=len(LOWERINGS) - 1),
)
def test_ungoverned_token_free_runs_are_unaffected(shape_index, lowering):
    """Zero-governance pin, property-shaped: a live (never cancelled) token
    changes nothing — values match the ungoverned baseline exactly."""
    label, expr = SHAPES[shape_index]
    _, mode, chunked = LOWERINGS[lowering]
    expected = _baseline(shape_index)
    engine = _engine()
    token = CancellationToken()
    if chunked is None:
        got = list(iter_collection(
            engine.execute(expr, mode=mode, cancellation=token)))
    else:
        got = list(engine.stream(expr, mode=mode, chunked=chunked,
                                 cancellation=token))
    assert got == expected
    assert EvalScope.live_count() == 0
    books = engine.governor.snapshot()
    assert all(count == 0 for count in books.values())
