"""Property-based tests (hypothesis) on the core data structures and invariants.

Three families of invariants:

* value-model laws — set/bag/list algebra, conversion round-trips;
* language invariants — the optimizer never changes the meaning of a query,
  and desugaring + evaluation respects comprehension semantics;
* format round-trips — FASTA / tabular / ASN.1 text / .ace survive a
  write-then-read cycle.
"""

import string

import pytest
from hypothesis import given, settings, strategies as st

from repro.ace import dump_ace, parse_ace
from repro.ace.model import AceObject
from repro.asn1 import parse_value, print_value
from repro.core import types as T
from repro.core.cpl.desugar import desugar_expression
from repro.core.cpl.parser import parse_expression
from repro.core.nrc.eval import evaluate
from repro.core.nrc.rules_monadic import monadic_rule_set
from repro.core.records import Record, cursor_project, plain_project
from repro.core.values import CBag, CList, CSet, from_python, infer_type, to_python
from repro.formats.fasta import FastaRecord, read_fasta, write_fasta
from repro.formats.tabular import read_tabular, write_tabular

# --------------------------------------------------------------------------
# Strategies
# --------------------------------------------------------------------------

scalars = st.one_of(
    st.integers(min_value=-10**6, max_value=10**6),
    st.booleans(),
    st.text(alphabet=string.ascii_letters + string.digits + " _-", max_size=12),
)

field_names = st.sampled_from(["title", "year", "locus", "keywd", "organism", "score"])


def python_data(max_depth=3):
    return st.recursive(
        scalars,
        lambda children: st.one_of(
            st.lists(children, max_size=4),
            st.dictionaries(field_names, children, max_size=4),
        ),
        max_leaves=12,
    )


publication_rows = st.lists(
    st.fixed_dictionaries({
        "title": st.text(alphabet=string.ascii_letters + " ", min_size=1, max_size=15),
        "year": st.integers(min_value=1980, max_value=1995),
        "keywd": st.lists(st.sampled_from(["Exons", "Mapping", "Sequence", "Genes"]),
                          min_size=0, max_size=3).map(set),
    }),
    min_size=0, max_size=8,
)

int_sets = st.lists(st.integers(min_value=-50, max_value=50), max_size=12)


# --------------------------------------------------------------------------
# Value-model laws
# --------------------------------------------------------------------------

class TestCollectionLaws:
    @given(int_sets)
    def test_set_idempotent_union(self, items):
        value = CSet(items)
        assert value.union(value) == value

    @given(int_sets, int_sets)
    def test_set_union_is_commutative(self, left, right):
        assert CSet(left).union(CSet(right)) == CSet(right).union(CSet(left))

    @given(int_sets, int_sets, int_sets)
    def test_union_is_associative_for_each_kind(self, a, b, c):
        for cls in (CSet, CBag, CList):
            x, y, z = cls(a), cls(b), cls(c)
            assert x.union(y).union(z) == x.union(y.union(z))

    @given(int_sets)
    def test_bag_preserves_cardinality_under_union(self, items):
        bag = CBag(items)
        assert len(bag.union(bag)) == 2 * len(items)

    @given(int_sets)
    def test_equal_values_have_equal_hashes(self, items):
        assert hash(CSet(items)) == hash(CSet(list(reversed(items))))
        assert hash(CBag(items)) == hash(CBag(list(reversed(items))))

    @given(python_data())
    def test_from_python_to_python_roundtrip(self, data):
        lifted = from_python(data)
        assert from_python(to_python(lifted)) == lifted

    @given(python_data())
    def test_infer_type_always_produces_a_type(self, data):
        assert isinstance(infer_type(from_python(data)), T.Type)

    @given(st.dictionaries(field_names, scalars, min_size=1, max_size=5))
    def test_record_projection_agrees_with_dict(self, fields):
        record = Record(fields)
        for label, value in fields.items():
            assert record.project(label) == value
        assert record.to_dict() == fields


class TestRemyProjectionProperty:
    @given(st.lists(st.fixed_dictionaries({"a": scalars, "b": scalars}), max_size=30))
    def test_cursor_equals_plain_projection(self, rows):
        records = [Record(row) for row in rows]
        assert cursor_project(records, "a") == plain_project(records, "a")


# --------------------------------------------------------------------------
# Language invariants
# --------------------------------------------------------------------------

QUERIES = [
    r"{p.title | \p <- DB}",
    r"{p | \p <- DB, p.year > 1988}",
    r"{[t = p.title, y = p.year] | \p <- DB, p.year >= 1985, p.year <= 1993}",
    r"{[title = t, keyword = k] | [title = \t, keywd = \kk, ...] <- DB, \k <- kk}",
    r"{[keyword = k, titles = {x.title | \x <- DB, k <- x.keywd}] | \y <- DB, \k <- y.keywd}",
    r"{[t = p.title, n = count(p.keywd)] | \p <- DB}",
]


class TestOptimizationPreservesSemantics:
    @settings(max_examples=30, deadline=None)
    @given(publication_rows, st.sampled_from(QUERIES))
    def test_monadic_normalisation_preserves_value(self, rows, query):
        db = from_python([dict(row, keywd=set(row["keywd"])) for row in rows], list_as="set")
        nrc = desugar_expression(parse_expression(query))
        optimized = monadic_rule_set().apply(nrc)
        assert evaluate(nrc, {"DB": db}) == evaluate(optimized, {"DB": db})

    @settings(max_examples=20, deadline=None)
    @given(publication_rows)
    def test_flatten_then_group_is_consistent(self, rows):
        """Grouping the flattened keyword relation recovers each publication's keywords."""
        db = from_python([dict(row, keywd=set(row["keywd"])) for row in rows], list_as="set")
        flat = evaluate(desugar_expression(parse_expression(
            r"{[title = t, keyword = k] | [title = \t, keywd = \kk, ...] <- DB, \k <- kk}")),
            {"DB": db})
        for row in db:
            keywords = {pair.project("keyword") for pair in flat
                        if pair.project("title") == row.project("title")}
            # Titles may repeat across generated rows; grouping can only widen the set.
            assert set(row.project("keywd")) <= keywords

    @settings(max_examples=25, deadline=None)
    @given(int_sets, int_sets)
    def test_horizontal_fusion_on_arbitrary_sets(self, left, right):
        from repro.core.nrc import builder as B

        expr = B.union(
            B.ext("x", B.singleton(B.prim("add", B.var("x"), B.const(1))), B.var("S")),
            B.ext("x", B.singleton(B.prim("mul", B.var("x"), B.const(2))), B.var("S")))
        optimized = monadic_rule_set().apply(expr)
        data = {"S": CSet(left + right)}
        assert evaluate(expr, data) == evaluate(optimized, data)


# --------------------------------------------------------------------------
# Format round-trips
# --------------------------------------------------------------------------

dna = st.text(alphabet="ACGT", min_size=1, max_size=120)
identifiers = st.text(alphabet=string.ascii_letters + string.digits, min_size=1, max_size=10)


class TestFormatRoundtrips:
    @given(st.lists(st.tuples(identifiers, dna), min_size=1, max_size=5))
    def test_fasta_roundtrip(self, entries):
        records = [FastaRecord(identifier, "desc", sequence)
                   for identifier, sequence in entries]
        assert read_fasta(write_fasta(records)) == records

    @given(st.lists(st.fixed_dictionaries({"locus": identifiers, "band": identifiers}),
                    min_size=1, max_size=6))
    def test_tabular_roundtrip(self, rows):
        records = [Record(row) for row in rows]
        assert read_tabular(write_tabular(records)) == CSet(records)

    @given(st.fixed_dictionaries({
        "accession": identifiers,
        "length": st.integers(min_value=0, max_value=10**6),
        "organism": st.text(alphabet=string.ascii_letters + " ", max_size=20),
        "keywd": st.lists(identifiers, max_size=4).map(set),
    }))
    def test_asn1_value_text_roundtrip(self, data):
        value = from_python(data)
        ty = infer_type(value)
        assert parse_value(print_value(value), ty) == value

    @given(st.lists(st.tuples(identifiers, st.sampled_from(["Remark", "Length", "Library"]),
                              st.one_of(identifiers, st.integers(0, 1000))),
                    min_size=1, max_size=8))
    def test_ace_roundtrip(self, triples):
        objects = {}
        for name, tag, value in triples:
            obj = objects.setdefault(name, AceObject("Clone", name))
            obj.add(tag, value)
        text = dump_ace(list(objects.values()))
        reparsed = {obj.name: obj for obj in parse_ace(text)}
        assert set(reparsed) == set(objects)
        for name, obj in objects.items():
            for tag in obj.tag_names():
                assert reparsed[name].values(tag) == obj.values(tag)
