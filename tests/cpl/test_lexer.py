"""Tests for the CPL lexer."""

import pytest

from repro.core.cpl.lexer import Token, tokenize
from repro.core.errors import CPLSyntaxError


def kinds(text):
    return [token.kind for token in tokenize(text)][:-1]  # drop EOF


def values(text):
    return [token.value for token in tokenize(text)][:-1]


class TestBasicTokens:
    def test_integer_and_float(self):
        tokens = tokenize("42 3.14 1e6")
        assert [t.kind for t in tokens[:3]] == ["INT", "FLOAT", "FLOAT"]

    def test_string_with_escapes(self):
        token = tokenize(r'"a \"quoted\" string\n"')[0]
        assert token.kind == "STRING"
        assert token.value == 'a "quoted" string\n'

    def test_unterminated_string_raises(self):
        with pytest.raises(CPLSyntaxError):
            tokenize('"never closed')

    def test_keywords_vs_identifiers(self):
        tokens = tokenize("define iffy if then else true false")
        assert [t.kind for t in tokens[:7]] == [
            "KEYWORD", "IDENT", "KEYWORD", "KEYWORD", "KEYWORD", "KEYWORD", "KEYWORD"]

    def test_comment_runs_to_end_of_line(self):
        assert values("1 -- a comment\n2") == ["1", "2"]

    def test_unknown_character_raises_with_position(self):
        with pytest.raises(CPLSyntaxError) as error:
            tokenize("a @ b")
        assert error.value.line == 1


class TestHyphenatedIdentifiers:
    def test_hyphen_joins_identifier_characters(self):
        assert values("locus-symbol") == ["locus-symbol"]
        assert values("medline-jta") == ["medline-jta"]
        assert values("GDB-Tab") == ["GDB-Tab"]

    def test_spaced_minus_is_subtraction(self):
        assert values("a - b") == ["a", "-", "b"]

    def test_arrow_not_confused_with_hyphen(self):
        assert values("x <- y") == ["x", "<-", "y"]


class TestCompositeSymbols:
    def test_bag_and_list_brackets(self):
        assert values("{| |} [| |]") == ["{|", "|}", "[|", "|]"]

    def test_comparison_symbols(self):
        assert values("<= >= <> == => <-") == ["<=", ">=", "<>", "==", "=>", "<-"]

    def test_ellipsis(self):
        assert values("[a = 1, ...]")[-2] == "..."

    def test_wildcard_and_backslash(self):
        assert values(r"\x _")[:3] == ["\\", "x", "_"]

    def test_line_and_column_tracking(self):
        tokens = tokenize("a\n  b")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)
