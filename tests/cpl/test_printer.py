"""Tests for the CPL value printers (value syntax, tabular, HTML, Python)."""

import pytest

from repro.core.cpl.printer import render_html, render_python, render_tabular, render_value
from repro.core.values import CBag, CList, CSet, Record, UNIT_VALUE, Variant


@pytest.fixture()
def publication():
    return Record({
        "title": "Structure of the human perforin gene",
        "authors": CList([Record({"name": "Lichtenheld", "initial": "MG"})]),
        "journal": Variant("controlled", Variant("medline-jta", "J Immunol")),
        "year": 1989,
        "keywd": CSet(["Exons"]),
    })


class TestValueSyntax:
    def test_scalars(self):
        assert render_value(42) == "42"
        assert render_value(True) == "true"
        assert render_value("x\"y") == '"x\\"y"'
        assert render_value(UNIT_VALUE) == "()"

    def test_flat_record_and_collections(self):
        assert render_value(Record({"a": 1, "b": "x"})) == '[a=1, b="x"]'
        assert render_value(CSet([1])) == "{1}"
        assert render_value(CBag([1, 1])) == "{|1, 1|}"
        assert render_value(CList([1, 2])) == "[|1, 2|]"

    def test_variant_rendering(self):
        assert render_value(Variant("giim", 5001)) == "<giim=5001>"
        assert render_value(Variant("flag")) == "<flag>"

    def test_nested_value_wraps_when_too_wide(self, publication):
        rendered = render_value(publication, width=40)
        assert "\n" in rendered
        assert "perforin" in rendered

    def test_wide_output_stays_on_one_line(self):
        assert "\n" not in render_value(Record({"a": 1}), width=100)


class TestTabular:
    def test_header_union_of_fields(self):
        rows = CSet([Record({"a": 1, "b": 2}), Record({"a": 3, "c": 4})])
        text = render_tabular(rows)
        header = text.splitlines()[0].split("\t")
        assert set(header) == {"a", "b", "c"}
        assert len(text.splitlines()) == 3

    def test_nested_cells_render_in_value_syntax(self, publication):
        text = render_tabular(CSet([publication]))
        assert "{" in text  # the keywd set is rendered inside its cell

    def test_empty_collection(self):
        assert render_tabular(CSet()) == ""

    def test_non_record_rows(self):
        assert render_tabular(CSet([1, 2])).count("\n") == 1


class TestHtmlAndPython:
    def test_html_table_for_relation(self, publication):
        html = render_html(CSet([publication]), title="pubs & more")
        assert "<table" in html
        assert "pubs &amp; more" in html

    def test_html_list_for_scalars(self):
        html = render_html(CSet([1, 2, 3]))
        assert "<ul>" in html

    def test_html_escapes_values(self):
        html = render_html(CSet([Record({"note": "<b>bold</b>"})]))
        assert "<b>bold</b>" not in html

    def test_render_python(self, publication):
        data = render_python(publication)
        assert data["year"] == 1989
        assert data["authors"][0]["name"] == "Lichtenheld"
