"""Tests for CPL → NRC desugaring: Wadler's identities and pattern compilation."""

import pytest

from repro.core.cpl.desugar import desugar_expression
from repro.core.cpl.parser import parse_expression
from repro.core.errors import EvaluationError
from repro.core.nrc import ast as A
from repro.core.nrc.eval import evaluate
from repro.core.values import CList, CSet, Record, Variant


def run(text, **bindings):
    return evaluate(desugar_expression(parse_expression(text)), bindings)


class TestWadlerIdentities:
    def test_empty_qualifier_list_is_singleton(self):
        expr = desugar_expression(parse_expression("{1 + 1 | }"))
        # No qualifiers: {e |} --> {e}
        assert isinstance(expr, A.Singleton)

    def test_generator_becomes_ext(self):
        expr = desugar_expression(parse_expression(r"{x | \x <- S}"))
        assert isinstance(expr, A.Ext)
        assert isinstance(expr.source, A.Var)

    def test_filter_becomes_conditional(self):
        expr = desugar_expression(parse_expression(r"{x | \x <- S, x > 1}"))
        assert isinstance(expr, A.Ext)
        body = expr.body
        # The pattern Let is inlined only by the optimizer, so unwrap manually.
        while isinstance(body, A.Let):
            body = body.body
        assert isinstance(body, A.IfThenElse)
        assert isinstance(body.else_branch, A.Empty)

    def test_comprehension_kind_propagates(self):
        assert desugar_expression(parse_expression(r"{|x | \x <- S|}")).kind == "bag"
        assert desugar_expression(parse_expression(r"[|x | \x <- S|]")).kind == "list"


class TestEvaluationSemantics:
    def test_literal_collection(self):
        assert run("{1, 2, 2, 3}") == CSet([1, 2, 3])
        assert run("[|1, 2, 2|]") == CList([1, 2, 2])

    def test_projection_comprehension(self):
        db = CSet([Record({"title": "A", "year": 1}), Record({"title": "B", "year": 2})])
        assert run(r"{p.title | \p <- DB}", DB=db) == CSet(["A", "B"])

    def test_filter_semantics(self):
        assert run(r"{x | \x <- {1,2,3,4}, x > 2}") == CSet([3, 4])

    def test_pattern_filter_equivalence(self):
        """The paper's two formulations of the year-1988 query agree."""
        db = CSet([Record({"title": "A", "authors": "x", "year": 1988}),
                   Record({"title": "B", "authors": "y", "year": 1990})])
        by_filter = run(
            r"{[title = t, authors = a] |"
            r" [title = \t, authors = \a, year = \y, ...] <- DB, y = 1988}", DB=db)
        by_pattern = run(
            r"{[title = t, authors = a] |"
            r" [title = \t, authors = \a, year = 1988, ...] <- DB}", DB=db)
        assert by_filter == by_pattern == CSet([Record({"title": "A", "authors": "x"})])

    def test_flattening_query(self):
        db = CSet([Record({"title": "A", "keywd": CSet(["k1", "k2"])}),
                   Record({"title": "B", "keywd": CSet(["k1"])})])
        result = run(
            r"{[title = t, keyword = k] | [title = \t, keywd = \kk, ...] <- DB, \k <- kk}",
            DB=db)
        assert result == CSet([
            Record({"title": "A", "keyword": "k1"}),
            Record({"title": "A", "keyword": "k2"}),
            Record({"title": "B", "keyword": "k1"}),
        ])

    def test_keyword_inversion_query(self):
        db = CSet([Record({"title": "A", "keywd": CSet(["k1", "k2"])}),
                   Record({"title": "B", "keywd": CSet(["k1"])})])
        result = run(
            r"{[keyword = k, titles = {x.title | \x <- DB, k <- x.keywd}] |"
            r" \y <- DB, \k <- y.keywd}", DB=db)
        assert Record({"keyword": "k1", "titles": CSet(["A", "B"])}) in result
        assert Record({"keyword": "k2", "titles": CSet(["A"])}) in result

    def test_variant_pattern_selects_matching_tag_only(self):
        db = CSet([Record({"title": "A", "journal": Variant("uncontrolled", "Notes")}),
                   Record({"title": "B", "journal": Variant("controlled", "X")})])
        result = run(
            r"{[name = n, title = t] |"
            r" [title = \t, journal = <uncontrolled = \n>, ...] <- DB}", DB=db)
        assert result == CSet([Record({"name": "Notes", "title": "A"})])

    def test_bound_variable_membership_generator(self):
        db = CSet([Record({"title": "A", "authors": CList(["x", "y"])}),
                   Record({"title": "B", "authors": CList(["z"])})])
        result = run(r"{p.title | \p <- DB, a <- p.authors}", DB=db, a="z")
        assert result == CSet(["B"])

    def test_multi_clause_function_falls_through(self):
        jname = desugar_expression(parse_expression(
            "<uncontrolled = \\s> => s | <controlled = <medline-jta = \\s>> => s"))
        value = evaluate(A.Apply(jname, A.Const(Variant("controlled",
                                                        Variant("medline-jta", "J Immunol")))))
        assert value == "J Immunol"

    def test_multi_clause_function_match_failure_raises(self):
        jname = desugar_expression(parse_expression("<uncontrolled = \\s> => s"))
        with pytest.raises(EvaluationError):
            evaluate(A.Apply(jname, A.Const(Variant("controlled", "x"))))

    def test_boolean_operators_short_circuit(self):
        # The right operand would fail (division by zero) if evaluated.
        assert run("false and (1 / 0 = 1)") is False
        assert run("true or (1 / 0 = 1)") is True

    def test_arithmetic_and_string_operators(self):
        assert run("7 - 2 * 3") == 1
        assert run('"select * from " ^ "locus"') == "select * from locus"
        assert run("- (3 + 4)") == -7

    def test_aggregates_via_primitives(self):
        assert run("sum({1, 2, 3})") == 6
        assert run("count({|1, 1, 2|})") == 3
        assert run("max({3, 9, 4})") == 9

    def test_wildcard_pattern(self):
        assert run(r"{1 | _ <- {10, 20, 30}}") == CSet([1])
