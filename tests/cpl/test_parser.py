"""Tests for the CPL parser: expressions, comprehensions, patterns, programs."""

import pytest

from repro.core.cpl import ast as S
from repro.core.cpl.parser import parse, parse_expression
from repro.core.errors import CPLSyntaxError


class TestExpressions:
    def test_literals(self):
        assert parse_expression("42") == S.SLit(42)
        assert parse_expression('"hello"') == S.SLit("hello")
        assert parse_expression("true") == S.SLit(True)
        assert parse_expression("3.5") == S.SLit(3.5)

    def test_record_literal(self):
        expr = parse_expression('[title = "x", year = 1989]')
        assert isinstance(expr, S.SRecord)
        assert set(expr.fields) == {"title", "year"}

    def test_variant_literal_nested(self):
        expr = parse_expression('<controlled = <medline-jta = "J Immunol">>')
        assert isinstance(expr, S.SVariant)
        assert expr.tag == "controlled"
        assert isinstance(expr.value, S.SVariant)

    def test_collection_literals(self):
        assert parse_expression("{1, 2, 3}").kind == "set"
        assert parse_expression("{|1, 2|}").kind == "bag"
        assert parse_expression("[|1, 2|]").kind == "list"
        assert parse_expression("{}").elements == []

    def test_projection_chain(self):
        expr = parse_expression("p.seq.id")
        assert isinstance(expr, S.SProject)
        assert expr.label == "id"
        assert isinstance(expr.expr, S.SProject)

    def test_application(self):
        expr = parse_expression('GDB-Tab("locus")')
        assert isinstance(expr, S.SApp)
        assert expr.func == S.SVar("GDB-Tab")

    def test_operator_precedence(self):
        expr = parse_expression("1 + 2 * 3 = 7")
        assert isinstance(expr, S.SBinOp)
        assert expr.op == "="

    def test_string_concat_operator(self):
        expr = parse_expression('"a" ^ "b"')
        assert expr.op == "^"

    def test_if_then_else(self):
        expr = parse_expression('if x > 1 then "big" else "small"')
        assert isinstance(expr, S.SIf)

    def test_boolean_connectives(self):
        expr = parse_expression("a and not b or c")
        assert expr.op == "or"

    def test_unexpected_token_reports_position(self):
        with pytest.raises(CPLSyntaxError):
            parse_expression("[a = ]")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(CPLSyntaxError):
            parse_expression("1 2")


class TestComprehensions:
    def test_simple_comprehension(self):
        expr = parse_expression(r"{p.title | \p <- DB}")
        assert isinstance(expr, S.SComprehension)
        assert len(expr.qualifiers) == 1
        generator = expr.qualifiers[0]
        assert isinstance(generator, S.Generator)
        assert isinstance(generator.pattern, S.PVar)

    def test_filter_qualifier(self):
        expr = parse_expression(r"{p | \p <- DB, p.year = 1988}")
        assert isinstance(expr.qualifiers[1], S.Filter)

    def test_record_pattern_generator(self):
        expr = parse_expression(r"{t | [title = \t, year = 1988, ...] <- DB}")
        pattern = expr.qualifiers[0].pattern
        assert isinstance(pattern, S.PRecord)
        assert pattern.open
        assert isinstance(pattern.fields["title"], S.PVar)
        assert isinstance(pattern.fields["year"], S.PLit)

    def test_variant_pattern_in_record_pattern(self):
        expr = parse_expression(
            r"{n | [journal = <uncontrolled = \n>, ...] <- DB}")
        pattern = expr.qualifiers[0].pattern.fields["journal"]
        assert isinstance(pattern, S.PVariant)
        assert pattern.tag == "uncontrolled"

    def test_bound_variable_generator_becomes_equality_pattern(self):
        expr = parse_expression(r"{p | \p <- DB, x <- p.authors}")
        second = expr.qualifiers[1]
        assert isinstance(second, S.Generator)
        assert isinstance(second.pattern, S.PExpr)

    def test_nested_comprehension(self):
        expr = parse_expression(
            r"{[keyword = k, titles = {x.title | \x <- DB, k <- x.keywd}] |"
            r" \y <- DB, \k <- y.keywd}")
        head = expr.head
        assert isinstance(head.fields["titles"], S.SComprehension)

    def test_bag_and_list_comprehensions(self):
        assert parse_expression(r"{|x | \x <- B|}").kind == "bag"
        assert parse_expression(r"[|x | \x <- L|]").kind == "list"


class TestFunctionsAndPrograms:
    def test_simple_lambda(self):
        expr = parse_expression(r"\x => x + 1")
        assert isinstance(expr, S.SLambda)
        assert len(expr.clauses) == 1
        assert isinstance(expr.clauses[0].pattern, S.PVar)

    def test_multi_clause_function(self):
        expr = parse_expression(
            "<uncontrolled = \\s> => s | <controlled = <medline-jta = \\s>> => s")
        assert isinstance(expr, S.SLambda)
        assert len(expr.clauses) == 2

    def test_define_statement(self):
        program = parse('define papers-of == \\x => {p | \\p <- DB, x <- p.authors}')
        assert len(program.statements) == 1
        assert isinstance(program.statements[0], S.Define)
        assert program.statements[0].name == "papers-of"

    def test_program_with_multiple_statements(self):
        program = parse('define a == 1; define b == 2; a + b')
        assert len(program.statements) == 3
        assert isinstance(program.statements[2], S.ExprStatement)

    def test_paper_loci22_query_parses(self):
        program = parse('''
            define Loci22 == {[locus-symbol = x, genbank-ref = y] |
              [locus_symbol = \\x, locus_id = \\a, ...] <- GDB-Tab("locus"),
              [genbank_ref = \\y, object_id = a, object_class_key = 1, ...]
                  <- GDB-Tab("object_genbank_eref"),
              [loc_cyto_chrom_num = "22", locus_cyto_location_id = a, ...]
                  <- GDB-Tab("locus_cyto_location")}
        ''')
        define = program.statements[0]
        comprehension = define.expr
        assert isinstance(comprehension, S.SComprehension)
        assert len(comprehension.qualifiers) == 3

    def test_paper_jname_function_parses(self):
        program = parse('''
            define jname ==
               <uncontrolled = \\s> => s
             | <controlled = <medline-jta = \\s>> => s
             | <controlled = <iso-jta = \\s>> => s
             | <controlled = <journal-title = \\s>> => s
             | <controlled = <issn = \\s>> => s
        ''')
        assert len(program.statements[0].expr.clauses) == 5
