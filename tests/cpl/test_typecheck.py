"""Tests for CPL type inference with row polymorphism."""

import pytest

from repro.core import types as T
from repro.core.cpl.parser import parse, parse_expression
from repro.core.cpl.typecheck import TypeChecker, infer_expression_type
from repro.core.errors import CPLTypeError

PUBLICATION = T.parse_type(
    "{[title: string, year: int, keywd: {string},"
    " authors: [|[name: string, initial: string]|],"
    " journal: <uncontrolled: string, controlled: <medline-jta: string>>]}")


class TestLiteralAndOperatorTypes:
    def test_literals(self):
        assert infer_expression_type("1") == T.INT
        assert infer_expression_type('"x"') == T.STRING
        assert infer_expression_type("true") == T.BOOL
        assert infer_expression_type("2.5") == T.FLOAT

    def test_arithmetic(self):
        assert infer_expression_type("1 + 2 * 3") == T.INT

    def test_comparison_is_boolean(self):
        assert infer_expression_type("1 < 2") == T.BOOL
        assert infer_expression_type('"a" = "b"') == T.BOOL

    def test_concat_requires_strings(self):
        assert infer_expression_type('"a" ^ "b"') == T.STRING
        with pytest.raises(CPLTypeError):
            infer_expression_type('"a" ^ 1')

    def test_if_branches_must_agree(self):
        assert infer_expression_type('if true then 1 else 2') == T.INT
        with pytest.raises(CPLTypeError):
            infer_expression_type('if true then 1 else "x"')

    def test_condition_must_be_boolean(self):
        with pytest.raises(CPLTypeError):
            infer_expression_type('if 1 then 2 else 3')


class TestCollectionsAndComprehensions:
    def test_homogeneous_set(self):
        assert infer_expression_type("{1, 2, 3}") == T.SetType(T.INT)

    def test_heterogeneous_set_rejected(self):
        with pytest.raises(CPLTypeError):
            infer_expression_type('{1, "two"}')

    def test_projection_comprehension(self):
        ty = infer_expression_type(r"{p.title | \p <- DB}", {"DB": PUBLICATION})
        assert ty == T.SetType(T.STRING)

    def test_record_head_type(self):
        ty = infer_expression_type(
            r"{[title = p.title, year = p.year] | \p <- DB}", {"DB": PUBLICATION})
        assert ty == T.SetType(T.RecordType({"title": T.STRING, "year": T.INT}))

    def test_flattening_query_type(self):
        ty = infer_expression_type(
            r"{[title = t, keyword = k] | [title = \t, keywd = \kk, ...] <- DB, \k <- kk}",
            {"DB": PUBLICATION})
        assert ty == T.SetType(T.RecordType({"title": T.STRING, "keyword": T.STRING}))

    def test_open_pattern_on_unknown_extra_fields(self):
        """Open record patterns type against any record containing the named fields."""
        narrow = T.parse_type("{[title: string]}")
        ty = infer_expression_type(r"{t | [title = \t, ...] <- DB}", {"DB": narrow})
        assert ty == T.SetType(T.STRING)

    def test_closed_pattern_against_wider_record_fails(self):
        ty = T.parse_type("{[title: string, year: int]}")
        with pytest.raises(CPLTypeError):
            infer_expression_type(r"{t | [title = \t] <- DB}", {"DB": ty})

    def test_filter_must_be_boolean(self):
        with pytest.raises(CPLTypeError):
            infer_expression_type(r"{p | \p <- DB, p.year}", {"DB": PUBLICATION})

    def test_generator_source_must_be_collection(self):
        with pytest.raises(CPLTypeError):
            infer_expression_type(r"{x | \x <- 42}")

    def test_list_generator_allowed(self):
        ty = infer_expression_type(r"{a.name | \p <- DB, \a <- p.authors}",
                                   {"DB": PUBLICATION})
        assert ty == T.SetType(T.STRING)

    def test_variant_pattern_type(self):
        ty = infer_expression_type(
            r"{[name = n, title = t] |"
            r" [title = \t, journal = <uncontrolled = \n>, ...] <- DB}",
            {"DB": PUBLICATION})
        assert ty == T.SetType(T.RecordType({"name": T.STRING, "title": T.STRING}))

    def test_nonexistent_field_projection_fails(self):
        with pytest.raises(CPLTypeError):
            infer_expression_type(r"{p.nosuchfield | \p <- DB}",
                                  {"DB": T.parse_type("{[title: string]}")})


class TestFunctions:
    def test_lambda_type(self):
        ty = infer_expression_type(r"\x => x + 1")
        assert isinstance(ty, T.FunctionType)
        assert ty.result == T.INT

    def test_lambda_clauses_must_return_same_type(self):
        with pytest.raises(CPLTypeError):
            infer_expression_type('<a = \\x> => 1 | <b = \\y> => "s"')

    def test_application(self):
        checker = TypeChecker()
        checker.define("inc", parse_expression(r"\x => x + 1"))
        assert checker.infer(parse_expression("inc(41)")) == T.INT

    def test_application_argument_mismatch(self):
        checker = TypeChecker()
        checker.define("inc", parse_expression(r"\x => x + 1"))
        with pytest.raises(CPLTypeError):
            checker.infer(parse_expression('inc("not a number")'))

    def test_definition_is_generalised(self):
        """A polymorphic definition can be used at two different types."""
        checker = TypeChecker()
        checker.define("identity", parse_expression(r"\x => x"))
        assert checker.infer(parse_expression("identity(1)")) == T.INT
        assert checker.infer(parse_expression('identity("s")')) == T.STRING

    def test_unbound_variable_reports_name(self):
        with pytest.raises(CPLTypeError) as error:
            infer_expression_type("nowhere")
        assert "nowhere" in str(error.value)

    def test_primitive_signatures(self):
        assert infer_expression_type("count({1,2})") == T.INT
        assert infer_expression_type("string_length(\"abc\")") == T.INT
