"""Shared fixtures: small deterministic datasets and wired-up sessions."""

from __future__ import annotations

import pytest

from repro.bio.chromosome22 import build_chromosome22
from repro.bio.publications import build_publications
from repro.core.values import CList, CSet, Record, Variant
from repro.kleisli.drivers import AceDriver, BlastDriver, EntrezDriver, RelationalDriver
from repro.kleisli.session import Session


@pytest.fixture(scope="session")
def chr22_dataset():
    """A small (but complete) Center-for-Chromosome-22 dataset, built once."""
    return build_chromosome22(locus_count=60, chromosome22_fraction=0.35,
                              homologues_per_entry=1, sequence_length=120,
                              publication_count=40, seed=22)


@pytest.fixture(scope="session")
def publications():
    """The Publication set from the paper's introduction (40 records)."""
    return build_publications(40)


@pytest.fixture()
def publication_session(publications):
    """A session with the publication set bound as DB (no external drivers)."""
    session = Session()
    session.bind("DB", publications)
    return session


@pytest.fixture()
def integrated_session(chr22_dataset):
    """A session with GDB, GenBank, ACE and BLAST drivers registered."""
    session = Session()
    session.register_driver(RelationalDriver("GDB", chr22_dataset.gdb))
    session.register_driver(EntrezDriver("GenBank", chr22_dataset.genbank))
    session.register_driver(AceDriver("ACE22", chr22_dataset.acedb))
    library = {record.identifier: record.sequence for record in chr22_dataset.fasta_library}
    session.register_driver(BlastDriver("BLAST", library))
    return session


@pytest.fixture()
def tiny_publications():
    """Three hand-built publication records for precise assertions."""
    return CSet([
        Record({
            "title": "Structure of the human perforin gene",
            "authors": CList([Record({"name": "Lichtenheld", "initial": "MG"}),
                              Record({"name": "Podack", "initial": "ER"})]),
            "journal": Variant("controlled", Variant("medline-jta", "J Immunol")),
            "year": 1989,
            "keywd": CSet(["Exons", "Base Sequence"]),
        }),
        Record({
            "title": "Mapping the BCR region",
            "authors": CList([Record({"name": "Chen", "initial": "T"})]),
            "journal": Variant("uncontrolled", "Workshop Notes"),
            "year": 1992,
            "keywd": CSet(["Chromosome 22", "Physical Mapping"]),
        }),
        Record({
            "title": "Exon prediction methods",
            "authors": CList([Record({"name": "Davidson", "initial": "SB"})]),
            "journal": Variant("controlled", Variant("iso-jta", "Nucleic Acids Res.")),
            "year": 1992,
            "keywd": CSet(["Exons"]),
        }),
    ])
