"""Integration tests for the Figure-2 architecture: one session, many source kinds.

A single CPL session reaches the relational GDB stand-in, the ASN.1/Entrez
GenBank stand-in, the ACE database and the BLAST-style application driver, and
transforms data between their formats.
"""

import pytest

from repro.ace import parse_ace
from repro.core.values import CSet, Record
from repro.formats.tabular import read_tabular


class TestMultiSourceQueries:
    def test_query_touching_three_source_kinds(self, integrated_session, chr22_dataset):
        """Join GDB loci with ACE clone objects and GenBank entry titles."""
        integrated_session.run('''
            define Chr22Loci == {[symbol = s, id = i] |
              [locus_symbol = \\s, locus_id = \\i, chromosome = "22", ...] <- GDB-Tab("locus")}
        ''')
        result = integrated_session.run('''
            {[symbol = l.symbol,
              clones = {c.name | \\c <- ACE22-Class("Clone"),
                                 c.Locus = [class = "Locus", name = l.symbol]},
              titles = {e.title | \\e <- GenBank([db = "na",
                                                  select = "chromosome 22"]),
                                  e.accession = acc}] |
              \\l <- Chr22Loci, \\acc <- {"M" ^ string_of_int(81000 + l.id)}}
        ''')
        assert len(result) == len(integrated_session.run("Chr22Loci"))
        # Loci that carry a GenBank reference have exactly one matching title.
        with_titles = [row for row in result if len(row.project("titles"))]
        assert with_titles

    def test_ace_reference_dereferencing_in_cpl(self, integrated_session):
        result = integrated_session.run(
            '{[locus = l.name, chrom = (!(l.Contig)).Chromosome] |'
            ' \\l <- ACE22-Class("Locus")}')
        assert len(result) > 0
        assert all(row.project("chrom") == "22" for row in result)

    def test_blast_driver_from_cpl(self, integrated_session, chr22_dataset):
        record = chr22_dataset.fasta_library[0]
        hits = integrated_session.run(
            f'{{h.subject | \\h <- BLAST([query = "{record.sequence}", min_score = 50])}}')
        assert record.identifier in hits


class TestTransformations:
    def test_asn1_to_relational_shape(self, integrated_session):
        """The 'transform into a relational database format' example of Section 2."""
        flat = integrated_session.run(
            '{[accession = e.accession, organism = e.organism, length = e.seq.length] |'
            ' \\e <- GenBank([db = "na", select = "chromosome 22"])}')
        assert all(set(row.labels) == {"accession", "organism", "length"} for row in flat)
        text = integrated_session.print_tabular(flat)
        parsed = read_tabular(text, types=None)
        assert len(parsed) == len(flat)

    def test_genbank_to_ace_bulk_load(self, integrated_session):
        """CPL output reformatting can generate .ace bulk-load text (Section 2)."""
        from repro.ace import dump_ace

        records = integrated_session.run(
            '{[class = "Sequence", name = e.accession, Organism = e.organism,'
            '  Length = e.seq.length] |'
            ' \\e <- GenBank([db = "na", select = "chromosome 22"])}')
        text = dump_ace(records)
        objects = parse_ace(text)
        assert len(objects) == len(records)
        assert all(obj.class_name == "Sequence" for obj in objects)

    def test_keyword_inversion_on_publications(self, integrated_session, chr22_dataset):
        integrated_session.bind("Pubs", chr22_dataset.publications)
        inverted = integrated_session.run(
            '{[keyword = k, count = count({x.title | \\x <- Pubs, k <- x.keywd})] |'
            ' \\y <- Pubs, \\k <- y.keywd}')
        assert len(inverted) > 3
        assert all(row.project("count") >= 1 for row in inverted)


class TestSessionRobustness:
    def test_driver_functions_work_unoptimized_too(self, integrated_session):
        optimized = integrated_session.query('GDB-Tab("locus")').value
        unoptimized = integrated_session.query('GDB-Tab("locus")', optimize=False).value
        assert optimized == unoptimized

    def test_request_counts_accumulate_per_driver(self, integrated_session):
        before = integrated_session.engine.driver("GDB").request_count
        integrated_session.run('GDB-Tab("locus")')
        assert integrated_session.engine.driver("GDB").request_count == before + 1

    def test_explain_shows_stage_traces(self, integrated_session):
        _, traces = integrated_session.explain(
            '{p.locus_symbol | \\p <- GDB-Tab("locus"), p.chromosome = "22"}')
        stage_names = [name for name, _ in traces]
        assert "monadic" in stage_names
        assert "sql-pushdown" in stage_names
