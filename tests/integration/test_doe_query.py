"""Integration test: the paper's "impossible" DOE query, end to end.

*Find information on the known DNA sequences on human chromosome 22, as well
as information on homologous sequences from other organisms* — answered by
joining GDB (relational) with GenBank (ASN.1/Entrez links), returning a nested
relation, exactly as Section 3 of the paper describes.
"""

import pytest

from repro.core.nrc import ast as A
from repro.core.values import CSet, Record

LOCI22 = '''
define Loci22 == {[locus-symbol = x, genbank-ref = y] |
  [locus_symbol = \\x, locus_id = \\a, ...] <- GDB-Tab("locus"),
  [genbank_ref = \\y, object_id = a, object_class_key = 1, ...] <- GDB-Tab("object_genbank_eref"),
  [loc_cyto_chrom_num = "22", locus_cyto_location_id = a, ...] <- GDB-Tab("locus_cyto_location")}
'''

ASN_IDS = '''
define ASN-IDs == \\accession =>
  GenBank([db = "na", select = "accession " ^ accession, path = "Seq-entry.seq.id..giim"])
'''

DOE_QUERY = ('{[locus = locus, homologs = NA-Links(uid)] |'
             ' \\locus <- Loci22, \\uid <- ASN-IDs(locus.genbank-ref)}')


@pytest.fixture()
def doe_session(integrated_session):
    integrated_session.run(LOCI22)
    integrated_session.run(ASN_IDS)
    return integrated_session


class TestLoci22:
    def test_loci22_matches_direct_sql(self, doe_session, chr22_dataset):
        value = doe_session.run("Loci22")
        direct = chr22_dataset.gdb.sql(
            "select locus_symbol, genbank_ref"
            " from locus, object_genbank_eref, locus_cyto_location"
            " where locus.locus_id = locus_cyto_location.locus_cyto_location_id"
            " and locus.locus_id = object_genbank_eref.object_id"
            " and object_class_key = 1 and loc_cyto_chrom_num = '22'")
        expected = CSet([Record({"locus-symbol": row["locus_symbol"],
                                 "genbank-ref": row["genbank_ref"]}) for row in direct])
        assert value == expected
        assert len(value) > 5

    def test_loci22_is_shipped_as_one_sql_query(self, doe_session):
        result = doe_session.query("Loci22")
        assert isinstance(result.optimized, A.Scan)
        assert doe_session.engine.last_eval_statistics.scan_requests == 1


class TestDOEQuery:
    def test_answer_is_a_nested_relation_with_homologs(self, doe_session):
        answer = doe_session.run(DOE_QUERY)
        assert len(answer) > 5
        for row in answer:
            assert set(row.labels) == {"locus", "homologs"}
            locus = row.project("locus")
            assert set(locus.labels) == {"locus-symbol", "genbank-ref"}
            homologs = row.project("homologs")
            assert isinstance(homologs, CSet)

    def test_every_locus_with_links_reports_nonhuman_homologs(self, doe_session):
        answer = doe_session.run(DOE_QUERY)
        with_homologs = [row for row in answer if len(row.project("homologs"))]
        assert with_homologs, "the synthetic GenBank always precomputes some links"
        for row in with_homologs:
            for link in row.project("homologs"):
                assert link.project("organism") != "Homo sapiens"

    def test_optimized_and_unoptimized_agree(self, doe_session):
        assert doe_session.query(DOE_QUERY).value == \
            doe_session.query(DOE_QUERY, optimize=False).value

    def test_asn_ids_returns_sequence_ids(self, doe_session, chr22_dataset):
        locus_ids = chr22_dataset.chromosome22_locus_ids()
        from repro.bio.gdb import accession_for_locus

        ids = doe_session.run(f'ASN-IDs("{accession_for_locus(locus_ids[0])}")')
        assert len(ids) == 1
        assert all(isinstance(value, int) for value in ids)

    def test_html_view_of_the_answer_renders(self, doe_session):
        answer = doe_session.run(DOE_QUERY)
        html = doe_session.print_html(answer, title="Chromosome 22 homologs")
        assert "<table" in html and "locus" in html


class TestParameterisedView:
    """Figure 1: the form lets users pick a chromosome and band; underneath is a CPL function."""

    def test_band_parameterised_view(self, doe_session):
        doe_session.run('''
            define loci-in-band == \\band =>
              {[locus-symbol = x, band = b] |
                [locus_symbol = \\x, locus_id = \\a, ...] <- GDB-Tab("locus"),
                [loc_cyto_chrom_num = "22", locus_cyto_location_id = a,
                 loc_cyto_band_start = \\b, ...] <- GDB-Tab("locus_cyto_location"),
                b = band}
        ''')
        all_bands = doe_session.run(
            '{c.loc_cyto_band_start | \\c <- GDB-Tab("locus_cyto_location"),'
            ' c.loc_cyto_chrom_num = "22"}')
        band = sorted(all_bands)[0]
        rows = doe_session.run(f'loci-in-band("{band}")')
        assert len(rows) >= 1
        assert all(row.project("band") == band for row in rows)
