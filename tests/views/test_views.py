"""Tests for the multidatabase user-view layer (Section 3, Figure 1)."""

import pytest

from repro.core.values import CSet, Record
from repro.kleisli.session import Session
from repro.views import (
    UserView,
    ViewError,
    ViewGateway,
    ViewParameter,
    ViewParameterError,
    ViewRegistry,
    build_mapsearch_view,
    render_form,
    render_index,
    render_result_page,
)
from repro.views.mapsearch import MAPSEARCH_QUERY


# ---------------------------------------------------------------------------
# Parameters
# ---------------------------------------------------------------------------

class TestViewParameter:
    def test_string_coercion_passes_through(self):
        parameter = ViewParameter("symbol")
        assert parameter.coerce("  D22S1  ") == "D22S1"

    def test_int_and_float_coercion(self):
        assert ViewParameter("n", "int").coerce("42") == 42
        assert ViewParameter("score", "float").coerce("0.5") == 0.5

    def test_int_coercion_rejects_garbage(self):
        with pytest.raises(ViewParameterError):
            ViewParameter("n", "int").coerce("forty-two")

    def test_bool_coercion(self):
        parameter = ViewParameter("flag", "bool")
        assert parameter.coerce("true") is True
        assert parameter.coerce("off") is False
        with pytest.raises(ViewParameterError):
            parameter.coerce("maybe")

    def test_missing_required_parameter(self):
        with pytest.raises(ViewParameterError):
            ViewParameter("band").coerce(None)
        with pytest.raises(ViewParameterError):
            ViewParameter("band").coerce("   ")

    def test_default_fills_in_missing_value(self):
        parameter = ViewParameter("band", "choice", choices=["22q11.2"], default="22q11.2")
        assert parameter.coerce(None) == "22q11.2"

    def test_optional_parameter_without_default_is_none(self):
        assert ViewParameter("note", required=False).coerce("") is None

    def test_choice_validation(self):
        parameter = ViewParameter("band", "choice", choices=["22q11.1", "22q11.2"])
        assert parameter.coerce("22q11.1") == "22q11.1"
        with pytest.raises(ViewParameterError):
            parameter.coerce("17p13")

    def test_choice_requires_choices(self):
        with pytest.raises(ViewError):
            ViewParameter("band", "choice")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ViewError):
            ViewParameter("x", "date")

    def test_typed_value_passes_choice_check(self):
        parameter = ViewParameter("n", "int")
        assert parameter.coerce(7) == 7


# ---------------------------------------------------------------------------
# UserView over a plain session
# ---------------------------------------------------------------------------

def _publication_view():
    return UserView(
        "papers-from-year",
        "{[title = p.title] | \\p <- DB, p.year = year}",
        description="Titles of publications from a given year",
        parameters=[ViewParameter("year", "int")],
        output="tabular",
    )


@pytest.fixture()
def bound_session():
    session = Session()
    session.bind("DB", CSet([
        Record({"title": "Perforin gene", "year": 1989}),
        Record({"title": "BCR mapping", "year": 1992}),
        Record({"title": "Exon prediction", "year": 1992}),
    ]))
    return session


class TestUserView:
    def test_run_binds_parameters_and_returns_value(self, bound_session):
        result = _publication_view().run(bound_session, {"year": "1992"})
        titles = {row.project("title") for row in result.value}
        assert titles == {"BCR mapping", "Exon prediction"}
        assert result.parameters == {"year": 1992}

    def test_parameters_do_not_leak_into_the_session(self, bound_session):
        _publication_view().run(bound_session, {"year": "1989"})
        assert "year" not in bound_session.values

    def test_existing_binding_is_restored(self, bound_session):
        bound_session.bind("year", 1700)
        _publication_view().run(bound_session, {"year": "1992"})
        assert bound_session.values["year"] == 1700

    def test_unknown_parameter_rejected(self, bound_session):
        with pytest.raises(ViewError):
            _publication_view().run(bound_session, {"year": "1992", "author": "Hart"})

    def test_duplicate_parameter_names_rejected(self):
        with pytest.raises(ViewError):
            UserView("v", "DB", parameters=[ViewParameter("a"), ViewParameter("a")])

    def test_unknown_output_format_rejected(self):
        with pytest.raises(ViewError):
            UserView("v", "DB", output="pdf")

    def test_setup_runs_once_per_session(self, bound_session):
        view = UserView(
            "recent",
            "recent-titles(cutoff)",
            parameters=[ViewParameter("cutoff", "int")],
            setup="define recent-titles == \\y => {p.title | \\p <- DB, p.year >= y}",
        )
        first = view.run(bound_session, {"cutoff": "1990"})
        second = view.run(bound_session, {"cutoff": "1990"})
        assert first.value == second.value
        assert len(first.value) == 2

    def test_parameter_lookup(self):
        view = _publication_view()
        assert view.parameter("year").kind == "int"
        with pytest.raises(ViewError):
            view.parameter("missing")


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

class TestViewRegistry:
    def test_register_get_and_names(self):
        registry = ViewRegistry()
        view = registry.register(_publication_view())
        assert registry.get(view.name) is view
        assert registry.names() == [view.name]
        assert view.name in registry and len(registry) == 1

    def test_duplicate_registration_rejected_unless_replace(self):
        registry = ViewRegistry()
        registry.register(_publication_view())
        with pytest.raises(ViewError):
            registry.register(_publication_view())
        registry.register(_publication_view(), replace=True)

    def test_unregister(self):
        registry = ViewRegistry()
        registry.register(_publication_view())
        registry.unregister("papers-from-year")
        assert len(registry) == 0
        with pytest.raises(ViewError):
            registry.unregister("papers-from-year")

    def test_get_unknown_view(self):
        with pytest.raises(ViewError):
            ViewRegistry().get("nope")


# ---------------------------------------------------------------------------
# Forms
# ---------------------------------------------------------------------------

class TestForms:
    def test_form_lists_choices_like_figure_1(self):
        html = render_form(build_mapsearch_view())
        assert "<select" in html and "22q11.2" in html
        assert "valid bands are listed" in html
        assert 'action="/cgi-bin/cpl/mapsearch1.html"' in html

    def test_form_escapes_error_message(self):
        html = render_form(_publication_view(), error="bad <value>")
        assert "bad &lt;value&gt;" in html

    def test_text_and_checkbox_fields(self):
        view = UserView("v", "DB", parameters=[
            ViewParameter("symbol", "string", default="D22S1"),
            ViewParameter("include_links", "bool", default=True),
        ])
        html = render_form(view)
        assert 'type="text"' in html and 'value="D22S1"' in html
        assert 'type="checkbox"' in html and "checked" in html

    def test_index_links_every_view(self):
        registry = ViewRegistry()
        registry.register(_publication_view())
        registry.register(build_mapsearch_view())
        html = render_index(registry)
        assert "papers-from-year" in html and "mapsearch1" in html

    def test_result_page_tabular_output(self, bound_session):
        result = _publication_view().run(bound_session, {"year": "1992"})
        html = render_result_page(result)
        assert "BCR mapping" in html and "year = 1992" in html and "<pre>" in html


# ---------------------------------------------------------------------------
# Gateway + the Figure-1 mapsearch view over the integrated scenario
# ---------------------------------------------------------------------------

@pytest.fixture()
def gateway(integrated_session):
    registry = ViewRegistry()
    registry.register(build_mapsearch_view())
    return ViewGateway(integrated_session, registry)


class TestGateway:
    def test_index_and_form_pages(self, gateway):
        assert gateway.handle("").status == 200
        form = gateway.handle("mapsearch1.html")
        assert form.status == 200 and "<form" in form.body

    def test_unknown_view_is_404(self, gateway):
        assert gateway.form("nope").status == 404
        assert gateway.submit("nope", {"x": "1"}).status == 404

    def test_validation_failure_re_renders_form(self, gateway):
        response = gateway.submit("mapsearch1", {"chromosome": "99"})
        assert response.status == 400
        assert "<form" in response.body and "Error" in response.body

    def test_submit_runs_the_doe_query_shape(self, gateway, integrated_session):
        response = gateway.submit("mapsearch1", {"chromosome": "22", "band": "any"})
        assert response.status == 200
        rows = response.value
        assert len(rows) > 0
        for row in rows:
            assert set(row.labels) == {"locus-symbol", "band", "genbank-ref", "homologs"}
        assert "<table" in response.body.lower() or "<html>" in response.body.lower()

    def test_optimized_matches_unoptimized(self, gateway):
        optimized = gateway.submit("mapsearch1", {"chromosome": "22", "band": "any"})
        unoptimized = gateway.submit("mapsearch1", {"chromosome": "22", "band": "any"},
                                     optimize=False)
        assert optimized.value == unoptimized.value

    def test_band_restriction_filters_rows(self, gateway, integrated_session):
        everything = gateway.submit("mapsearch1", {"chromosome": "22", "band": "any"}).value
        bands = {row.project("band") for row in everything}
        assert bands, "scenario should place loci in at least one band"
        one_band = sorted(bands)[0]
        restricted = gateway.submit("mapsearch1", {"chromosome": "22", "band": one_band}).value
        assert len(restricted) >= 1
        assert {row.project("band") for row in restricted} == {one_band}
        assert len(restricted) <= len(everything)

    def test_other_chromosome_yields_no_chr22_loci(self, gateway):
        response = gateway.submit("mapsearch1", {"chromosome": "1", "band": "any"})
        assert response.status == 200
        # Synthetic GenBank only indexes chromosome-22 accessions, so loci on
        # other chromosomes have no retrievable entries.
        assert len(response.value) == 0

    def test_query_text_mentions_all_three_gdb_tables(self):
        for table in ("locus", "object_genbank_eref", "locus_cyto_location"):
            assert table in MAPSEARCH_QUERY
