"""Tests for Kleisli components: token streams, scheduler, cache, statistics registry."""

import threading
import time

import pytest

from repro.core.values import CSet
from repro.kleisli.cache import SubqueryCache
from repro.kleisli.scheduler import BoundedScheduler
from repro.kleisli.statistics import SourceStatisticsRegistry
from repro.kleisli.tokens import TokenStream
from repro.net.remote import RemoteCallLog, RemoteSource
from repro.core.errors import RemoteSourceError


class TestTokenStream:
    def test_lazy_iteration_and_materialisation(self):
        produced = []

        def generator():
            for i in range(5):
                produced.append(i)
                yield i

        stream = TokenStream(generator(), kind="set")
        iterator = iter(stream)
        assert next(iterator) == 0
        assert produced == [0]          # nothing beyond the first element was pulled
        assert stream.to_collection() == CSet(range(5))

    def test_first_item_callback_fires_once(self):
        fired = []
        stream = TokenStream(iter([1, 2, 3]), first_item_callback=lambda: fired.append(1))
        list(stream)
        assert fired == [1]

    def test_materialised_count_tracks_progress(self):
        stream = TokenStream(iter(range(10)))
        iterator = iter(stream)
        next(iterator)
        next(iterator)
        assert stream.materialised_count() == 2


class TestBoundedScheduler:
    def test_results_preserve_order(self):
        scheduler = BoundedScheduler(max_workers=4)
        assert scheduler.map(lambda x: x * x, list(range(20))) == [x * x for x in range(20)]

    def test_never_exceeds_worker_cap(self):
        active = []
        peak = []
        lock = threading.Lock()

        def task(x):
            with lock:
                active.append(x)
                peak.append(len(active))
            time.sleep(0.005)
            with lock:
                active.remove(x)
            return x

        scheduler = BoundedScheduler(max_workers=3)
        scheduler.map(task, list(range(12)))
        assert max(peak) <= 3

    def test_single_worker_runs_sequentially(self):
        scheduler = BoundedScheduler(max_workers=1)
        assert scheduler.map(lambda x: x + 1, [1, 2, 3]) == [2, 3, 4]
        assert scheduler.batches == 1

    def test_rejects_invalid_worker_count(self):
        with pytest.raises(ValueError):
            BoundedScheduler(max_workers=0)


class TestSubqueryCache:
    def test_basic_mapping_behaviour(self):
        cache = SubqueryCache()
        cache["k"] = CSet([1, 2])
        assert "k" in cache
        assert cache["k"] == CSet([1, 2])
        assert len(cache) == 1
        del cache["k"]
        assert "k" not in cache

    def test_miss_raises_and_counts(self):
        cache = SubqueryCache()
        with pytest.raises(KeyError):
            cache["missing"]
        assert cache.misses == 1

    def test_large_values_spill_to_disk(self):
        cache = SubqueryCache(spill_threshold_bytes=128)
        cache["big"] = list(range(10000))
        assert cache.spills == 1
        assert cache["big"] == list(range(10000))

    def test_unpicklable_values_stay_in_memory(self):
        cache = SubqueryCache(spill_threshold_bytes=1)
        cache["fn"] = lambda x: x
        assert cache["fn"](3) == 3

    def test_clear(self):
        cache = SubqueryCache(spill_threshold_bytes=16)
        cache["a"] = 1
        cache["b"] = list(range(1000))
        cache.clear()
        assert len(cache) == 0


class TestStatisticsRegistry:
    def test_cardinality_lookup_with_default(self):
        registry = SourceStatisticsRegistry()
        registry.register_cardinality("GDB", "locus", 500)
        assert registry.cardinality("GDB", "locus") == 500
        assert registry.cardinality("GDB", "unknown_table") == registry.DEFAULT_CARDINALITY
        assert not registry.has_cardinality("GenBank", "na")

    def test_driver_wide_fallback(self):
        registry = SourceStatisticsRegistry()
        registry.register_cardinality("GenBank", "", 10000)
        assert registry.cardinality("GenBank", "na") == 10000

    def test_remote_flag_from_latency(self):
        registry = SourceStatisticsRegistry()
        assert not registry.is_remote("GDB")
        registry.register_latency("GDB", 0.05)
        assert registry.is_remote("GDB")
        assert registry.latency("GDB") == 0.05


class TestRemoteSource:
    def test_latency_and_logging(self):
        source = RemoteSource("S", lambda x: x * 2, latency=0.01)
        assert source.call(21) == 42
        assert source.request_count == 1
        assert source.log.wall_clock() >= 0.01

    def test_concurrency_cap_enforced(self):
        source = RemoteSource("S", lambda x: time.sleep(0.05) or x, latency=0.0,
                              max_concurrent_requests=1)
        errors = []

        def hammer():
            try:
                source.call(1)
            except RemoteSourceError:
                errors.append(1)

        threads = [threading.Thread(target=hammer) for _ in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors  # at least one request was rejected over the cap

    def test_max_concurrency_measurement(self):
        log = RemoteCallLog()
        log.record(0.0, 1.0)
        log.record(0.5, 1.5)
        log.record(2.0, 3.0)
        assert log.max_concurrency() == 2
        assert log.wall_clock() == 3.0


class TestObservedLatency:
    """The statistics registry's observed-latency EMA: a driver nobody
    declared remote but whose requests are measured slow becomes remote for
    the parallelism rules; explicit declarations always win."""

    def test_ema_tracks_samples(self):
        from repro.kleisli.statistics import SourceStatisticsRegistry

        registry = SourceStatisticsRegistry()
        assert registry.observed_latency("d") == 0.0
        registry.record_latency_sample("d", 0.1)
        assert registry.observed_latency("d") == pytest.approx(0.1)
        registry.record_latency_sample("d", 0.2)
        # EMA with weight 0.2: 0.1 * 0.8 + 0.2 * 0.2
        assert registry.observed_latency("d") == pytest.approx(0.12)

    def test_slow_undeclared_driver_is_promoted_to_remote(self):
        from repro.kleisli.statistics import SourceStatisticsRegistry

        registry = SourceStatisticsRegistry()
        assert not registry.is_remote("d")
        registry.record_latency_sample("d", 0.2)
        assert registry.is_remote("d")
        assert registry.latency("d") == pytest.approx(0.2)

    def test_fast_undeclared_driver_stays_local(self):
        from repro.kleisli.statistics import SourceStatisticsRegistry

        registry = SourceStatisticsRegistry()
        for _ in range(10):
            registry.record_latency_sample("d", 0.001)
        assert not registry.is_remote("d")

    def test_explicit_declaration_beats_observation(self):
        from repro.kleisli.statistics import SourceStatisticsRegistry

        registry = SourceStatisticsRegistry()
        # Declared local (0.0): stays local no matter what is measured.
        registry.register_latency("pinned_local", 0.0)
        registry.record_latency_sample("pinned_local", 5.0)
        assert not registry.is_remote("pinned_local")
        assert registry.latency("pinned_local") == 0.0
        # Declared remote: stays remote even when dispatch is instant.
        registry.register_latency("declared_remote", 0.08)
        registry.record_latency_sample("declared_remote", 0.0)
        assert registry.is_remote("declared_remote")
        assert registry.latency("declared_remote") == pytest.approx(0.08)

    def test_engine_records_samples_through_the_driver_executor(self):
        import time as _time

        from repro.core.values import CList
        from repro.kleisli.drivers.base import Driver
        from repro.kleisli.engine import KleisliEngine

        class SlowDispatchDriver(Driver):
            def __init__(self):
                super().__init__("slowish")

            def _execute(self, request):
                _time.sleep(0.06)
                return CList([1, 2, 3])

        engine = KleisliEngine()
        engine.register_driver(SlowDispatchDriver())
        assert not engine.statistics_registry.is_remote("slowish")
        engine.driver_executor("slowish", {"table": "t"})
        assert engine.statistics_registry.observed_latency("slowish") >= 0.05
        # Promoted: the parallel rules will now treat it as remote.
        assert engine.statistics_registry.is_remote("slowish")

    def test_lazy_cursor_dispatches_do_not_erode_a_promotion(self):
        """A mixed driver: eager requests at ~200ms promoted it to remote;
        its lazy-cursor requests dispatch in ~0s.  Those sub-floor samples
        carry no round-trip information and must not decay the EMA below
        the remote threshold (regression)."""
        from repro.kleisli.statistics import SourceStatisticsRegistry

        registry = SourceStatisticsRegistry()
        registry.record_latency_sample("mixed", 0.2)
        assert registry.is_remote("mixed")
        for _ in range(50):
            registry.record_latency_sample("mixed", 0.00001)
        assert registry.observed_latency("mixed") == pytest.approx(0.2)
        assert registry.is_remote("mixed"), \
            "cursor dispatches demoted a slow remote driver"
