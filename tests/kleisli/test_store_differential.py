"""Zero-knowledge differential pin for the plan store.

The persistence layer's bit-for-bit contract: an engine attached to a
**missing**, **empty**, or **arbitrarily corrupted** store must plan — and
therefore execute — exactly like a storeless engine, across the PR 2-4
pipelined shape corpus.  Not just value parity: the chosen plan must BE
the default knob set (``last_plan.is_default``), and the drained-run
``elements_fetched`` accounting must match element-for-element.  A store
that has nothing trustworthy to say must be indistinguishable from no
store at all.
"""

import os

import pytest

from repro.core.planner import PhysicalPlan, PlanStore
from repro.kleisli.engine import KleisliEngine

from test_stream_differential import RangeDriver, _shapes


def _engine(store=None):
    engine = KleisliEngine(plan_store=store)
    engine.register_driver(RangeDriver())
    return engine


def _store(path):
    return PlanStore(os.fspath(path), stats_interval=10_000.0,
                     compact_bytes=0)


def _missing_store(tmp_path):
    return _store(tmp_path / "never-created")


def _empty_store(tmp_path):
    os.makedirs(tmp_path / "empty", exist_ok=True)
    return _store(tmp_path / "empty")


def _corrupt_store(tmp_path):
    directory = tmp_path / "corrupt"
    os.makedirs(directory, exist_ok=True)
    # Garbage in every slot the loader looks at: a journal of noise, a
    # truncated snapshot, and a journal whose header is a torn frame.
    with open(directory / "journal-1-deadbeef.kjl", "wb") as handle:
        handle.write(b"\x00\x00\x01\x00" + os.urandom(300))
    with open(directory / "snapshot.kjs", "wb") as handle:
        handle.write(b"\xff\x7f" * 40)
    with open(directory / "journal-2-cafecafe.kjl", "wb") as handle:
        handle.write(b"\x00")
    return _store(directory)


STORE_FACTORIES = [
    ("no store", lambda tmp_path: None),
    ("missing store", _missing_store),
    ("empty store", _empty_store),
    ("corrupt store", _corrupt_store),
]


@pytest.mark.parametrize("label,expr,bindings",
                         _shapes(), ids=lambda v: v if isinstance(v, str) else "")
def test_every_store_condition_plans_bit_for_bit_default(label, expr, bindings,
                                                         tmp_path):
    baseline_engine = _engine()
    baseline = list(baseline_engine.stream(expr, bindings, optimize=False,
                                           mode="compiled", chunked=True))
    baseline_stats = baseline_engine.last_eval_statistics
    baseline_plan = baseline_engine.last_plan

    for store_label, factory in STORE_FACTORIES[1:]:
        store = factory(tmp_path)
        engine = _engine(store)
        values = list(engine.stream(expr, bindings, optimize=False,
                                    mode="compiled", chunked=True))
        stats = engine.last_eval_statistics
        tag = f"{label} / {store_label}"
        # Bit-for-bit: values, accounting, and the plan itself.
        assert values == baseline, tag
        assert stats.elements_fetched == baseline_stats.elements_fetched, tag
        assert engine.last_plan == baseline_plan, tag
        assert engine.last_plan == PhysicalPlan.default(
            engine.optimizer_config.join_block_size), tag
        assert engine.last_plan.is_default, tag
        store.close()


def test_corrupt_store_surfaces_books_but_loads_nothing(tmp_path):
    engine = _engine(_corrupt_store(tmp_path))
    books = engine.health()["persistence"]
    assert books["attached"] is True
    assert books["entries_loaded"] == 0
    assert books["records_skipped_corrupt"] >= 1
    assert len(engine.plan_feedback) == 0
    engine.plan_store.close()


def test_warm_store_changes_plans_only_when_it_has_knowledge(tmp_path):
    """The converse sanity check: a store with real observations DOES
    re-plan (source == "feedback" on the warm engine's first run) —
    otherwise the zero-knowledge pin above would be vacuous."""
    directory = tmp_path / "warm"
    for label, expr, bindings in _shapes()[:3]:
        first = _engine(_store(directory))
        list(first.stream(expr, bindings, optimize=False, mode="compiled",
                          chunked=True))
        first.flush_plan_store()
        first.plan_store.close()

    warm = _engine(_store(directory))
    label, expr, bindings = _shapes()[0]
    list(warm.stream(expr, bindings, optimize=False, mode="compiled",
                     chunked=True))
    assert warm.last_plan.source == "feedback"
    warm.plan_store.close()
