"""Query lifecycle governance: cancellation, memory budgets, the books.

What PR 9's tentpole guarantees, pinned:

* **Cooperative cancellation** — a cancelled token raises a *typed*
  :class:`~repro.core.errors.QueryCancelledError` at every checkpoint class
  (eager loop heads, per-element pulls, chunk boundaries,
  pre-driver-dispatch), in all three lowerings and the interpreter, and the
  run's ``EvalScope`` releases every cursor on the way out.
* **Hierarchical memory budgets** — charges walk query → session → engine
  pool with rollback on rejection; an over-budget run raises a typed
  :class:`~repro.core.errors.MemoryBudgetExceededError` (or degrades to
  spill, see ``test_spill.py``); a finished run returns every byte.
* **Zero-governance contract** — a run with no token, no budget and no
  spill takes exactly the pre-governance paths: same values, same
  ``elements_fetched``, all governance books zero.
"""

import threading

import pytest

from repro.core.errors import MemoryBudgetExceededError, QueryCancelledError
from repro.core.nrc import ast as A
from repro.core.nrc import builder as B
from repro.core.nrc.eval import EvalScope
from repro.core.values import CBag, CList, iter_collection
from repro.kleisli.drivers.base import Driver
from repro.kleisli.engine import ExecutionMode, KleisliEngine
from repro.kleisli.governance import (
    NOMINAL_ROW_BYTES,
    CancellationToken,
    MemoryBudget,
    QueryGovernor,
)
from repro.kleisli.session import Session


class RangeDriver(Driver):
    """Scans yield ``base .. base+count-1`` lazily through a generator."""

    def __init__(self, name="ranges"):
        super().__init__(name)

    def _execute(self, request):
        base = int(request.get("base", 0))
        count = int(request.get("count", 5))

        def cursor():
            for i in range(base, base + count):
                yield i

        return cursor()


class CancellingDriver(Driver):
    """Cancels an attached token after serving ``cancel_after`` elements —
    the way a watchdog or a client interrupts a query that is mid-source."""

    def __init__(self, name="ranges", cancel_after=3):
        super().__init__(name)
        self.token = None
        self.cancel_after = cancel_after

    def _execute(self, request):
        count = int(request.get("count", 5))

        def cursor():
            for i in range(count):
                if self.token is not None and i == self.cancel_after:
                    self.token.cancel("driver-side cancel")
                yield i

        return cursor()


def _scan(count=5, base=0):
    return A.Scan("ranges", {"table": "t", "count": count, "base": base},
                  args={}, kind="list")


def _comprehension(count=20):
    return B.ext("x", B.singleton(B.prim("mul", B.var("x"), B.const(3)),
                                  "list"),
                 _scan(count=count), kind="list")


# -- CancellationToken --------------------------------------------------------

class TestCancellationToken:
    def test_starts_live_and_checkpoint_passes(self):
        token = CancellationToken()
        assert not token.cancelled
        assert token.reason is None
        token.raise_if_cancelled()  # must not raise

    def test_cancel_is_idempotent_first_reason_wins(self):
        token = CancellationToken()
        token.cancel("first")
        token.cancel("second")
        assert token.cancelled
        assert token.reason == "first"

    def test_checkpoint_raises_typed_error_with_reason(self):
        token = CancellationToken()
        token.cancel("deadline blown")
        with pytest.raises(QueryCancelledError) as info:
            token.raise_if_cancelled()
        assert info.value.reason == "deadline blown"

    def test_cancel_from_another_thread_is_observed(self):
        token = CancellationToken()
        thread = threading.Thread(target=token.cancel, args=("remote",))
        thread.start()
        thread.join()
        assert token.cancelled and token.reason == "remote"


# -- MemoryBudget -------------------------------------------------------------

class TestMemoryBudget:
    def test_charge_release_and_peak(self):
        budget = MemoryBudget(1000)
        budget.charge(400)
        budget.charge(300)
        assert budget.used == 700 and budget.peak == 700
        budget.release(600)
        assert budget.used == 100 and budget.peak == 700
        assert budget.headroom() == 900

    def test_rejection_is_typed_and_counts_nothing(self):
        budget = MemoryBudget(100, label="q")
        with pytest.raises(MemoryBudgetExceededError) as info:
            budget.charge(101)
        assert "q" in str(info.value)
        assert budget.used == 0

    def test_hierarchy_charges_every_level(self):
        pool = MemoryBudget(10_000, label="engine")
        session = MemoryBudget(5_000, label="session", parent=pool)
        query = MemoryBudget(None, label="query", parent=session)
        query.charge(3_000)
        assert (query.used, session.used, pool.used) == (3_000, 3_000, 3_000)
        query.release(1_000)
        assert (query.used, session.used, pool.used) == (2_000, 2_000, 2_000)

    def test_rejection_at_an_ancestor_rolls_back_lower_levels(self):
        pool = MemoryBudget(1_000, label="engine")
        query = MemoryBudget(None, label="query", parent=pool)
        with pytest.raises(MemoryBudgetExceededError):
            query.charge(2_000)
        assert query.used == 0 and pool.used == 0

    def test_close_returns_outstanding_to_ancestors_idempotently(self):
        pool = MemoryBudget(10_000, label="engine")
        query = MemoryBudget(None, label="query", parent=pool)
        query.charge(4_000)
        query.close()
        query.close()
        assert pool.used == 0

    def test_charge_elements_uses_nominal_row_bytes(self):
        budget = MemoryBudget(None)
        budget.charge_elements(10)
        assert budget.used == 10 * NOMINAL_ROW_BYTES
        budget.release_elements(10)
        assert budget.used == 0

    def test_nonpositive_limit_is_refused(self):
        with pytest.raises(ValueError):
            MemoryBudget(0)
        with pytest.raises(ValueError):
            MemoryBudget(-5)


# -- QueryGovernor ------------------------------------------------------------

class TestQueryGovernor:
    def test_count_merge_snapshot(self):
        governor = QueryGovernor()
        governor.count("cancellations")
        governor.merge({"spills": 2, "bytes_spilled": 99,
                        "spill_fallbacks": 0})
        books = governor.snapshot()
        assert books["cancellations"] == 1
        assert books["spills"] == 2
        assert books["bytes_spilled"] == 99
        assert books["budget_rejections"] == 0
        assert "pool_used_bytes" not in books

    def test_pool_limit_surfaces_in_snapshot(self):
        governor = QueryGovernor(pool_limit=1 << 20)
        books = governor.snapshot()
        assert books["pool_limit_bytes"] == 1 << 20
        assert books["pool_used_bytes"] == 0


# -- engine: cancellation checkpoints -----------------------------------------

def _engine():
    engine = KleisliEngine()
    engine.register_driver(RangeDriver())
    return engine


@pytest.mark.parametrize("mode", [ExecutionMode.COMPILED,
                                  ExecutionMode.INTERPRET])
def test_precancelled_execute_raises_before_any_dispatch(mode):
    engine = _engine()
    token = CancellationToken()
    token.cancel("before start")
    with pytest.raises(QueryCancelledError):
        engine.execute(_comprehension(), mode=mode, cancellation=token)
    driver = engine.driver("ranges")
    assert driver.request_count == 0      # pre-dispatch checkpoint held
    assert EvalScope.live_count() == 0
    assert engine.governor.snapshot()["cancellations"] == 1


@pytest.mark.parametrize("chunked", [True, False])
@pytest.mark.parametrize("mode", [ExecutionMode.COMPILED,
                                  ExecutionMode.INTERPRET])
def test_stream_cancel_mid_drain_releases_cursors(mode, chunked):
    engine = _engine()
    token = CancellationToken()
    stream = engine.stream(_comprehension(count=200), mode=mode,
                           chunked=chunked, cancellation=token)
    got = []
    with pytest.raises(QueryCancelledError):
        for value in stream:
            got.append(value)
            if len(got) == 5:
                token.cancel("mid-drain")
    # Cancellation is cooperative: the pipeline may finish yielding what a
    # chunk had already buffered, but never runs to completion.
    assert 5 <= len(got) < 200
    assert EvalScope.live_count() == 0
    assert engine.governor.snapshot()["cancellations"] == 1


def test_driver_side_cancellation_stops_eager_run(cancel_after=4):
    engine = KleisliEngine()
    driver = engine.register_driver(CancellingDriver(cancel_after=cancel_after))
    token = CancellationToken()
    driver.token = token
    with pytest.raises(QueryCancelledError):
        engine.execute(_comprehension(count=50), cancellation=token)
    assert EvalScope.live_count() == 0


def test_cancelled_stream_closed_early_still_counts(capsys):
    engine = _engine()
    token = CancellationToken()
    stream = engine.stream(_comprehension(count=100), cancellation=token)
    next(stream)
    token.cancel("client went away")
    stream.close()                        # never drained into the error
    assert engine.governor.snapshot()["cancellations"] == 1
    assert EvalScope.live_count() == 0


def test_cancel_after_completion_counts_nothing(capsys):
    engine = _engine()
    token = CancellationToken()
    values = list(engine.stream(_comprehension(count=10),
                                cancellation=token))
    assert len(values) == 10
    token.cancel("too late")
    assert engine.governor.snapshot()["cancellations"] == 0


# -- engine: memory budgets ---------------------------------------------------

def test_over_budget_execute_raises_typed_and_counts():
    engine = _engine()
    with pytest.raises(MemoryBudgetExceededError):
        engine.execute(_comprehension(count=1000), memory_budget=1024,
                       spill=False)
    assert engine.governor.snapshot()["budget_rejections"] == 1
    assert EvalScope.live_count() == 0


def test_under_budget_run_matches_ungoverned_exactly():
    engine = _engine()
    expr = _comprehension(count=100)
    plain = list(iter_collection(engine.execute(expr)))
    plain_fetched = engine.last_eval_statistics.elements_fetched
    governed = list(iter_collection(
        engine.execute(expr, memory_budget=1 << 20)))
    assert governed == plain
    assert engine.last_eval_statistics.elements_fetched == plain_fetched


def test_engine_pool_settles_after_each_run():
    engine = KleisliEngine(memory_pool_limit=1 << 20)
    engine.register_driver(RangeDriver())
    for _ in range(3):
        list(iter_collection(engine.execute(_comprehension(count=200))))
        assert engine.governor.pool.used == 0
    assert engine.governor.pool.peak > 0   # the runs really charged it


def test_engine_pool_cap_rejects_even_unbudgeted_runs():
    engine = KleisliEngine(memory_pool_limit=2048)
    engine.register_driver(RangeDriver())
    with pytest.raises(MemoryBudgetExceededError):
        engine.execute(_comprehension(count=5000), spill=False)
    assert engine.governor.pool.used == 0  # rolled back and settled
    assert engine.governor.snapshot()["budget_rejections"] == 1


def test_budget_settles_when_stream_abandoned_mid_drain():
    engine = KleisliEngine(memory_pool_limit=1 << 20)
    engine.register_driver(RangeDriver())
    stream = engine.stream(_comprehension(count=500), memory_budget=1 << 19)
    next(stream)
    stream.close()
    assert engine.governor.pool.used == 0
    assert EvalScope.live_count() == 0


# -- zero-governance contract -------------------------------------------------

@pytest.mark.parametrize("chunked", [True, False])
def test_ungoverned_runs_keep_books_at_zero(chunked):
    engine = _engine()
    expr = _comprehension(count=50)
    eager = list(iter_collection(engine.execute(expr)))
    eager_fetched = engine.last_eval_statistics.elements_fetched
    streamed = list(engine.stream(expr, chunked=chunked))
    assert streamed == eager
    assert engine.last_eval_statistics.elements_fetched == eager_fetched
    books = engine.governor.snapshot()
    assert all(count == 0 for count in books.values())
    assert engine.governor.pool is None


def test_ungoverned_context_has_no_hooks():
    engine = _engine()
    context = engine._make_context()
    assert context.cancellation is None
    assert context.memory_budget is None
    assert context.spill is None


# -- session passthrough ------------------------------------------------------

def _session(**kwargs):
    session = Session(**kwargs)
    session.bind("Nums", list(range(300)))
    return session


def test_session_cancellation_passthrough():
    session = _session()
    token = CancellationToken()
    token.cancel()
    with pytest.raises(QueryCancelledError):
        session.query("{ x | \\x <- Nums }", cancellation=token)


def test_session_memory_limit_governs_every_run():
    session = _session(memory_limit=4096)
    with pytest.raises(MemoryBudgetExceededError):
        session.query("{ [a = x, b = x] | \\x <- Nums }", spill=False)
    # The failed run returned its charges: the quota is intact ...
    assert session.memory_budget.used == 0
    # ... and a small query still fits.
    small = session.query("{ x | \\x <- Nums, x < 10 }")
    assert len(list(iter_collection(small.value))) == 10
    assert session.memory_budget.used == 0


def test_session_set_memory_limit_installs_and_clears():
    session = _session()
    assert session.memory_budget is None
    session.set_memory_limit(1 << 20)
    assert session.memory_budget.limit == 1 << 20
    session.set_memory_limit(None)
    assert session.memory_budget is None


def test_per_call_budget_caps_inside_session_quota():
    session = _session(memory_limit=1 << 20)
    with pytest.raises(MemoryBudgetExceededError) as info:
        session.query("{ x | \\x <- Nums }", memory_budget=64, spill=False)
    # The *query-level* cap rejected, inside an otherwise-roomy session.
    assert "query" in str(info.value)
    assert session.memory_budget.used == 0
