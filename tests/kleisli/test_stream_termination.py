"""Regression tests: abandoning a pipelined query must release its resources.

``KleisliEngine.stream`` yields results as the outer generator produces them;
a consumer that stops early (closes the iterator) must not

* leave the driver's cursor open (the driver generator's ``finally`` must
  run), nor
* leak ``BoundedScheduler`` workers from a ``ParallelExt`` body, nor
* eagerly drain the source behind the consumer's back —

in **both** execution modes.
"""

import threading

import pytest

from repro.core.nrc import ast as A
from repro.core.nrc import builder as B
from repro.core.optimizer.parallel import ParallelExt
from repro.core.values import CSet, from_python
from repro.kleisli.drivers.base import Driver
from repro.kleisli.engine import ExecutionMode, KleisliEngine
from repro.kleisli.tokens import TokenStream

MODES = [ExecutionMode.INTERPRET, ExecutionMode.COMPILED]


class CursorDriver(Driver):
    """A driver whose scans hand out generators that track open/closed state."""

    def __init__(self, name="cursors", total=100, wrap_token_stream=False):
        super().__init__(name)
        self.total = total
        self.wrap_token_stream = wrap_token_stream
        self.open_cursors = 0
        self.produced = 0

    def _execute(self, request):
        def cursor():
            self.open_cursors += 1
            try:
                for i in range(self.total):
                    self.produced += 1
                    yield i
            finally:
                self.open_cursors -= 1

        if self.wrap_token_stream:
            return TokenStream(cursor(), kind="set")
        return cursor()


def _scan_comprehension():
    return B.ext("x", B.singleton(B.var("x")), A.Scan("cursors", {"table": "t"}))


@pytest.mark.parametrize("mode", MODES, ids=lambda m: m.value)
@pytest.mark.parametrize("wrap_token_stream", [False, True],
                         ids=["raw-generator", "token-stream"])
class TestEarlyTermination:
    def test_closing_the_stream_closes_the_driver_cursor(self, mode, wrap_token_stream):
        engine = KleisliEngine()
        driver = engine.register_driver(
            CursorDriver(total=100, wrap_token_stream=wrap_token_stream))
        stream = engine.stream(_scan_comprehension(), optimize=False, mode=mode)
        assert next(stream) == 0
        assert next(stream) == 1
        assert driver.open_cursors == 1
        stream.close()
        assert driver.open_cursors == 0, "driver cursor left open after close()"

    def test_early_close_does_not_drain_the_source(self, mode, wrap_token_stream):
        engine = KleisliEngine()
        driver = engine.register_driver(
            CursorDriver(total=100, wrap_token_stream=wrap_token_stream))
        stream = engine.stream(_scan_comprehension(), optimize=False, mode=mode)
        for _ in range(3):
            next(stream)
        stream.close()
        assert driver.produced <= 4, f"stream drained {driver.produced} elements eagerly"

    def test_exhausted_stream_also_closes_the_cursor(self, mode, wrap_token_stream):
        engine = KleisliEngine()
        driver = engine.register_driver(
            CursorDriver(total=5, wrap_token_stream=wrap_token_stream))
        values = list(engine.stream(_scan_comprehension(), optimize=False, mode=mode))
        assert values == list(range(5))
        assert driver.open_cursors == 0


@pytest.mark.parametrize("mode", MODES, ids=lambda m: m.value)
class TestDirectTokenStreamSource:
    def test_early_close_reaches_a_bound_token_stream(self, mode):
        """The source can be a TokenStream bound directly in the environment
        (no Scan in between); closing the stream must still reach its cursor."""
        state = {"open": 0}

        def cursor():
            state["open"] += 1
            try:
                for i in range(100):
                    yield i
            finally:
                state["open"] -= 1

        token_stream = TokenStream(cursor(), kind="list")
        engine = KleisliEngine()
        expr = B.ext("x", B.singleton(B.var("x"), "list"), B.var("S"), kind="list")
        stream = engine.stream(expr, {"S": token_stream}, optimize=False, mode=mode)
        assert next(stream) == 0
        assert state["open"] == 1
        stream.close()
        assert state["open"] == 0, "bound TokenStream cursor left open"


class TestClosedTokenStreamIsPoisoned:
    def test_closed_stream_refuses_to_materialise_partially(self):
        """A closed-but-undrained TokenStream must raise, not silently pass
        off its partial buffer as the complete collection."""
        from repro.core.errors import EvaluationError

        stream = TokenStream(iter(range(10)), kind="list")
        iterator = iter(stream)
        assert [next(iterator), next(iterator)] == [0, 1]
        stream.close()
        with pytest.raises(EvaluationError):
            stream.to_collection()
        with pytest.raises(EvaluationError):
            list(stream)

    def test_closing_a_drained_stream_is_a_no_op(self):
        stream = TokenStream(iter(range(3)), kind="list")
        assert len(stream.to_collection()) == 3
        stream.close()
        assert len(stream.to_collection()) == 3


@pytest.mark.parametrize("mode", MODES, ids=lambda m: m.value)
class TestSchedulerWorkerCleanup:
    def test_no_scheduler_threads_survive_early_close(self, mode):
        """A ParallelExt body spins workers per element; closing mid-stream
        must leave none behind (the scheduler joins its pool per batch)."""
        engine = KleisliEngine()
        inner = ParallelExt(
            "y", B.singleton(B.prim("add", B.var("y"), B.var("x"))),
            A.Const(from_python([10, 20, 30], list_as="set")),
            kind="set", max_workers=3)
        expr = B.ext("x", inner, A.Const(CSet(range(50))))
        baseline = threading.active_count()
        stream = engine.stream(expr, optimize=False, mode=mode)
        for _ in range(4):
            next(stream)
        stream.close()
        assert threading.active_count() == baseline, "scheduler workers leaked"
