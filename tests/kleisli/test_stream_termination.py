"""Regression tests: abandoning a pipelined query must release its resources.

``KleisliEngine.stream`` yields results as the outer generator produces them;
a consumer that stops early (closes the iterator) must not

* leave the driver's cursor open (the driver generator's ``finally`` must
  run), nor
* leak ``BoundedScheduler`` workers from a ``ParallelExt`` body, nor
* eagerly drain the source behind the consumer's back —

in **both** execution modes.
"""

import threading

import pytest

from repro.core.nrc import ast as A
from repro.core.nrc import builder as B
from repro.core.optimizer.parallel import ParallelExt
from repro.core.values import CSet, from_python
from repro.kleisli.drivers.base import Driver
from repro.kleisli.engine import ExecutionMode, KleisliEngine
from repro.kleisli.tokens import TokenStream

MODES = [ExecutionMode.INTERPRET, ExecutionMode.COMPILED]


class CursorDriver(Driver):
    """A driver whose scans hand out generators that track open/closed state."""

    def __init__(self, name="cursors", total=100, wrap_token_stream=False):
        super().__init__(name)
        self.total = total
        self.wrap_token_stream = wrap_token_stream
        self.open_cursors = 0
        self.produced = 0

    def _execute(self, request):
        def cursor():
            self.open_cursors += 1
            try:
                for i in range(self.total):
                    self.produced += 1
                    yield i
            finally:
                self.open_cursors -= 1

        if self.wrap_token_stream:
            return TokenStream(cursor(), kind="set")
        return cursor()


def _scan_comprehension():
    return B.ext("x", B.singleton(B.var("x")), A.Scan("cursors", {"table": "t"}))


@pytest.mark.parametrize("mode", MODES, ids=lambda m: m.value)
@pytest.mark.parametrize("wrap_token_stream", [False, True],
                         ids=["raw-generator", "token-stream"])
class TestEarlyTermination:
    def test_closing_the_stream_closes_the_driver_cursor(self, mode, wrap_token_stream):
        engine = KleisliEngine()
        driver = engine.register_driver(
            CursorDriver(total=100, wrap_token_stream=wrap_token_stream))
        stream = engine.stream(_scan_comprehension(), optimize=False, mode=mode)
        assert next(stream) == 0
        assert next(stream) == 1
        assert driver.open_cursors == 1
        stream.close()
        assert driver.open_cursors == 0, "driver cursor left open after close()"

    def test_early_close_does_not_drain_the_source(self, mode, wrap_token_stream):
        engine = KleisliEngine()
        driver = engine.register_driver(
            CursorDriver(total=100, wrap_token_stream=wrap_token_stream))
        stream = engine.stream(_scan_comprehension(), optimize=False, mode=mode)
        for _ in range(3):
            next(stream)
        stream.close()
        assert driver.produced <= 4, f"stream drained {driver.produced} elements eagerly"

    def test_exhausted_stream_also_closes_the_cursor(self, mode, wrap_token_stream):
        engine = KleisliEngine()
        driver = engine.register_driver(
            CursorDriver(total=5, wrap_token_stream=wrap_token_stream))
        values = list(engine.stream(_scan_comprehension(), optimize=False, mode=mode))
        assert values == list(range(5))
        assert driver.open_cursors == 0


@pytest.mark.parametrize("mode", MODES, ids=lambda m: m.value)
class TestDirectTokenStreamSource:
    def test_early_close_reaches_a_bound_token_stream(self, mode):
        """The source can be a TokenStream bound directly in the environment
        (no Scan in between); closing the stream must still reach its cursor."""
        state = {"open": 0}

        def cursor():
            state["open"] += 1
            try:
                for i in range(100):
                    yield i
            finally:
                state["open"] -= 1

        token_stream = TokenStream(cursor(), kind="list")
        engine = KleisliEngine()
        expr = B.ext("x", B.singleton(B.var("x"), "list"), B.var("S"), kind="list")
        stream = engine.stream(expr, {"S": token_stream}, optimize=False, mode=mode)
        assert next(stream) == 0
        assert state["open"] == 1
        stream.close()
        assert state["open"] == 0, "bound TokenStream cursor left open"


class TestClosedTokenStreamIsPoisoned:
    def test_closed_stream_refuses_to_materialise_partially(self):
        """A closed-but-undrained TokenStream must raise, not silently pass
        off its partial buffer as the complete collection."""
        from repro.core.errors import EvaluationError

        stream = TokenStream(iter(range(10)), kind="list")
        iterator = iter(stream)
        assert [next(iterator), next(iterator)] == [0, 1]
        stream.close()
        with pytest.raises(EvaluationError):
            stream.to_collection()
        with pytest.raises(EvaluationError):
            list(stream)

    def test_closing_a_drained_stream_is_a_no_op(self):
        stream = TokenStream(iter(range(3)), kind="list")
        assert len(stream.to_collection()) == 3
        stream.close()
        assert len(stream.to_collection()) == 3


class BiDriver(Driver):
    """Two cursor families ("outer"/"inner") with independent open/close state."""

    def __init__(self, name="bi", outer_total=50, inner_total=50):
        super().__init__(name)
        self.totals = {"outer": outer_total, "inner": inner_total}
        self.open_cursors = {"outer": 0, "inner": 0}
        self.produced = {"outer": 0, "inner": 0}

    def _execute(self, request):
        family = request["table"]

        def cursor():
            self.open_cursors[family] += 1
            try:
                for i in range(self.totals[family]):
                    self.produced[family] += 1
                    yield i
            finally:
                self.open_cursors[family] -= 1

        return cursor()


def _nested_scan_comprehension():
    """ext x <- scan(outer): ext y <- scan(inner, base=x): {x*1000 + y}"""
    inner = B.ext(
        "y",
        B.singleton(B.prim("add", B.prim("mul", B.var("x"), B.const(1000)),
                           B.var("y")), "list"),
        A.Scan("bi", {"table": "inner"}, args={"base": B.var("x")}, kind="list"),
        kind="list")
    return B.ext("x", inner, A.Scan("bi", {"table": "outer"}, kind="list"),
                 kind="list")


@pytest.mark.parametrize("mode", MODES, ids=lambda m: m.value)
class TestBodyCursorRelease:
    """Closing the stream must release *body-level* cursors, not just the
    source's (the context-managed evaluation scope)."""

    def test_early_close_closes_body_cursors(self, mode):
        engine = KleisliEngine()
        driver = engine.register_driver(BiDriver())
        stream = engine.stream(_nested_scan_comprehension(),
                               optimize=False, mode=mode)
        for _ in range(3):
            next(stream)
        stream.close()
        assert driver.open_cursors == {"outer": 0, "inner": 0}, \
            "body-level cursor left open after close()"

    def test_compiled_stream_pipelines_the_body_cursor(self, mode):
        """In compiled mode the body scan is itself pipelined: after pulling
        two elements the inner cursor is still open mid-consumption — and
        close() must reach it.  (Interpreted mode materializes the body per
        outer element, so its inner cursor is already drained here.)"""
        engine = KleisliEngine()
        driver = engine.register_driver(BiDriver())
        stream = engine.stream(_nested_scan_comprehension(),
                               optimize=False, mode=mode)
        assert next(stream) == 0
        assert next(stream) == 1
        if mode is ExecutionMode.COMPILED:
            assert driver.open_cursors["inner"] == 1, \
                "body scan should stream, not materialize"
            assert driver.produced["inner"] <= 3
            assert driver.produced["outer"] <= 2
        stream.close()
        assert driver.open_cursors == {"outer": 0, "inner": 0}

    def test_exhausting_the_stream_closes_everything(self, mode):
        engine = KleisliEngine()
        driver = engine.register_driver(BiDriver(outer_total=3, inner_total=4))
        values = list(engine.stream(_nested_scan_comprehension(),
                                    optimize=False, mode=mode))
        assert len(values) == 12
        assert driver.open_cursors == {"outer": 0, "inner": 0}

    def test_drained_body_cursors_are_not_pinned_by_the_scope(self, mode):
        """The scope must track only *live* cursors: a drained body-level
        cursor unregisters itself, so a long stream does not accumulate one
        retained (buffer-holding) cursor per outer element (regression)."""
        from repro.core.nrc.compile import compile_stream
        from repro.core.nrc.eval import EvalContext, Environment, Evaluator

        engine = KleisliEngine()
        engine.register_driver(BiDriver(outer_total=40, inner_total=5))
        context = EvalContext(driver_executor=engine.driver_executor)
        if mode is ExecutionMode.COMPILED:
            iterator = compile_stream(_nested_scan_comprehension())(None, context)
        else:
            expr = _nested_scan_comprehension()

            def interpreted():
                with context.evaluation_scope():
                    evaluator = Evaluator(context)
                    source = evaluator._eval(expr.source, Environment())
                    for item in source:
                        body = evaluator._eval(
                            expr.body, Environment({expr.var: item}))
                        yield from body

            iterator = interpreted()
        peak = 0
        for i, _ in enumerate(iterator):
            if i % 10 == 0:
                # The run's scope is active on the context mid-iteration.
                peak = max(peak, len(context.scope._resources))
        assert peak <= 3, f"scope pinned {peak} cursors (drained ones retained)"


class TestVarBoundCursorScopeRelease:
    def test_drained_streams_unregister_via_direct_iteration(self):
        """Direct check on the helper: _iterate_streamed registers a
        closeable source and unregisters it once drained."""
        from repro.core.nrc.compile import _iterate_streamed
        from repro.core.nrc.eval import EvalContext

        context = EvalContext()
        with context.evaluation_scope() as scope:
            token_stream = TokenStream(iter(range(5)), kind="list")
            iterator = _iterate_streamed(token_stream, context)
            assert list(iterator) == [0, 1, 2, 3, 4]
            assert len(scope._resources) == 0, "drained cursor still tracked"
            abandoned = TokenStream(iter(range(5)), kind="list")
            iterator = _iterate_streamed(abandoned, context)
            assert next(iterator) == 0
            assert len(scope._resources) == 1, "live cursor must be tracked"
        state = {"closed": abandoned.closed}
        assert state["closed"], "abandoned cursor not closed by the scope"


class TestCompiledPipelining:
    """The compiled backend pipelines nested/filtered/parallel shapes — the
    first element must arrive after O(1) source elements, not O(n)."""

    def test_nested_ext_is_pipelined(self):
        engine = KleisliEngine()
        driver = engine.register_driver(BiDriver(outer_total=100, inner_total=100))
        stream = engine.stream(_nested_scan_comprehension(),
                               optimize=False, mode=ExecutionMode.COMPILED)
        assert next(stream) == 0
        assert driver.produced["outer"] <= 2, "outer source drained eagerly"
        assert driver.produced["inner"] <= 2, "inner source drained eagerly"
        stream.close()

    def test_filtered_comprehension_is_pipelined(self):
        engine = KleisliEngine()
        driver = engine.register_driver(CursorDriver(total=100))
        expr = B.ext(
            "x",
            B.if_then_else(B.prim("gt", B.var("x"), B.const(4)),
                           B.singleton(B.var("x")), B.empty()),
            A.Scan("cursors", {"table": "t"}))
        stream = engine.stream(expr, optimize=False, mode=ExecutionMode.COMPILED)
        assert next(stream) == 5
        assert driver.produced <= 7, "filter drained the source eagerly"
        stream.close()
        assert driver.open_cursors == 0

    def test_parallel_ext_prefetches_boundedly(self):
        """A streamed ParallelExt keeps at most max_workers requests in
        flight: the source is consumed only one window ahead."""
        engine = KleisliEngine()
        driver = engine.register_driver(CursorDriver(total=100))
        expr = ParallelExt("x", B.singleton(B.prim("mul", B.var("x"), B.const(2))),
                           A.Scan("cursors", {"table": "t"}),
                           kind="set", max_workers=4)
        stream = engine.stream(expr, optimize=False, mode=ExecutionMode.COMPILED)
        assert next(stream) == 0
        assert driver.produced <= 4 + 2, \
            f"prefetch ran {driver.produced} elements ahead of the consumer"
        stream.close()
        assert driver.open_cursors == 0


class TestChunkedEarlyClose:
    """The chunked lowering buffers elements (ramping chunks: 1, 2, 4, ...);
    abandoning the stream mid-chunk must still release every cursor through
    the EvalScope — including cursors whose elements sit buffered but
    unconsumed in the current chunk — and must never have pulled the source
    beyond the chunk being read."""

    def test_ramping_chunk_early_close_releases_the_source_cursor(self):
        engine = KleisliEngine()
        driver = engine.register_driver(CursorDriver(total=100))
        stream = engine.stream(_scan_comprehension(), optimize=False,
                               mode="compiled", chunked=True)
        # Consume 2 elements: the ramp has pulled chunks [0] and [1, 2], so
        # element 2 is buffered in the current chunk but not yet consumed.
        assert next(stream) == 0
        assert next(stream) == 1
        assert driver.open_cursors == 1
        assert driver.produced <= 3, \
            f"ramp pulled {driver.produced} elements for 2 consumed"
        stream.close()
        assert driver.open_cursors == 0, \
            "cursor left open behind a buffered-but-unconsumed chunk element"

    def test_ramping_chunk_early_close_releases_body_cursors(self):
        """Same guarantee for *body-level* cursors: the batched body fetch
        registers every chunk result with the scope up front, so closing
        mid-chunk reaches cursors downstream never even started."""
        engine = KleisliEngine()
        driver = engine.register_driver(BiDriver(outer_total=50, inner_total=50))
        stream = engine.stream(_nested_scan_comprehension(), optimize=False,
                               mode="compiled", chunked=True)
        for _ in range(3):
            next(stream)
        assert driver.open_cursors["inner"] == 1
        stream.close()
        assert driver.open_cursors == {"outer": 0, "inner": 0}, \
            "body-level cursor left open after closing a chunked stream"

    def test_chunked_stream_does_not_outrun_the_ramp(self):
        """No lookahead beyond the chunk boundary: closing after 3 elements
        has pulled at most the chunks containing them (1 + 2 + started 4)."""
        engine = KleisliEngine()
        driver = engine.register_driver(CursorDriver(total=100))
        stream = engine.stream(_scan_comprehension(), optimize=False,
                               mode="compiled", chunked=True)
        for _ in range(3):
            next(stream)
        stream.close()
        assert driver.produced <= 1 + 2 + 4, \
            f"chunked stream drained {driver.produced} elements eagerly"

    def test_exception_mid_chunk_releases_cursors(self):
        from repro.core.errors import EvaluationError

        engine = KleisliEngine()
        driver = engine.register_driver(CursorDriver(total=100))
        expr = B.ext(
            "x",
            B.if_then_else(B.prim("lt", B.var("x"), B.const(3)),
                           B.singleton(B.var("x")),
                           B.singleton(B.project(B.var("x"), "boom"))),
            A.Scan("cursors", {"table": "t"}))
        stream = engine.stream(expr, optimize=False, mode="compiled",
                               chunked=True)
        with pytest.raises(EvaluationError):
            for _ in range(10):
                next(stream)
        assert driver.open_cursors == 0, \
            "cursor left open after a failing chunked pipeline stage"


@pytest.mark.parametrize("mode", MODES, ids=lambda m: m.value)
class TestSchedulerWorkerCleanup:
    def test_no_scheduler_threads_survive_early_close(self, mode):
        """A ParallelExt body spins workers per element; closing mid-stream
        must leave none behind (the scheduler joins its pool per batch)."""
        engine = KleisliEngine()
        inner = ParallelExt(
            "y", B.singleton(B.prim("add", B.var("y"), B.var("x"))),
            A.Const(from_python([10, 20, 30], list_as="set")),
            kind="set", max_workers=3)
        expr = B.ext("x", inner, A.Const(CSet(range(50))))
        baseline = threading.active_count()
        stream = engine.stream(expr, optimize=False, mode=mode)
        for _ in range(4):
            next(stream)
        stream.close()
        assert threading.active_count() == baseline, "scheduler workers leaked"


@pytest.mark.parametrize("mode", MODES, ids=lambda m: m.value)
class TestExceptionMidStream:
    """A pipeline stage *raising* mid-stream must release every cursor via
    the evaluation scope — the exception path, not just exhaustion or an
    early close — in both execution modes."""

    def test_failing_body_closes_the_source_cursor(self, mode):
        from repro.core.errors import EvaluationError

        engine = KleisliEngine()
        driver = engine.register_driver(CursorDriver(total=100))
        # The body succeeds for x < 3, then projects a field off an int.
        expr = B.ext(
            "x",
            B.if_then_else(B.prim("lt", B.var("x"), B.const(3)),
                           B.singleton(B.var("x")),
                           B.singleton(B.project(B.var("x"), "boom"))),
            A.Scan("cursors", {"table": "t"}))
        stream = engine.stream(expr, optimize=False, mode=mode)
        assert [next(stream) for _ in range(3)] == [0, 1, 2]
        assert driver.open_cursors == 1
        with pytest.raises(EvaluationError):
            next(stream)
        assert driver.open_cursors == 0, \
            "source cursor left open after a failing pipeline stage"

    def test_failing_body_closes_body_level_cursors(self, mode):
        """The failure happens while a *body-level* scan is mid-consumption:
        the scope must reach that cursor too, not only the source's."""
        from repro.core.errors import EvaluationError

        engine = KleisliEngine()
        driver = engine.register_driver(BiDriver())
        inner = B.ext(
            "y",
            B.if_then_else(B.prim("lt", B.var("y"), B.const(2)),
                           B.singleton(B.var("y"), "list"),
                           B.singleton(B.project(B.var("y"), "boom"), "list")),
            A.Scan("bi", {"table": "inner"}, args={"base": B.var("x")},
                   kind="list"),
            kind="list")
        expr = B.ext("x", inner, A.Scan("bi", {"table": "outer"}, kind="list"),
                     kind="list")
        stream = engine.stream(expr, optimize=False, mode=mode)
        with pytest.raises(EvaluationError):
            # Compiled mode pipelines the body, so the elements before the
            # failure arrive first; interpreted mode materializes the body
            # per outer element and fails on the first next() instead.
            assert next(stream) == 0
            list(stream)
        assert driver.open_cursors == {"outer": 0, "inner": 0}, \
            "cursors left open after a failing body stage"

    def test_injected_driver_fault_midstream_releases_cursors(self, mode):
        """The shared fault harness (``fault_drivers``): a driver whose
        cursor *itself* raises mid-production must still end with zero open
        cursors — the scope releases what the failure interrupted."""
        from repro.core.errors import DriverError
        from fault_drivers import FaultInjectingDriver

        engine = KleisliEngine()
        driver = engine.register_driver(
            FaultInjectingDriver(total=50, midstream_fail_on={1},
                                 midstream_after=3))
        expr = B.ext("x", B.singleton(B.var("x")),
                     A.Scan("Faulty", {"table": "t", "count": 50}))
        stream = engine.stream(expr, optimize=False, mode=mode)
        with pytest.raises(DriverError, match="mid-stream"):
            for _ in range(10):
                next(stream)
        assert driver.open_cursors == 0, \
            "cursor left open after an injected mid-stream driver fault"
        assert driver.faults_raised == 1

    def test_injected_dead_source_fails_cleanly(self, mode):
        """A request that dies before producing anything (``fail_on``) must
        surface the DriverError without leaking scheduler state; the next
        request on the same engine succeeds."""
        from repro.core.errors import DriverError
        from fault_drivers import FaultInjectingDriver

        engine = KleisliEngine()
        driver = engine.register_driver(FaultInjectingDriver(fail_on={1}))
        expr = B.ext("x", B.singleton(B.var("x")),
                     A.Scan("Faulty", {"table": "t", "count": 5}))
        with pytest.raises(DriverError, match="injected failure"):
            list(engine.stream(expr, optimize=False, mode=mode))
        assert driver.open_cursors == 0
        # The fault poisons nothing: the very next run drains fine.
        assert list(engine.stream(expr, optimize=False, mode=mode)) == \
            list(range(5))

    def test_failing_join_condition_closes_the_probe_cursor(self, mode):
        """The pinned join-condition error (non-boolean) must also release
        the streamed probe side's cursor."""
        from repro.core.errors import EvaluationError
        from repro.core.values import CList

        engine = KleisliEngine()
        driver = engine.register_driver(CursorDriver(total=100))
        expr = A.Join("blocked", "o",
                      A.Scan("cursors", {"table": "t"}, kind="list"),
                      "i", B.var("INNER"),
                      B.const(1),  # truthy non-boolean: raises on first pair
                      B.singleton(B.var("o"), "list"), None, None, "list", 1)
        with pytest.raises(EvaluationError, match="join condition"):
            list(engine.stream(expr, {"INNER": CList([1])},
                               optimize=False, mode=mode))
        assert driver.open_cursors == 0
