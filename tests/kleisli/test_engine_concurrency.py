"""Shared-engine state under concurrent use (the query service's substrate).

Many sessions multiplex onto ONE ``KleisliEngine`` — so the compile cache,
the plan-feedback ledger, and the evaluation scopes are hammered from N
threads at once here, with three invariants:

* **value parity** — every thread sees exactly the single-threaded value for
  every corpus shape (the differential corpus of ``test_stream_differential``);
* **counter consistency** — cache *activity* is deterministic even when the
  hit/miss split is not: every run performs the same lookups, so the summed
  deltas scale exactly with the number of runs (two threads may both miss on
  the same fingerprint and compile twice — that changes the split, never the
  sum);
* **scope hygiene** — once every thread has joined, no ``EvalScope`` is left
  live (a leaked scope is a leaked cursor set).
"""

import threading

import pytest

from test_stream_differential import _shapes
from test_stream_differential import _engine as _wired_engine

from repro.core.nrc.eval import EvalScope
from repro.core.values import iter_collection
from repro.kleisli.engine import ExecutionMode, KleisliEngine

THREADS = 8
ROUNDS = 3


def _run_corpus(engine, shapes, errors=None, expected=None, stream_every=0):
    """Execute every corpus shape once; optionally also stream and compare."""
    for index, (label, expr, bindings) in enumerate(shapes):
        try:
            value = engine.execute(expr, dict(bindings))
            if expected is not None and value != expected[label]:
                raise AssertionError(
                    f"{label}: {value!r} != {expected[label]!r}")
            if stream_every and index % stream_every == 0 and \
                    expected is not None:
                streamed = list(engine.stream(expr, dict(bindings)))
                reference = list(iter_collection(expected[label]))
                if streamed != reference:
                    raise AssertionError(
                        f"{label} (streamed): {streamed!r} != {reference!r}")
        except Exception as error:  # noqa: BLE001 - collected, not swallowed
            if errors is None:
                raise
            errors.append(f"{label}: {type(error).__name__}: {error}")
            return


def _streamable_shapes():
    """Shapes whose value is a collection (streaming a scalar query is not a
    corpus case)."""
    shapes = []
    probe = KleisliEngine()
    from test_stream_differential import RangeDriver

    probe.register_driver(RangeDriver())
    for label, expr, bindings in _shapes():
        value = probe.execute(expr, dict(bindings))
        try:
            iter_collection(value)
        except Exception:
            continue
        shapes.append((label, expr, bindings))
    return shapes


class TestSharedEngineConcurrency:
    def test_n_threads_see_single_threaded_values(self):
        engine = _wired_engine()
        shapes = _streamable_shapes()
        expected = {label: engine.execute(expr, dict(bindings))
                    for label, expr, bindings in shapes}
        baseline_scopes = EvalScope.live_count()
        errors = []

        def worker():
            for _ in range(ROUNDS):
                _run_corpus(engine, shapes, errors=errors,
                            expected=expected, stream_every=3)

        threads = [threading.Thread(target=worker) for _ in range(THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors, "\n".join(errors[:10])
        assert EvalScope.live_count() == baseline_scopes, \
            "evaluation scopes leaked by concurrent runs"

    def test_cache_and_ledger_activity_scales_exactly_with_runs(self):
        """Counter math: after a warm-up, one corpus round produces a fixed
        delta of cache *gets* (hits+misses), feedback lookups, and feedback
        recordings; N threads x R rounds must produce exactly N*R times
        that — anything else means a counter update was lost to a race."""
        engine = _wired_engine()
        shapes = [(label, expr, bindings)
                  for label, expr, bindings in _shapes()]
        # Warm up: caches filled, feedback ledger seeded, knobs settled.
        for _ in range(2):
            _run_corpus(engine, shapes)

        cache = engine._compiled_queries
        feedback = engine.plan_feedback
        gets0 = cache.hits + cache.misses
        lookups0 = feedback.lookups
        recordings0 = feedback.recordings
        _run_corpus(engine, shapes)
        per_round_gets = (cache.hits + cache.misses) - gets0
        per_round_lookups = feedback.lookups - lookups0
        per_round_recordings = feedback.recordings - recordings0
        assert per_round_gets > 0, "corpus exercises the compile cache"

        gets0 = cache.hits + cache.misses
        lookups0 = feedback.lookups
        recordings0 = feedback.recordings
        threads = [threading.Thread(
            target=lambda: [_run_corpus(engine, shapes)
                            for _ in range(ROUNDS)])
            for _ in range(THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)

        runs = THREADS * ROUNDS
        assert (cache.hits + cache.misses) - gets0 == runs * per_round_gets, \
            "compile-cache lookup count drifted under concurrency"
        assert feedback.lookups - lookups0 == runs * per_round_lookups, \
            "plan-feedback lookup count drifted under concurrency"
        assert feedback.recordings - recordings0 == \
            runs * per_round_recordings, \
            "plan-feedback recording count drifted under concurrency"

    def test_concurrent_streams_on_one_engine_release_all_cursors(self):
        """Interleaved partially-consumed streams from many threads: every
        thread abandons some streams early; all cursors must be released."""
        from test_stream_differential import RangeDriver
        from repro.core.nrc import ast as A
        from repro.core.nrc import builder as B

        engine = KleisliEngine()
        engine.register_driver(RangeDriver())
        expr = B.ext("x", B.singleton(B.var("x"), "list"),
                     A.Scan("ranges", {"table": "t", "count": 50},
                            kind="list"), kind="list")
        baseline_scopes = EvalScope.live_count()
        errors = []

        def worker(seed):
            try:
                for round_number in range(6):
                    stream = engine.stream(expr, {})
                    taken = (seed + round_number) % 5
                    values = [next(stream) for _ in range(taken)]
                    assert values == list(range(taken))
                    if (seed + round_number) % 2:
                        stream.close()  # abandoned mid-way
                    else:
                        rest = list(stream)
                        assert values + rest == list(range(50))
            except Exception as error:  # noqa: BLE001
                errors.append(f"thread {seed}: {error}")

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors, "\n".join(errors)
        assert EvalScope.live_count() == baseline_scopes
        assert engine.health()["live_scopes"] == baseline_scopes
