"""The plan store's crash-injection suite.

Paranoid-recovery contract under test: a truncated tail, a bit-flipped
record, a wrong-version journal, outright garbage, a kill mid-write, or a
full disk each degrade to "skip what's unreadable, surface books, plan
from what survives" — the loader never raises and never invents records,
and persistence failures never escape into query execution.
"""

import os
import threading

import pytest

from fault_files import FaultInjectingOpener
from repro.core.errors import PlanStoreError
from repro.core.planner.feedback import PlanFeedback
from repro.core.planner.store import (
    SCHEMA_VERSION,
    PlanStore,
    decode_record,
    encode_record,
    fingerprint_algorithm_version,
    read_journal,
)
from repro.kleisli.engine import KleisliEngine
from repro.kleisli.statistics import SourceStatisticsRegistry


def _fp(n=0):
    """A realistic fingerprint: nested tuples, a frozenset, mixed scalars."""
    return ("Ext", ("Var", 0),
            ("Scan", "d", (("dict", (("table", ("str", f"t{n}")),)),),
             frozenset({("a", n), ("b", 2.5)}), None, True),
            ("Const", ("int", n)))


def _obs(cardinality=10.0, runs=1):
    return {"cardinality": cardinality, "runs": runs,
            "stages": {"pipeline": [10.0, 0.5, 2.0],
                       "scan:d": [4.0, 0.25, 2.0]}}


#: The suite's frozen "now": explicit record timestamps are offsets from
#: this, so nothing ever ages past MAX_AGE behind the tests' backs.
_NOW = 1_000_000.0


def _store(path, **kwargs):
    kwargs.setdefault("stats_interval", 10_000.0)  # no piggyback noise
    kwargs.setdefault("compact_bytes", 0)          # no auto-compaction
    kwargs.setdefault("clock", lambda: _NOW)
    return PlanStore(os.fspath(path), **kwargs)


def _written_journal(tmp_path, records=3):
    """A valid journal with ``records`` feedback records; returns its bytes."""
    store = _store(tmp_path / "store")
    for i in range(records):
        assert store.append_feedback(_fp(i), _obs(), ts=_NOW + i)
    store.close()
    with open(store.journal_path, "rb") as handle:
        return store.journal_path, handle.read()


def _balanced(books, data=None):
    """The books must account for every byte: loaded + skipped = written."""
    assert books["records_skipped_corrupt"] >= 0
    assert books["records_loaded"] >= 0
    if data is not None:
        parsed, skipped = read_journal(data)
        assert books["skipped_bytes"] == skipped


# -- record framing ----------------------------------------------------------

def test_record_roundtrip_and_header_framing():
    record = {"kind": "feedback", "ts": 1.5, "key": ["t", "Ext", 3],
              "obs": _obs()}
    frame = encode_record(record)
    decoded, offset = decode_record(frame)
    assert decoded == record
    assert offset == len(frame)
    # Trailing partial frame: one good record, torn tail skipped.
    records, skipped = read_journal(frame + frame[:5])
    assert records == [record]
    assert skipped == 5


def test_oversized_record_is_refused_not_written():
    with pytest.raises(PlanStoreError):
        encode_record({"blob": "x" * (5 * 1024 * 1024)})


def test_unpersistable_fingerprint_is_skipped_and_counted(tmp_path):
    class Opaque:
        pass

    store = _store(tmp_path / "store")
    assert store.append_feedback(("unhashable", Opaque()), _obs()) is False
    assert store.books()["unpersistable"] == 1
    # The refusal did not poison the writer: a good record still lands.
    assert store.append_feedback(_fp(), _obs())
    store.close()


# -- torn writes: truncate at every byte offset ------------------------------

def test_truncation_at_every_offset_never_raises_never_invents(tmp_path):
    journal_path, data = _written_journal(tmp_path, records=3)
    full_records, _ = read_journal(data)
    assert len(full_records) == 4  # header + 3 feedback records
    for cut in range(len(data)):
        with open(journal_path, "wb") as handle:
            handle.write(data[:cut])
        store = _store(tmp_path / "store")
        state = store.load()  # must never raise
        books = store.books()
        # Never invents: everything recovered is a prefix of the real
        # records, and the books account for the cut bytes.
        prefix, skipped = read_journal(data[:cut])
        assert len(state.feedback) == max(0, len(prefix) - 1)
        assert skipped == cut - sum(
            len(encode_record(record)) for record in prefix)
        for i, (key, obs, ts) in enumerate(state.feedback):
            assert key == _fp(i)
            assert ts == _NOW + i
        if prefix and skipped:
            assert books["records_skipped_corrupt"] >= 1
        store.close()


def test_bit_flip_at_every_offset_never_raises_never_invents(tmp_path):
    journal_path, data = _written_journal(tmp_path, records=3)
    for position in range(len(data)):
        corrupt = bytearray(data)
        corrupt[position] ^= 0x40
        with open(journal_path, "wb") as handle:
            handle.write(bytes(corrupt))
        store = _store(tmp_path / "store")
        state = store.load()  # must never raise
        # Whatever survives is a prefix of the true records — a flipped
        # length field must not let the loader resync onto garbage.
        for i, (key, obs, ts) in enumerate(state.feedback):
            assert key == _fp(i)
            assert obs == _obs()
        assert len(state.feedback) <= 3
        store.close()


def test_garbage_empty_and_missing_stores_load_clean(tmp_path):
    # Missing directory entirely.
    store = _store(tmp_path / "never-created")
    state = store.load()
    assert state.empty
    store.close()
    # Empty directory.
    os.makedirs(tmp_path / "empty")
    store = _store(tmp_path / "empty")
    assert store.load().empty
    store.close()
    # Pure garbage in both a journal and the snapshot.
    os.makedirs(tmp_path / "garbage")
    with open(tmp_path / "garbage" / "journal-1-deadbeef.kjl", "wb") as handle:
        handle.write(os.urandom(512))
    with open(tmp_path / "garbage" / "snapshot.kjs", "wb") as handle:
        handle.write(b"\xff" * 64)
    store = _store(tmp_path / "garbage")
    state = store.load()
    assert state.empty
    books = store.books()
    assert books["records_skipped_corrupt"] >= 1
    assert books["entries_loaded"] == 0
    store.close()


# -- version guards ----------------------------------------------------------

def _write_raw_journal(path, header, *records):
    with open(path, "wb") as handle:
        handle.write(encode_record(header))
        for record in records:
            handle.write(encode_record(record))


def test_wrong_schema_version_journal_skipped_wholesale(tmp_path):
    directory = tmp_path / "store"
    os.makedirs(directory)
    header = {"kind": "header", "version": SCHEMA_VERSION + 1,
              "fpv": fingerprint_algorithm_version(), "ts": 1.0}
    _write_raw_journal(directory / "journal-1-aaaa.kjl", header,
                       {"kind": "feedback", "ts": 2.0, "key": ["t", "X"],
                        "obs": _obs()})
    store = _store(directory)
    state = store.load()
    assert state.empty
    assert store.books()["journals_skipped_version"] == 1
    store.close()


def test_wrong_fingerprint_algorithm_journal_skipped_wholesale(tmp_path):
    directory = tmp_path / "store"
    os.makedirs(directory)
    header = {"kind": "header", "version": SCHEMA_VERSION,
              "fpv": "000000000000", "ts": 1.0}
    _write_raw_journal(directory / "journal-1-aaaa.kjl", header,
                       {"kind": "feedback", "ts": 2.0, "key": ["t", "X"],
                        "obs": _obs()})
    store = _store(directory)
    assert store.load().empty
    assert store.books()["journals_skipped_version"] == 1
    store.close()


def test_wrong_version_snapshot_skipped(tmp_path):
    directory = tmp_path / "store"
    os.makedirs(directory)
    snapshot = {"kind": "snapshot", "version": SCHEMA_VERSION + 1,
                "fpv": fingerprint_algorithm_version(), "ts": 1.0,
                "feedback": [], "statistics": {}}
    with open(directory / "snapshot.kjs", "wb") as handle:
        handle.write(encode_record(snapshot))
    store = _store(directory)
    assert store.load().empty
    assert store.books()["journals_skipped_version"] == 1
    store.close()


# -- kill mid-write / full disk ----------------------------------------------

def test_kill_mid_write_leaves_recoverable_prefix(tmp_path):
    directory = tmp_path / "store"
    # First, size one full append so the crash lands mid-record ....
    probe = _store(directory / "probe")
    probe.append_feedback(_fp(0), _obs(), ts=1.0)
    record_bytes = probe.books()["journal_bytes"]
    probe.close()
    # ... then crash a fresh store midway through its third record.
    opener = FaultInjectingOpener(crash_after_bytes=record_bytes * 2 + 10)
    store = _store(directory, opener=opener)
    survived = []
    for i in range(5):
        if store.append_feedback(_fp(i), _obs(), ts=_NOW + i):
            survived.append(i)
    books = store.books()
    assert opener.crashed
    assert books["append_failures"] >= 1
    assert books["writer_disabled"] is True
    # The kill must not escape as an exception (asserted by arriving here)
    # and recovery sees exactly the fully-written prefix: the torn record
    # and everything after it are gone, nothing is invented.
    recovery = _store(directory)
    state = recovery.load()
    loaded_keys = [key for key, _obs_state, _ts in state.feedback]
    assert loaded_keys == [_fp(i) for i in survived]
    assert recovery.books()["skipped_bytes"] > 0
    recovery.close()


def test_full_disk_disables_writer_without_raising(tmp_path):
    opener = FaultInjectingOpener(fail_writes_from=3)
    store = _store(tmp_path / "store", opener=opener)
    results = [store.append_feedback(_fp(i), _obs(), ts=_NOW + i)
               for i in range(8)]
    assert results[0] is True            # header + first record fit
    assert not any(results[1:])          # then the disk filled
    books = store.books()
    assert books["append_failures"] >= 1
    assert books["writer_disabled"] is True
    store.flush()                        # still must not raise
    store.close()
    # What landed before the disk filled is still recoverable.
    recovery = _store(tmp_path / "store")
    state = recovery.load()
    assert [key for key, _o, _t in state.feedback] == [_fp(0)]
    recovery.close()


# -- snapshot + compaction ---------------------------------------------------

def _provider(entries, statistics=None):
    return lambda: (entries, statistics
                    or {"cardinalities": [], "observed_latency": {}})


def test_compaction_is_atomic_and_resets_own_journal(tmp_path):
    store = _store(tmp_path / "store")
    for i in range(4):
        store.append_feedback(_fp(i), _obs(), ts=_NOW + i)
    grown = store.books()["journal_bytes"]
    store.state_provider = _provider(
        [(_fp(i), _obs(), _NOW + i) for i in range(4)],
        {"cardinalities": [["d", "t", 123]],
         "observed_latency": {"d": 0.08}})
    assert store.compact() is True
    books = store.books()
    assert books["compactions"] == 1
    assert books["journal_bytes"] < grown            # folded into snapshot
    assert os.path.exists(store.snapshot_path)
    assert not [name for name in os.listdir(store.path)
                if ".tmp-" in name]                  # no abandoned temps
    store.close()
    # Recovery: the snapshot alone carries everything.
    recovery = _store(tmp_path / "store")
    state = recovery.load()
    assert [key for key, _o, _t in state.feedback] == [_fp(i)
                                                       for i in range(4)]
    assert state.statistics["observed_latency"] == {"d": 0.08}
    assert state.statistics["cardinalities"] == [["d", "t", 123]]
    assert recovery.books()["snapshot_loaded"] == 1
    recovery.close()


def test_lock_contention_skips_compaction_not_data(tmp_path):
    store_a = _store(tmp_path / "store")
    store_b = _store(tmp_path / "store")
    store_a.state_provider = _provider([(_fp(0), _obs(), _NOW)])
    store_b.state_provider = _provider([(_fp(1), _obs(), _NOW)])
    lock = store_a._acquire_dir_lock()
    assert lock is not None
    try:
        assert store_b.compact() is False
        assert store_b.books()["compactions_skipped"] == 1
    finally:
        store_a._release_dir_lock(lock)
    assert store_b.compact() is True
    store_a.close()
    store_b.close()


# -- merge, decay, staleness -------------------------------------------------

def test_cross_journal_merge_newest_timestamp_wins(tmp_path):
    directory = tmp_path / "store"
    old = _store(directory)
    old.append_feedback(_fp(0), _obs(cardinality=10.0), ts=_NOW + 100.0)
    old.close()
    new = _store(directory)
    new.append_feedback(_fp(0), _obs(cardinality=99.0), ts=_NOW + 200.0)
    new.append_feedback(_fp(1), _obs(cardinality=7.0), ts=_NOW + 150.0)
    new.close()
    reader = _store(directory)
    state = reader.load()
    merged = {key: obs for key, obs, _ts in state.feedback}
    assert merged[_fp(0)]["cardinality"] == 99.0     # newest wins
    assert merged[_fp(1)]["cardinality"] == 7.0
    assert reader.books()["journals_merged"] == 2
    reader.close()


def test_staleness_decay_and_expiry_on_load(tmp_path):
    now = [1_000_000.0]
    directory = tmp_path / "store"
    writer = _store(directory, clock=lambda: now[0])
    writer.append_feedback(_fp(0), _obs(runs=8))            # fresh-ish
    writer.append_feedback(_fp(1), _obs(runs=8),
                           ts=now[0] - 8 * 24 * 3600.0)     # past MAX_AGE
    writer.close()
    # Two half-lives later: runs 8 -> 2; the ancient entry expires.
    now[0] += 2 * PlanStore.DECAY_HALF_LIFE
    reader = _store(directory, clock=lambda: now[0])
    state = reader.load()
    assert [key for key, _o, _t in state.feedback] == [_fp(0)]
    assert state.feedback[0][1]["runs"] == 2
    assert reader.books()["records_expired"] == 1
    reader.close()


# -- concurrent writer soak --------------------------------------------------

def test_concurrent_four_writer_soak_balanced_books(tmp_path):
    directory = tmp_path / "store"
    WRITERS, RECORDS = 4, 25
    stores = [_store(directory) for _ in range(WRITERS)]
    errors = []

    def hammer(worker, store):
        try:
            for i in range(RECORDS):
                ordinal = worker * RECORDS + i
                assert store.append_feedback(
                    _fp(ordinal), _obs(cardinality=float(ordinal)),
                    ts=_NOW + ordinal)
                if i % 10 == 9:
                    store.flush()
        except Exception as error:  # noqa: BLE001 - the assertion below
            errors.append(error)

    threads = [threading.Thread(target=hammer, args=(w, s))
               for w, s in enumerate(stores)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert errors == []
    appended = sum(s.books()["records_appended"] for s in stores)
    for store in stores:
        store.close()
    # Every worker's every record survives the merge, none invented, and
    # the books balance: loaded records == appended feedback + the flush
    # statistics records the soak wrote.
    reader = _store(directory)
    state = reader.load()
    books = reader.books()
    assert len(state.feedback) == WRITERS * RECORDS
    assert {key for key, _o, _t in state.feedback} == {
        _fp(n) for n in range(WRITERS * RECORDS)}
    assert books["journals_merged"] == WRITERS
    assert books["records_loaded"] == appended
    assert books["records_skipped_corrupt"] == 0
    assert books["skipped_bytes"] == 0
    reader.close()


def test_compaction_does_not_lose_live_sibling_journals(tmp_path):
    directory = tmp_path / "store"
    sibling = _store(directory)
    sibling.append_feedback(_fp(0), _obs(), ts=_NOW + 10.0)
    sibling.flush()
    compactor = _store(directory)
    compactor.append_feedback(_fp(1), _obs(), ts=_NOW + 20.0)
    compactor.state_provider = _provider([(_fp(1), _obs(), _NOW + 20.0)])
    assert compactor.compact() is True
    # The sibling's journal must still be on disk (only dead journals past
    # MAX_AGE are swept) and its record must survive a merge.
    assert os.path.exists(sibling.journal_path)
    reader = _store(directory)
    state = reader.load()
    assert {key for key, _o, _t in state.feedback} == {_fp(0), _fp(1)}
    reader.close()
    sibling.close()
    compactor.close()


# -- engine integration ------------------------------------------------------

def test_engine_attach_load_health_and_warm_start(tmp_path):
    directory = tmp_path / "store"
    first = KleisliEngine(plan_store=_store(directory))
    fingerprint = _fp(7)
    first.plan_feedback.record(fingerprint,
                               {"pipeline": (20.0, 1.0, 4.0)}, 20.0)
    first.statistics_registry.record_latency_sample("slow", 0.08)
    books = first.health()["persistence"]
    assert books["attached"] is True
    assert books["records_appended"] >= 1
    first.flush_plan_store()
    first.plan_store.close()

    second = KleisliEngine(plan_store=_store(directory))
    warm = second.plan_feedback.lookup(fingerprint)
    assert warm is not None
    assert warm.cardinality == 20.0
    assert second.statistics_registry.observed_latency("slow") == \
        pytest.approx(0.08)
    assert second.statistics_registry.is_remote("slow")
    loaded = second.health()["persistence"]
    assert loaded["entries_loaded"] >= 2
    second.plan_store.close()


def test_storeless_engine_reports_detached_books():
    engine = KleisliEngine()
    assert engine.health()["persistence"] == {"attached": False}
    engine.flush_plan_store()  # no-op, must not raise


def test_live_knowledge_outranks_restored_state(tmp_path):
    directory = tmp_path / "store"
    writer = _store(directory)
    writer.append_feedback(_fp(0), _obs(cardinality=10.0), ts=_NOW)
    writer.append_statistics({"cardinalities": [["d", "t", 50]],
                              "observed_latency": {"d": 0.2}}, ts=_NOW)
    writer.close()
    # An engine that already learned its own numbers ...
    feedback = PlanFeedback()
    feedback.record(_fp(0), {"pipeline": (5.0, 0.1, 1.0)}, 5.0)
    registry = SourceStatisticsRegistry()
    registry.register_cardinality("d", "t", 999)
    registry.record_latency_sample("d", 0.5)
    # ... keeps them through a restore.
    reader = _store(directory)
    state = reader.load()
    feedback.restore(state.feedback)
    registry.restore(state.statistics)
    assert feedback.lookup(_fp(0)).cardinality == 5.0
    assert registry.cardinality("d", "t") == 999
    assert registry.observed_latency("d") == pytest.approx(0.5)
    reader.close()


def test_snapshot_restore_roundtrip_preserves_updated_timestamps():
    feedback = PlanFeedback(clock=lambda: 123.0)
    feedback.record(_fp(0), {"pipeline": (10.0, 0.5, 2.0)}, 10.0)
    exported = feedback.snapshot()
    assert exported[0][2] == 123.0
    fresh = PlanFeedback()
    assert fresh.restore(exported) == 1
    assert fresh.snapshot()[0][2] == 123.0           # age survives the hop
    observation = fresh.lookup(_fp(0))
    assert observation.unit_cost() == pytest.approx(0.05)


# -- dead-writer journal sweep ------------------------------------------------

def _dead_pid():
    """A PID that provably belongs to no process: a reaped child's."""
    import subprocess
    import sys
    proc = subprocess.Popen([sys.executable, "-c", "pass"])
    proc.wait()
    return proc.pid


def test_compaction_sweeps_dead_writer_journal_and_rescues_records(tmp_path):
    directory = tmp_path / "store"
    crashed = _store(directory)
    crashed.append_feedback(_fp(0), _obs(cardinality=42.0), ts=_NOW + 10.0)
    crashed.flush()
    crashed.close()
    # Rebrand the journal as a provably-dead writer's: the sweep keys on
    # the PID baked into the filename, exactly what a crashed process
    # leaves behind.
    dead_path = os.path.join(
        os.fspath(directory), f"journal-{_dead_pid()}-deadbeef.kjl")
    os.rename(crashed.journal_path, dead_path)

    compactor = _store(directory)
    compactor.append_feedback(_fp(1), _obs(), ts=_NOW + 20.0)
    compactor.state_provider = _provider([(_fp(1), _obs(), _NOW + 20.0)])
    assert compactor.compact() is True
    # Swept immediately — no 7-day age-out — with the dead writer's
    # records rescued into the compactor's own journal first.
    assert not os.path.exists(dead_path)
    books = compactor.books()
    assert books["journals_swept"] == 1
    assert books["records_rescued"] == 1
    compactor.close()

    reader = _store(directory)
    state = reader.load()
    merged = {key: obs for key, obs, _ts in state.feedback}
    assert merged[_fp(0)]["cardinality"] == 42.0     # rescued, not lost
    assert _fp(1) in merged
    reader.close()


def test_sweep_leaves_live_and_unparsable_writer_journals(tmp_path):
    directory = tmp_path / "store"
    live = _store(directory)                      # own (live) PID in the name
    live.append_feedback(_fp(0), _obs(), ts=_NOW + 10.0)
    live.flush()
    unparsable = os.path.join(os.fspath(directory),
                              "journal-notapid-aaaa1111.kjl")
    with open(unparsable, "wb") as handle:
        handle.write(b"\x00garbage")

    compactor = _store(directory)
    compactor.append_feedback(_fp(1), _obs(), ts=_NOW + 20.0)
    compactor.state_provider = _provider([(_fp(1), _obs(), _NOW + 20.0)])
    assert compactor.compact() is True
    # A live writer's journal and a no-PID file both wait for the age-out.
    assert os.path.exists(live.journal_path)
    assert os.path.exists(unparsable)
    assert compactor.books()["journals_swept"] == 0
    live.close()
    compactor.close()


def test_sweep_rescues_nothing_from_wrong_version_dead_journal(tmp_path):
    directory = tmp_path / "store"
    dead_path = os.path.join(
        os.fspath(directory), f"journal-{_dead_pid()}-cafecafe.kjl")
    os.makedirs(os.fspath(directory), exist_ok=True)
    header = dict(kind="header", version=999_999,
                  fingerprint_algorithm="nothing-anyone-knows")
    _write_raw_journal(dead_path, header,
                       {"kind": "feedback", "fingerprint": ["Ext", 7],
                        "state": _obs(), "updated": _NOW})
    compactor = _store(directory)
    compactor.append_feedback(_fp(1), _obs(), ts=_NOW + 20.0)
    compactor.state_provider = _provider([(_fp(1), _obs(), _NOW + 20.0)])
    assert compactor.compact() is True
    # The incompatible journal is still removed (its writer is gone and
    # nothing can ever read it) but no record crosses the version fence.
    assert not os.path.exists(dead_path)
    books = compactor.books()
    assert books["journals_swept"] == 1
    assert books["records_rescued"] == 0
    compactor.close()
