"""Tests for the Kleisli drivers against their substrates."""

import pytest

from repro.core.errors import DriverError, DriverNotRegisteredError
from repro.core.values import CSet, Record, Ref
from repro.formats.fasta import write_fasta
from repro.kleisli.drivers import (
    AceDriver,
    BlastDriver,
    EntrezDriver,
    FlatFileDriver,
    RelationalDriver,
)
from repro.kleisli.engine import KleisliEngine
from repro.kleisli.tokens import TokenStream


class TestRelationalDriver:
    def test_table_scan(self, chr22_dataset):
        driver = RelationalDriver("GDB", chr22_dataset.gdb)
        result = driver.execute({"table": "locus"})
        assert isinstance(result, CSet)
        assert len(result) == len(chr22_dataset.gdb.table("locus"))

    def test_raw_sql_request(self, chr22_dataset):
        driver = RelationalDriver("GDB", chr22_dataset.gdb)
        result = driver.execute({"query": "select locus_symbol from locus where locus_id = 1"})
        assert len(result) == 1

    def test_where_and_columns_request(self, chr22_dataset):
        driver = RelationalDriver("GDB", chr22_dataset.gdb)
        result = driver.execute({"table": "locus", "columns": ["locus_symbol"],
                                 "where": [{"column": "chromosome", "op": "=", "value": "22"}]})
        assert all(record.labels == ("locus_symbol",) for record in result)

    def test_string_literal_escaping(self, chr22_dataset):
        driver = RelationalDriver("GDB", chr22_dataset.gdb)
        result = driver.execute({"table": "locus",
                                 "where": [{"column": "locus_symbol", "op": "=",
                                            "value": "it's"}]})
        assert result == CSet()

    def test_lazy_mode_returns_token_stream(self, chr22_dataset):
        driver = RelationalDriver("GDB", chr22_dataset.gdb, lazy=True)
        result = driver.execute({"table": "locus"})
        assert isinstance(result, TokenStream)
        assert len(result.to_collection()) == len(chr22_dataset.gdb.table("locus"))

    def test_bad_request_rejected(self, chr22_dataset):
        driver = RelationalDriver("GDB", chr22_dataset.gdb)
        with pytest.raises(DriverError):
            driver.execute({"nonsense": True})

    def test_capabilities_and_statistics(self, chr22_dataset):
        driver = RelationalDriver("GDB", chr22_dataset.gdb)
        assert "sql" in driver.capabilities
        assert "locus" in driver.collection_names()
        assert driver.cardinality("locus") == len(chr22_dataset.gdb.table("locus"))


class TestEntrezDriver:
    def test_select_with_path(self, chr22_dataset):
        driver = EntrezDriver("GenBank", chr22_dataset.genbank)
        result = driver.execute({"db": "na", "select": "chromosome 22",
                                 "path": "Seq-entry.accession"})
        assert all(isinstance(value, str) for value in result)

    def test_links_request(self, chr22_dataset):
        driver = EntrezDriver("GenBank", chr22_dataset.genbank)
        division = chr22_dataset.genbank.division("na")
        uid = next(uid for uid, links in division.links.items() if len(links))
        result = driver.execute({"db": "na", "links": uid})
        assert len(result) >= 1
        assert all(record.has_field("organism") for record in result)

    def test_fetch_request(self, chr22_dataset):
        driver = EntrezDriver("GenBank", chr22_dataset.genbank)
        uid = next(iter(chr22_dataset.genbank.division("na").entries))
        entry = driver.execute({"db": "na", "fetch": uid})
        assert entry.has_field("accession")

    def test_bad_request_rejected(self, chr22_dataset):
        driver = EntrezDriver("GenBank", chr22_dataset.genbank)
        with pytest.raises(DriverError):
            driver.execute({"db": "na"})


class TestAceDriver:
    def test_class_scan_and_object_fetch(self, chr22_dataset):
        driver = AceDriver("ACE22", chr22_dataset.acedb)
        classes = driver.execute({"classes": True})
        assert "Locus" in classes
        loci = driver.execute({"class": "Locus"})
        assert len(loci) > 0
        first = next(iter(loci))
        one = driver.execute({"class": "Locus", "object": first.project("name")})
        assert one.project("name") == first.project("name")

    def test_references_resolve_through_store(self, chr22_dataset):
        driver = AceDriver("ACE22", chr22_dataset.acedb)
        locus = next(iter(driver.execute({"class": "Locus"})))
        contig_ref = locus.project("Contig")
        assert isinstance(contig_ref, Ref)
        assert contig_ref.deref().project("Chromosome") == "22"


class TestFlatFileAndBlastDrivers:
    def test_flatfile_reads_inline_fasta(self, chr22_dataset):
        driver = FlatFileDriver("Files")
        text = write_fasta(chr22_dataset.fasta_library[:3])
        values = driver.execute({"format": "fasta", "text": text})
        assert len(values) == 3

    def test_flatfile_reads_from_disk(self, tmp_path, chr22_dataset):
        path = tmp_path / "library.fa"
        path.write_text(write_fasta(chr22_dataset.fasta_library[:2]))
        driver = FlatFileDriver("Files", root=str(tmp_path))
        values = driver.execute({"format": "fasta", "file": "library.fa"})
        assert len(values) == 2

    def test_flatfile_missing_file(self):
        driver = FlatFileDriver("Files")
        with pytest.raises(DriverError):
            driver.execute({"format": "fasta", "file": "/nonexistent/path.fa"})

    def test_blast_driver_finds_similar_sequences(self, chr22_dataset):
        library = {record.identifier: record.sequence
                   for record in chr22_dataset.fasta_library}
        driver = BlastDriver("BLAST", library)
        query_id = chr22_dataset.fasta_library[0].identifier
        hits = driver.execute({"query_id": query_id, "min_score": 30})
        assert any(hit.project("subject") == query_id for hit in hits)  # self hit

    def test_blast_driver_bad_requests(self):
        driver = BlastDriver("BLAST", {"a": "ACGT"})
        with pytest.raises(DriverError):
            driver.execute({})
        with pytest.raises(DriverError):
            driver.execute({"query_id": "missing"})


class TestEngineRegistry:
    def test_registration_exposes_functions_and_statistics(self, chr22_dataset):
        engine = KleisliEngine()
        engine.register_driver(RelationalDriver("GDB", chr22_dataset.gdb))
        assert "GDB-Tab" in engine.driver_functions
        assert engine.statistics_registry.cardinality("GDB", "locus") > 0

    def test_unregister(self, chr22_dataset):
        engine = KleisliEngine()
        engine.register_driver(RelationalDriver("GDB", chr22_dataset.gdb))
        engine.unregister_driver("GDB")
        assert "GDB-Tab" not in engine.driver_functions
        with pytest.raises(DriverNotRegisteredError):
            engine.driver("GDB")

    def test_unknown_driver_request_fails(self):
        engine = KleisliEngine()
        with pytest.raises(DriverNotRegisteredError):
            engine.driver_executor("NoSuchDriver", {})
