"""The driver resilience layer: retries, breakers, deadlines, recovery.

The acceptance contract this file pins:

* transient faults (pre-open AND mid-stream) recover to **bit-identical**
  results — value and ``elements_fetched`` — across all three lowerings,
  with zero cursor leaks;
* terminal faults are never retried; retry budgets are bounded;
* the circuit breaker trips after consecutive failures, fails fast while
  open, feeds planner availability, and re-closes through a half-open probe;
* degraded federated runs return partial results carrying typed
  ``SourceDegradedWarning`` records — never silent truncation;
* zero-fault runs are bit-for-bit unchanged with the layer installed, and
  drivers with no configured policy keep the exact legacy behavior.

Everything is deterministic: fault schedules key on request ordinals, and
the clock/sleeper hooks mean no test ever sleeps.
"""

import pytest

from repro.core.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    DriverError,
    DriverTimeoutError,
    RemoteSourceError,
    TransientDriverError,
    is_retryable_fault,
)
from repro.core.nrc import ast as A
from repro.core.nrc import builder as B
from repro.core.nrc.compile import ChunkPolicy
from repro.core.nrc.eval import EvalScope
from repro.kleisli.engine import KleisliEngine
from repro.kleisli.resilience import (
    CircuitBreaker,
    CircuitBreakerPolicy,
    ResilienceLayer,
    RetryPolicy,
)
from repro.net.remote import RemoteSource

from fault_drivers import FaultInjectingDriver


class FakeClock:
    """A deterministic clock + sleeper pair: sleeping advances the clock."""

    def __init__(self, start: float = 0.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def sleep(self, seconds: float) -> None:
        self.now += seconds


#: A retry policy that never sleeps (tests that don't exercise backoff).
FAST_RETRY = RetryPolicy(max_attempts=3, backoff_base=0.0)


def _scan_term(driver="Faulty", count=8):
    return B.ext("x", B.singleton(B.var("x"), "list"),
                 A.Scan(driver, {"table": "t", "count": count}, kind="list"),
                 kind="list")


def _make_engine(policy=FAST_RETRY, breaker=None, **driver_kwargs):
    driver_kwargs.setdefault("fault_type", TransientDriverError)
    engine = KleisliEngine()
    driver = engine.register_driver(FaultInjectingDriver(**driver_kwargs))
    if policy is not None or breaker is not None:
        engine.configure_resilience(driver.name, policy, breaker)
    return engine, driver


def _drain(engine, term, lowering, **kwargs):
    """Run one term under one lowering; return (values, elements_fetched)."""
    if lowering == "eager":
        value = engine.execute(term, optimize=False, **kwargs)
        values = list(value)
    elif lowering == "stream":
        values = list(engine.stream(term, optimize=False, chunked=False,
                                    **kwargs))
    else:
        values = list(engine.stream(term, optimize=False, chunked=True,
                                    **kwargs))
    return values, engine.last_eval_statistics.elements_fetched


LOWERINGS = ["eager", "stream", "chunked"]


# ---------------------------------------------------------------------------
# Classification
# ---------------------------------------------------------------------------


class TestFaultTaxonomy:
    def test_retryable_classes(self):
        assert is_retryable_fault(RemoteSourceError("cap"))
        assert is_retryable_fault(TransientDriverError("blip"))
        assert is_retryable_fault(DriverTimeoutError("d", 0.2, 0.1))
        assert is_retryable_fault(ConnectionError("reset"))
        assert is_retryable_fault(TimeoutError("slow"))

    def test_terminal_classes(self):
        assert not is_retryable_fault(DriverError("malformed"))
        assert not is_retryable_fault(DeadlineExceededError("d"))
        assert not is_retryable_fault(CircuitOpenError("d"))
        assert not is_retryable_fault(ValueError("bug"))


# ---------------------------------------------------------------------------
# Retries (pre-open faults)
# ---------------------------------------------------------------------------


class TestRetries:
    @pytest.mark.parametrize("lowering", LOWERINGS)
    def test_transient_pre_open_fault_recovers_bit_identically(self, lowering):
        baseline_engine, _ = _make_engine(policy=None)
        expected = _drain(baseline_engine, _scan_term(), lowering)

        engine, driver = _make_engine(fail_on={1})
        got = _drain(engine, _scan_term(), lowering)
        assert got == expected
        assert driver.faults_raised == 1
        assert driver.requests_served == 2  # the fault + the successful retry
        assert engine.last_eval_statistics.retries == 1

    def test_terminal_fault_is_never_retried(self):
        engine, driver = _make_engine(fail_on={1}, fault_type=DriverError)
        with pytest.raises(DriverError):
            engine.execute(_scan_term(), optimize=False)
        assert driver.requests_served == 1

    def test_retry_budget_is_bounded(self):
        engine, driver = _make_engine(fail_on={1, 2, 3, 4, 5})
        with pytest.raises(TransientDriverError):
            engine.execute(_scan_term(), optimize=False)
        assert driver.requests_served == FAST_RETRY.max_attempts

    def test_unconfigured_driver_keeps_legacy_failure_behavior(self):
        engine, driver = _make_engine(policy=None, fail_on={1})
        with pytest.raises(TransientDriverError):
            engine.execute(_scan_term(), optimize=False)
        assert driver.requests_served == 1  # no resilience => no retry

    def test_backoff_schedule_is_deterministic_and_capped(self):
        policy = RetryPolicy(max_attempts=5, backoff_base=0.1,
                             backoff_multiplier=2.0, backoff_cap=0.3)
        assert [policy.backoff_for(n) for n in (1, 2, 3, 4)] \
            == [0.1, 0.2, 0.3, 0.3]
        jittered = RetryPolicy(backoff_base=0.1,
                               jitter=lambda attempt, delay: delay / 2)
        assert jittered.backoff_for(1) == pytest.approx(0.05)

    def test_backoff_sleeps_through_the_injected_sleeper(self):
        clock = FakeClock()
        engine, driver = _make_engine(
            policy=RetryPolicy(max_attempts=3, backoff_base=0.25,
                               backoff_multiplier=2.0, backoff_cap=10.0),
            fail_on={1, 2})
        engine.resilience.clock = clock
        engine.resilience.sleeper = clock.sleep
        values, _ = _drain(engine, _scan_term(), "eager")
        assert values == list(range(8))
        # Two retries: 0.25 then 0.5 on the fake clock, zero real sleeping.
        assert clock.now == pytest.approx(0.75)


# ---------------------------------------------------------------------------
# Mid-stream cursor recovery
# ---------------------------------------------------------------------------


class TestMidstreamRecovery:
    @pytest.mark.parametrize("lowering", LOWERINGS)
    def test_midstream_fault_recovers_bit_identically(self, lowering):
        baseline_engine, _ = _make_engine(policy=None)
        expected = _drain(baseline_engine, _scan_term(), lowering)

        engine, driver = _make_engine(midstream_fail_on={1},
                                      midstream_after=3)
        got = _drain(engine, _scan_term(), lowering)
        assert got == expected, (
            "recovered run must match the fault-free run in values AND "
            "elements_fetched accounting")
        assert driver.open_cursors == 0, "recovery leaked a cursor"
        stats = engine.last_eval_statistics
        assert stats.recovered_faults == 1
        assert stats.retries == 1

    @pytest.mark.parametrize("lowering", LOWERINGS)
    def test_multiple_midstream_faults_recover(self, lowering):
        baseline_engine, _ = _make_engine(policy=None, total=12)
        expected = _drain(baseline_engine, _scan_term(count=12), lowering)

        # The first cursor dies at 2 elements, its replacement at 5; the
        # third issue drains.  Progress between faults resets the budget.
        engine, driver = _make_engine(
            total=12, midstream_fail_on={1, 2},
            midstream_after={1: 2, 2: 5})
        got = _drain(engine, _scan_term(count=12), lowering)
        assert got == expected
        assert driver.open_cursors == 0
        assert engine.last_eval_statistics.recovered_faults == 2

    def test_consecutive_midstream_faults_exhaust_the_budget(self):
        # Every cursor dies at element 0: no progress is ever made, so the
        # consecutive-failure budget (max_attempts - 1 recoveries) runs out.
        engine, driver = _make_engine(
            midstream_fail_on={1, 2, 3, 4, 5}, midstream_after=0)
        with pytest.raises(TransientDriverError):
            list(engine.stream(_scan_term(), optimize=False))
        assert driver.open_cursors == 0
        assert driver.requests_served == FAST_RETRY.max_attempts

    def test_no_scope_leak_across_recovered_streams(self):
        baseline = EvalScope.live_count()
        engine, driver = _make_engine(midstream_fail_on={1, 3},
                                      midstream_after=2)
        for _ in range(2):
            assert list(engine.stream(_scan_term(), optimize=False)) \
                == list(range(8))
        assert EvalScope.live_count() == baseline
        assert driver.open_cursors == 0

    def test_early_close_of_recovering_stream_releases_cursor(self):
        engine, driver = _make_engine(midstream_fail_on={1},
                                      midstream_after=2)
        stream = engine.stream(_scan_term(), optimize=False)
        assert [next(stream) for _ in range(4)] == [0, 1, 2, 3]
        assert driver.open_cursors == 1
        stream.close()
        assert driver.open_cursors == 0

    def test_shrunken_source_on_reissue_is_a_loud_error(self):
        # The replacement cursor is SHORTER than the already-delivered
        # prefix: recovery must refuse to silently truncate.
        class ShrinkingDriver(FaultInjectingDriver):
            def _execute(self, request):
                if self.requests_served >= 1:  # re-issues see a tiny source
                    request = dict(request, count=1)
                return super()._execute(request)

        engine = KleisliEngine()
        engine.register_driver(ShrinkingDriver(
            midstream_fail_on={1}, midstream_after=3,
            fault_type=TransientDriverError))
        engine.configure_resilience("Faulty", FAST_RETRY)
        with pytest.raises(DriverError, match="shorter stream"):
            list(engine.stream(_scan_term(), optimize=False))


# ---------------------------------------------------------------------------
# Per-request timeouts and the per-query deadline
# ---------------------------------------------------------------------------


class TestTimeoutsAndDeadlines:
    def _timed_engine(self, latency, policy, **driver_kwargs):
        clock = FakeClock()
        engine = KleisliEngine()
        driver = engine.register_driver(FaultInjectingDriver(
            latency=latency, sleeper=clock.sleep,
            fault_type=TransientDriverError, **driver_kwargs))
        engine.resilience.clock = clock
        engine.resilience.sleeper = clock.sleep
        engine.configure_resilience(driver.name, policy)
        return engine, driver, clock

    def test_slow_request_times_out_and_retries(self):
        # Request #1 stalls 0.2s (fake) against a 0.1s budget; #2 is fast.
        engine, driver, _clock = self._timed_engine(
            latency={1: 0.2},
            policy=RetryPolicy(max_attempts=2, backoff_base=0.0,
                               request_timeout=0.1))
        values, _ = _drain(engine, _scan_term(), "eager")
        assert values == list(range(8))
        assert driver.requests_served == 2
        health = engine.health()["resilience"]["Faulty"]
        assert health["timeouts"] == 1
        assert health["retries"] == 1

    def test_persistent_slowness_raises_timeout(self):
        engine, driver, _clock = self._timed_engine(
            latency=0.2,
            policy=RetryPolicy(max_attempts=2, backoff_base=0.0,
                               request_timeout=0.1))
        with pytest.raises(DriverTimeoutError):
            engine.execute(_scan_term(), optimize=False)
        assert driver.requests_served == 2

    def test_deadline_stops_retrying_mid_budget(self):
        # The first attempt burns 1.0s (fake) against a 0.5s query budget
        # and faults: the pre-retry deadline check fires — terminal, no
        # second attempt even though the retry budget has room.
        engine, driver, _clock = self._timed_engine(
            latency=1.0, fail_on={1},
            policy=RetryPolicy(max_attempts=5, backoff_base=0.0))
        with pytest.raises(DeadlineExceededError):
            engine.execute(_scan_term(), optimize=False, deadline=0.5)
        assert driver.requests_served == 1

    def test_backoff_never_sleeps_past_the_deadline(self):
        # The retry itself would fit, but its 10s backoff would not: fail
        # at the sleep decision, not 10 fake-seconds later.
        engine, driver, clock = self._timed_engine(
            latency=0.0, fail_on={1},
            policy=RetryPolicy(max_attempts=3, backoff_base=10.0,
                               backoff_cap=100.0))
        with pytest.raises(DeadlineExceededError):
            engine.execute(_scan_term(), optimize=False, deadline=5.0)
        assert clock.now < 5.0
        assert driver.requests_served == 1

    def test_deadline_is_not_degradable(self):
        engine, _driver, _clock = self._timed_engine(
            latency=1.0, fail_on={1},
            policy=RetryPolicy(max_attempts=5, backoff_base=0.0))
        with pytest.raises(DeadlineExceededError):
            engine.execute(_scan_term(), optimize=False, deadline=0.5,
                           on_source_failure="degrade")


# ---------------------------------------------------------------------------
# The circuit breaker
# ---------------------------------------------------------------------------


class TestCircuitBreaker:
    def test_trips_fails_fast_and_recloses_via_half_open_probe(self):
        clock = FakeClock()
        engine = KleisliEngine()
        driver = engine.register_driver(FaultInjectingDriver(
            fail_on={1, 2}, fault_type=TransientDriverError))
        engine.resilience.clock = clock
        engine.resilience.sleeper = clock.sleep
        engine.configure_resilience(
            "Faulty", RetryPolicy(max_attempts=1),
            CircuitBreakerPolicy(failure_threshold=2, recovery_time=30.0))
        term = _scan_term()

        for _ in range(2):  # two failures trip the breaker
            with pytest.raises(TransientDriverError):
                engine.execute(term, optimize=False)
        assert engine.resilience.breaker_for("Faulty").state \
            == CircuitBreaker.OPEN
        assert not engine.statistics_registry.is_available("Faulty")

        # Open: fail fast, the driver is never touched.
        with pytest.raises(CircuitOpenError):
            engine.execute(term, optimize=False)
        assert driver.requests_served == 2

        # Past the recovery time: the next request is the half-open probe;
        # it succeeds, so the breaker re-closes and availability returns.
        clock.sleep(31.0)
        values, _ = _drain(engine, term, "eager")
        assert values == list(range(8))
        breaker = engine.resilience.breaker_for("Faulty")
        assert breaker.state == CircuitBreaker.CLOSED
        assert engine.statistics_registry.is_available("Faulty")
        snapshot = breaker.snapshot()
        assert snapshot["trips"] == 1
        assert snapshot["probes"] == 1

    def test_failed_probe_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            "d", CircuitBreakerPolicy(failure_threshold=1, recovery_time=10.0),
            clock=clock)
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        clock.sleep(11.0)
        breaker.before_call()  # admitted as the probe
        assert breaker.state == CircuitBreaker.HALF_OPEN
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        # The re-open restarted the recovery clock.
        with pytest.raises(CircuitOpenError):
            breaker.before_call()

    def test_half_open_admits_one_probe_at_a_time(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            "d", CircuitBreakerPolicy(failure_threshold=1, recovery_time=1.0),
            clock=clock)
        breaker.record_failure()
        clock.sleep(2.0)
        breaker.before_call()
        with pytest.raises(CircuitOpenError):
            breaker.before_call()  # second caller rejected while probing
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_breaker_books_balance(self):
        clock = FakeClock()
        engine = KleisliEngine()
        engine.register_driver(FaultInjectingDriver(
            fail_on={2, 5}, fault_type=TransientDriverError))
        engine.resilience.clock = clock
        engine.configure_resilience(
            "Faulty", RetryPolicy(max_attempts=2, backoff_base=0.0),
            CircuitBreakerPolicy(failure_threshold=10))
        for _ in range(4):
            assert list(engine.execute(_scan_term(), optimize=False)) \
                == list(range(8))
        snapshot = engine.resilience.breaker_for("Faulty").snapshot()
        assert snapshot["failures"] == 2
        assert snapshot["successes"] == 4
        assert snapshot["state"] == CircuitBreaker.CLOSED

    def test_tripped_breaker_vetoes_planner_batching(self):
        class BatchDriver(FaultInjectingDriver):
            batch_single_round_trip = True

            def execute_batch(self, requests):
                return [self._execute(dict(request)) for request in requests]

        engine = KleisliEngine()
        engine.register_driver(BatchDriver(name="batchy", total=4096),
                               latency=0.02)
        engine.statistics_registry.register_cardinality("batchy", "t", 4096)
        term = _scan_term("batchy", count=4096)
        plan = engine.plan_for(term)
        assert plan.remote_max_chunk > ChunkPolicy.REMOTE_MAX_CHUNK

        # Trip: the engine's breaker hook marks the source unavailable and
        # the planner stops routing batching-aggressive scans at it.
        engine._note_breaker_event("batchy", CircuitBreaker.OPEN)
        tripped = engine.plan_for(term)
        assert tripped.remote_max_chunk == ChunkPolicy.REMOTE_MAX_CHUNK

        engine._note_breaker_event("batchy", CircuitBreaker.CLOSED)
        assert engine.plan_for(term).remote_max_chunk \
            > ChunkPolicy.REMOTE_MAX_CHUNK


# ---------------------------------------------------------------------------
# Graceful degradation (typed partial results)
# ---------------------------------------------------------------------------


class TestDegradation:
    def _federated_engine(self, **faulty_kwargs):
        faulty_kwargs.setdefault("fault_type", TransientDriverError)
        engine = KleisliEngine()
        engine.register_driver(FaultInjectingDriver(
            name="Healthy", fault_type=TransientDriverError))
        engine.register_driver(FaultInjectingDriver(**faulty_kwargs))
        engine.configure_resilience(
            "Faulty", RetryPolicy(max_attempts=2, backoff_base=0.0))
        term = B.union(_scan_term("Healthy", 4), _scan_term("Faulty", 4),
                       kind="list")
        return engine, term

    @pytest.mark.parametrize("lowering", LOWERINGS)
    def test_degraded_union_returns_partial_with_typed_warning(self, lowering):
        engine, term = self._federated_engine(fail_on={1, 2, 3, 4, 5, 6})
        values, _ = _drain(engine, term, lowering,
                           on_source_failure="degrade")
        assert values == list(range(4)), "healthy source must survive"
        warnings = engine.last_eval_statistics.warnings
        assert len(warnings) == 1
        warning = warnings[0]
        assert warning.driver == "Faulty"
        assert warning.error_type == "TransientDriverError"
        assert warning.as_dict()["requests_dropped"] == 1

    def test_fail_policy_still_propagates(self):
        engine, term = self._federated_engine(fail_on={1, 2, 3, 4, 5, 6})
        with pytest.raises(TransientDriverError):
            engine.execute(term, optimize=False)  # default: fail

    def test_terminal_fault_never_degrades(self):
        engine, term = self._federated_engine(fail_on={1},
                                              fault_type=DriverError)
        with pytest.raises(DriverError):
            engine.execute(term, optimize=False,
                           on_source_failure="degrade")

    def test_midstream_exhaustion_degrades_to_announced_prefix(self):
        engine = KleisliEngine()
        driver = engine.register_driver(FaultInjectingDriver(
            midstream_fail_on={1, 2}, midstream_after={1: 3, 2: 0},
            fault_type=TransientDriverError))
        engine.configure_resilience(
            "Faulty", RetryPolicy(max_attempts=2, backoff_base=0.0))
        values = list(engine.stream(_scan_term(), optimize=False,
                                    on_source_failure="degrade"))
        # Cursor #1 died at 3, its replacement at 0: the budget is spent,
        # so the degraded stream ends at the delivered prefix — announced.
        assert values == [0, 1, 2]
        warnings = engine.last_eval_statistics.warnings
        assert [w.driver for w in warnings] == ["Faulty"]
        assert driver.open_cursors == 0

    def test_open_breaker_degrades(self):
        engine, term = self._federated_engine()
        engine.configure_resilience(
            "Faulty", RetryPolicy(max_attempts=1),
            CircuitBreakerPolicy(failure_threshold=1, recovery_time=1e9))
        engine.resilience.breaker_for("Faulty").record_failure()  # trip
        values, _ = _drain(engine, term, "eager",
                           on_source_failure="degrade")
        assert values == list(range(4))
        assert engine.last_eval_statistics.warnings[0].error_type \
            == "CircuitOpenError"

    def test_session_level_degrade_default(self):
        from repro.kleisli.session import Session

        engine, _term = self._federated_engine(fail_on={1, 2, 3, 4, 5, 6})
        session = Session(engine=engine, on_source_failure="degrade")
        value = session.run(r"[| x | \x <- Faulty(4) |]")
        assert list(value) == []  # degraded, not raised
        assert [w.driver for w in session.last_warnings] == ["Faulty"]

        healthy = session.run(r"[| x | \x <- Healthy(4) |]")
        assert list(healthy) == list(range(4))
        assert session.last_warnings == []

    def test_engine_rejects_unknown_policy(self):
        engine, _driver = _make_engine()
        with pytest.raises(ValueError, match="on_source_failure"):
            engine.execute(_scan_term(), optimize=False,
                           on_source_failure="shrug")


# ---------------------------------------------------------------------------
# Zero-fault parity and health reporting
# ---------------------------------------------------------------------------


class TestZeroFaultParity:
    @pytest.mark.parametrize("lowering", LOWERINGS)
    def test_installed_layer_changes_nothing_without_faults(self, lowering):
        bare_engine, bare_driver = _make_engine(policy=None)
        expected = _drain(bare_engine, _scan_term(), lowering)

        engine, driver = _make_engine(
            policy=RetryPolicy(max_attempts=3, request_timeout=30.0),
            breaker=CircuitBreakerPolicy())
        got = _drain(engine, _scan_term(), lowering)
        assert got == expected
        assert driver.requests_served == bare_driver.requests_served
        stats = engine.last_eval_statistics
        assert stats.retries == 0
        assert stats.recovered_faults == 0
        assert stats.warnings == []

    def test_statistics_as_dict_is_wire_safe(self):
        import json

        engine, _driver = _make_engine(fail_on={1})
        engine.execute(_scan_term(), optimize=False,
                       on_source_failure="degrade")
        payload = engine.last_eval_statistics.as_dict()
        json.dumps(payload)  # must be JSON-serializable end to end
        assert payload["retries"] == 1

    def test_health_reports_resilience_books(self):
        engine, _driver = _make_engine(fail_on={1},
                                       breaker=CircuitBreakerPolicy())
        engine.execute(_scan_term(), optimize=False)
        books = engine.health()["resilience"]["Faulty"]
        assert books["requests"] == 1
        assert books["retries"] == 1
        assert books["failures"] == 1
        assert books["breaker"]["state"] == CircuitBreaker.CLOSED

    def test_unconfigured_engine_reports_empty_resilience(self):
        engine, _driver = _make_engine(policy=None)
        engine.execute(_scan_term(), optimize=False)
        assert engine.health()["resilience"] == {}

    def test_removing_the_policy_restores_passthrough(self):
        engine, driver = _make_engine(fail_on={1, 3})
        values, _ = _drain(engine, _scan_term(), "eager")
        assert values == list(range(8))
        engine.configure_resilience("Faulty")  # remove
        with pytest.raises(TransientDriverError):
            engine.execute(_scan_term(), optimize=False)


# ---------------------------------------------------------------------------
# The RemoteSource chaos fixture (satellite)
# ---------------------------------------------------------------------------


class TestRemoteSourceFaultModes:
    def test_cap_rejection_is_retryable(self):
        source = RemoteSource("s", lambda payload: payload, latency=0.0,
                              max_concurrent_requests=0)
        with pytest.raises(RemoteSourceError) as excinfo:
            source.call("x")
        assert is_retryable_fault(excinfo.value)

    def test_failure_rate_is_deterministic_by_ordinal(self):
        source = RemoteSource("s", lambda payload: payload, latency=0.0,
                              failure_rate=0.25)  # every 4th request
        outcomes = []
        for i in range(8):
            try:
                outcomes.append(source.call(i))
            except RemoteSourceError:
                outcomes.append("fault")
        assert outcomes == [0, 1, 2, "fault", 4, 5, 6, "fault"]
        assert source.faults_injected == 2

    def test_fail_after_n_takes_the_server_down(self):
        source = RemoteSource("s", lambda payload: payload, latency=0.0,
                              fail_after=2)
        assert source.call("a") == "a"
        assert source.call("b") == "b"
        for _ in range(3):
            with pytest.raises(RemoteSourceError):
                source.call("c")

    def test_injected_clock_means_no_real_sleeping(self):
        clock = FakeClock()
        source = RemoteSource("s", lambda payload: payload, latency=5.0,
                              clock=clock, sleeper=clock.sleep)
        assert source.call("x") == "x"
        assert clock.now == pytest.approx(5.0)
        assert source.log.calls[0]["finished"] \
            - source.log.calls[0]["started"] == pytest.approx(5.0)

    def test_batch_fault_fails_whole_batch_once(self):
        source = RemoteSource("s", lambda payload: payload, latency=0.0,
                              fail_after=0)
        with pytest.raises(RemoteSourceError):
            source.call_batch(["a", "b"])
        assert source.faults_injected == 1


# ---------------------------------------------------------------------------
# Batch decomposition (satellite)
# ---------------------------------------------------------------------------


class TestBatchDecomposition:
    class FlakyBatchDriver(FaultInjectingDriver):
        """Native batches fail while a RemoteSource-ish cap is hot; the
        per-request path works."""

        batch_single_round_trip = True

        def __init__(self, batch_failures=1, **kwargs):
            super().__init__(**kwargs)
            self.batch_calls = 0
            self.batch_failures = batch_failures

        def execute_batch(self, requests):
            self.batch_calls += 1
            if self.batch_calls <= self.batch_failures:
                raise RemoteSourceError(
                    f"{self.name}: batch #{self.batch_calls} rejected")
            return [self._execute(dict(request)) for request in requests]

    def test_failed_native_batch_decomposes_per_request(self):
        engine = KleisliEngine()
        driver = engine.register_driver(self.FlakyBatchDriver(
            batch_failures=10**9, fault_type=TransientDriverError))
        results = engine.driver_executor_batch(
            "Faulty", [{"table": "t", "count": 2}, {"table": "t", "count": 3}])
        assert [list(r) for r in results] == [[0, 1], [0, 1, 2]]
        assert driver.requests_served == 2  # per-request re-dispatch

    def test_one_bad_request_no_longer_poisons_siblings(self):
        engine = KleisliEngine()
        driver = engine.register_driver(self.FlakyBatchDriver(
            batch_failures=10**9, fail_on={2},
            fault_type=TransientDriverError))
        engine.configure_resilience("Faulty", FAST_RETRY)
        results = engine.driver_executor_batch(
            "Faulty", [{"table": "t", "count": 1},
                       {"table": "t", "count": 2},
                       {"table": "t", "count": 3}])
        # Request #2's transient fault retried (ordinal 3 succeeds); the
        # siblings were never re-failed.
        assert [list(r) for r in results] == [[0], [0, 1], [0, 1, 2]]
        assert driver.faults_raised == 1

    def test_successful_native_batch_path_is_unchanged(self):
        engine = KleisliEngine()
        driver = engine.register_driver(self.FlakyBatchDriver(
            batch_failures=0, fault_type=TransientDriverError))
        results = engine.driver_executor_batch(
            "Faulty", [{"table": "t", "count": 2}] * 3)
        assert driver.batch_calls == 1
        assert len(results) == 3
