"""Differential harness: planned execution == fixed-knob execution.

Across the PR 2-4 pipelined shape corpus (``test_stream_differential``'s
``_shapes``), a planner-enabled engine must produce exactly the element
sequence — and the drained-run ``elements_fetched`` accounting — of an
engine with ``OptimizerConfig.planning`` off (the fixed historical knobs).
Two regimes:

* **zero statistics** — the planner must reproduce today's plans
  bit-for-bit (``last_plan.is_default`` pins it, not just value parity);
* **statistics registered** (cardinalities + a remote-latency declaration)
  — the plan *may* differ (adaptive ramp, different chunk bounds), but
  chunk knobs are value- and accounting-invisible by the chunked lowering's
  parity contract, so the comparison still holds exactly.
"""

import pytest

from repro.core.optimizer import OptimizerConfig
from repro.core.planner import PhysicalPlan
from repro.core.values import iter_collection
from repro.kleisli.engine import KleisliEngine

from test_stream_differential import RangeDriver, _shapes


def _planned_engine():
    engine = KleisliEngine()
    engine.register_driver(RangeDriver())
    return engine


def _fixed_engine():
    engine = KleisliEngine(OptimizerConfig(planning=False))
    engine.register_driver(RangeDriver())
    return engine


def _register_statistics(engine):
    engine.statistics_registry.register_cardinality("ranges", "t", 64)
    engine.statistics_registry.register_latency("ranges", 0.02)


@pytest.mark.parametrize("label,expr,bindings",
                         _shapes(), ids=lambda v: v if isinstance(v, str) else "")
def test_planned_matches_fixed_knobs_with_zero_statistics(label, expr, bindings):
    planned_engine = _planned_engine()
    planned = list(planned_engine.stream(expr, bindings, optimize=False,
                                         mode="compiled", chunked=True))
    planned_stats = planned_engine.last_eval_statistics

    # Bit-for-bit: with nothing registered and nothing observed, the chosen
    # plan IS the default knob set, not merely an equivalent one.
    assert planned_engine.last_plan == PhysicalPlan.default(
        planned_engine.optimizer_config.join_block_size), label
    assert planned_engine.last_plan.is_default, label

    fixed_engine = _fixed_engine()
    fixed = list(fixed_engine.stream(expr, bindings, optimize=False,
                                     mode="compiled", chunked=True))
    fixed_stats = fixed_engine.last_eval_statistics

    assert planned == fixed, label
    assert planned_stats.elements_fetched == fixed_stats.elements_fetched, label


@pytest.mark.parametrize("label,expr,bindings",
                         _shapes(), ids=lambda v: v if isinstance(v, str) else "")
def test_planned_matches_fixed_knobs_with_statistics(label, expr, bindings):
    """With statistics the plan may deviate — the values and the drained
    accounting must not."""
    planned_engine = _planned_engine()
    _register_statistics(planned_engine)
    planned = list(planned_engine.stream(expr, bindings, optimize=False,
                                         mode="compiled", chunked=True))
    planned_stats = planned_engine.last_eval_statistics

    fixed_engine = _fixed_engine()
    _register_statistics(fixed_engine)
    fixed = list(fixed_engine.stream(expr, bindings, optimize=False,
                                     mode="compiled", chunked=True))
    fixed_stats = fixed_engine.last_eval_statistics

    assert planned == fixed, label
    assert planned_stats.elements_fetched == fixed_stats.elements_fetched, label
    # And against eager execution, the ground truth both stream from.
    executed_engine = _fixed_engine()
    _register_statistics(executed_engine)
    result = executed_engine.execute(expr, bindings, optimize=False,
                                     mode="compiled")
    try:
        executed = list(iter_collection(result))
    except Exception:
        executed = [result]
    assert planned == executed, label


def test_shapes_with_scans_plan_non_default_once_informed():
    """Sanity check that the statistics variant above actually exercises
    non-default plans (otherwise it degenerates into the zero-stat case)."""
    informed = 0
    for label, expr, bindings in _shapes():
        engine = _planned_engine()
        _register_statistics(engine)
        list(engine.stream(expr, bindings, optimize=False, mode="compiled",
                           chunked=True))
        if not engine.last_plan.is_default:
            informed += 1
    assert informed >= 5  # every scan-bearing shape re-plans


def test_feedback_replanning_stays_value_correct_across_runs():
    """Second run of each shape re-plans from the first run's feedback;
    values and accounting must be identical run-over-run."""
    for label, expr, bindings in _shapes():
        engine = _planned_engine()
        first = list(engine.stream(expr, bindings, optimize=False,
                                   mode="compiled", chunked=True))
        first_stats = engine.last_eval_statistics
        second = list(engine.stream(expr, bindings, optimize=False,
                                    mode="compiled", chunked=True))
        second_stats = engine.last_eval_statistics
        assert first == second, label
        assert first_stats.elements_fetched == \
            second_stats.elements_fetched, label
        # The second run planned from feedback, not from nothing.
        assert engine.last_plan.source == "feedback", label
