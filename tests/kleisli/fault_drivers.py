"""Fault-injecting driver fixtures shared across the Kleisli test harness.

:class:`FaultInjectingDriver` is the one fault model used by the stream
termination tests, the engine concurrency tests, and the query-service soak
harness: a scan source that can be told, per request ordinal, to fail
outright, to fail *mid-stream* after producing a few elements, or to stall
for a scheduled latency before answering.  All bookkeeping is thread-safe so
many sessions can hammer one instance concurrently.

Request ordinals are **1-based** and counted per driver instance across all
threads: ``fail_on={3}`` means the third ``_execute`` call this driver ever
serves raises, whichever session issues it.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Union

from repro.core.errors import DriverError
from repro.kleisli.drivers.base import Driver, DriverFunction

__all__ = ["FaultInjectingDriver"]

LatencySchedule = Union[None, float, Sequence[float], Dict[int, float],
                        Callable[[int], float]]


class FaultInjectingDriver(Driver):
    """A scan driver with programmable faults.

    ``fail_on``            request ordinals that raise ``DriverError`` before
                           any element is produced (a dead source).
    ``midstream_fail_on``  request ordinals whose cursor yields
                           ``midstream_after`` elements and *then* raises —
                           the failure arrives while the pipeline is
                           mid-consumption, the hardest release path.
    ``latency``            per-request stall before answering: a constant,
                           a ``{ordinal: seconds}`` map (missing ordinals
                           don't stall), a sequence cycled by ordinal, or a
                           ``callable(ordinal) -> seconds``.  The stall runs
                           through ``sleeper`` (default ``time.sleep``) so
                           deterministic tests can inject a fake — resilience
                           timeout tests pair a fake sleeper that advances a
                           fake clock with a ``RetryPolicy.request_timeout``,
                           so a scheduled stall becomes a deterministic
                           timeout fault without any real sleeping.
    ``fault_type``         the exception class injected faults raise
                           (default ``DriverError`` — terminal under the
                           resilience taxonomy; pass ``TransientDriverError``
                           to model retryable chaos).

    A scan request is ``{"table": "t", "count": n}`` and yields
    ``0 .. n-1``; the bound CPL function makes that ``Faulty(6)`` in query
    text.  ``open_cursors`` / ``produced`` / ``requests_served`` mirror the
    plain ``CursorDriver`` counters, under a lock.  ``midstream_after`` may
    be a single element count or an ``{ordinal: count}`` map (missing
    ordinals use 3) for schedules where different cursors die at different
    depths.
    """

    def __init__(self, name: str = "Faulty", total: int = 10,
                 fail_on: Iterable[int] = (),
                 midstream_fail_on: Iterable[int] = (),
                 midstream_after: Union[int, Dict[int, int]] = 3,
                 latency: LatencySchedule = None,
                 sleeper: Callable[[float], None] = time.sleep,
                 fault_type: type = DriverError):
        super().__init__(name)
        self.total = total
        self.fail_on = frozenset(fail_on)
        self.midstream_fail_on = frozenset(midstream_fail_on)
        self.midstream_after = midstream_after
        self.latency = latency
        self.sleeper = sleeper
        self.fault_type = fault_type
        self._lock = threading.Lock()
        self.requests_served = 0
        self.open_cursors = 0
        self.produced = 0
        self.faults_raised = 0

    # -- fault plumbing ------------------------------------------------------

    def _next_ordinal(self) -> int:
        with self._lock:
            self.requests_served += 1
            return self.requests_served

    def _stall(self, ordinal: int) -> None:
        schedule = self.latency
        if schedule is None:
            return
        if callable(schedule):
            seconds = schedule(ordinal)
        elif isinstance(schedule, dict):
            seconds = schedule.get(ordinal, 0.0)
        elif isinstance(schedule, (int, float)):
            seconds = float(schedule)
        else:  # a sequence, cycled by ordinal
            seconds = schedule[(ordinal - 1) % len(schedule)]
        if seconds > 0:
            self.sleeper(seconds)

    def _count_fault(self) -> None:
        with self._lock:
            self.faults_raised += 1

    # -- the driver protocol -------------------------------------------------

    def _midstream_depth(self, ordinal: int) -> int:
        after = self.midstream_after
        if isinstance(after, dict):
            return after.get(ordinal, 3)
        return after

    def _execute(self, request):
        ordinal = self._next_ordinal()
        self._stall(ordinal)
        if ordinal in self.fail_on:
            self._count_fault()
            raise self.fault_type(
                f"{self.name}: injected failure on request #{ordinal}")
        count = request.get("count", self.total)
        fail_midstream = ordinal in self.midstream_fail_on
        fail_depth = self._midstream_depth(ordinal)

        def cursor():
            with self._lock:
                self.open_cursors += 1
            try:
                for i in range(count):
                    if fail_midstream and i >= fail_depth:
                        self._count_fault()
                        raise self.fault_type(
                            f"{self.name}: injected mid-stream failure on "
                            f"request #{ordinal} after {i} elements")
                    with self._lock:
                        self.produced += 1
                    yield i
            finally:
                with self._lock:
                    self.open_cursors -= 1

        return cursor()

    def cpl_functions(self) -> List[DriverFunction]:
        return [DriverFunction(self.name, {"table": "t"},
                               argument_key="count",
                               doc=f"{self.name}(n): 0..n-1, with faults")]

    def collection_names(self) -> List[str]:
        return ["t"]

    def cardinality(self, collection: str) -> Optional[int]:
        return self.total
