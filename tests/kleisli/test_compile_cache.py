"""The engine's compile cache: a fingerprint-keyed LRU, not a wholesale purge.

ROADMAP open item closed by this suite: the old memo evicted *everything*
at 128 entries, so the 129th distinct ad-hoc query threw away 128 warm
compilations.  The LRU evicts exactly one (the least recently used), keeps
hot queries hot (move-to-end on hit), and reports hit/miss counters through
``EvalStatistics``.
"""

from repro.core.nrc import builder as B
from repro.core.values import CList
from repro.kleisli.engine import KleisliEngine, _COMPILED_CACHE_LIMIT


def _query(n: int):
    """A family of structurally distinct terms (distinct fingerprints)."""
    return B.prim("add", B.const(n), B.const(1000))


class TestLRUEviction:
    def test_eviction_is_one_entry_not_wholesale(self):
        engine = KleisliEngine()
        for n in range(_COMPILED_CACHE_LIMIT):
            engine.compiled_query(_query(n))
        assert len(engine._compiled_queries) == _COMPILED_CACHE_LIMIT
        engine.compiled_query(_query(_COMPILED_CACHE_LIMIT))
        # One in, one out — the other 127 survive.
        assert len(engine._compiled_queries) == _COMPILED_CACHE_LIMIT
        assert engine._compiled_queries.evictions == 1

    def test_hit_moves_entry_to_most_recently_used(self):
        engine = KleisliEngine()
        for n in range(_COMPILED_CACHE_LIMIT):
            engine.compiled_query(_query(n))
        # Touch the oldest entry, then overflow: the *second*-oldest must go.
        oldest = engine.compiled_query(_query(0))
        engine.compiled_query(_query(_COMPILED_CACHE_LIMIT))
        assert engine.compiled_query(_query(0)) is oldest  # still cached
        hits_before = engine._compiled_queries.hits
        engine.compiled_query(_query(1))  # evicted: recompiles (a miss)
        assert engine._compiled_queries.hits == hits_before

    def test_memoization_still_holds(self):
        engine = KleisliEngine()
        assert engine.compiled_query(_query(7)) is engine.compiled_query(_query(7))


class TestSharedCacheAcrossLoweringTargets:
    def test_eager_and_stream_lowerings_coexist(self):
        engine = KleisliEngine()
        term = B.ext("x", B.singleton(B.var("x"), "list"), B.var("XS"),
                     kind="list")
        eager = engine.compiled_query(term)
        streamed = engine.compiled_stream(term)
        assert eager is not streamed
        assert engine.compiled_query(term) is eager
        assert engine.compiled_stream(term) is streamed
        assert len(engine._compiled_queries) == 2  # one per target

    def test_stream_lowering_is_memoized_across_calls(self):
        engine = KleisliEngine()
        term = B.ext("x", B.singleton(B.var("x"), "list"), B.var("XS"),
                     kind="list")
        first = engine.compiled_stream(term)
        assert engine.compiled_stream(term) is first


class TestStatisticsCounters:
    def test_execute_reports_cache_miss_then_hit(self):
        engine = KleisliEngine()
        term = B.prim("add", B.const(1), B.const(2))
        engine.execute(term, optimize=False)
        first = engine.last_eval_statistics
        assert (first.compile_cache_misses, first.compile_cache_hits) == (1, 0)
        engine.execute(term, optimize=False)
        second = engine.last_eval_statistics
        assert (second.compile_cache_misses, second.compile_cache_hits) == (0, 1)

    def test_stream_reports_cache_accounting(self):
        engine = KleisliEngine()
        term = B.ext("x", B.singleton(B.var("x"), "list"), B.var("XS"),
                     kind="list")
        bindings = {"XS": CList([1, 2, 3])}
        assert list(engine.stream(term, bindings, optimize=False)) == [1, 2, 3]
        assert engine.last_eval_statistics.compile_cache_misses == 1
        assert list(engine.stream(term, bindings, optimize=False)) == [1, 2, 3]
        assert engine.last_eval_statistics.compile_cache_hits == 1

    def test_counters_appear_in_as_dict(self):
        engine = KleisliEngine()
        engine.execute(B.const(1), optimize=False)
        payload = engine.last_eval_statistics.as_dict()
        assert "compile_cache_hits" in payload
        assert "compile_cache_misses" in payload
        assert "stream_fallbacks" in payload


class TestThreadSafety:
    def test_concurrent_get_put_is_consistent(self):
        """Scheduler worker threads compile through one engine: concurrent
        get/put on the LRU must neither corrupt the OrderedDict nor lose
        counter increments (regression: the cache had no lock, unlike
        SubqueryCache)."""
        import threading

        from repro.kleisli.engine import _CompileCache

        cache = _CompileCache(limit=16)
        rounds = 400
        workers = 8
        errors = []
        barrier = threading.Barrier(workers)

        def worker(seed):
            try:
                barrier.wait()
                for i in range(rounds):
                    key = ("eager", (seed * 31 + i) % 64)
                    if cache.get(key) is None:
                        cache.put(key, object())
            except Exception as error:  # pragma: no cover - the regression
                errors.append(error)

        threads = [threading.Thread(target=worker, args=(seed,))
                   for seed in range(workers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert not errors, errors
        assert len(cache) <= 16
        # Locked counters: every get incremented exactly one of hits/misses.
        assert cache.hits + cache.misses == workers * rounds

    def test_concurrent_streams_share_the_cache(self):
        """End-to-end: many threads lowering the same term through one
        engine agree on the (single) compiled object."""
        import threading

        engine = KleisliEngine()
        term = B.ext("x", B.singleton(B.var("x"), "list"), B.var("XS"),
                     kind="list")
        seen = []
        lock = threading.Lock()

        def worker():
            query = engine.compiled_stream(term)
            with lock:
                seen.append(query)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(set(id(query) for query in seen)) == 1
