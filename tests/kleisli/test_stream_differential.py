"""Differential streaming harness: ``stream`` must agree with ``execute``.

For every query shape the streaming backend pipelines — nested ``Ext``
chains, filtered comprehensions, unions, ``ParallelExt``, both join methods —
and in both execution modes, ``engine.stream`` must yield exactly the element
sequence of ``engine.execute``'s result, and consume exactly as many source
elements (``EvalStatistics.elements_fetched``) once drained.

Set-kind shapes hold with *duplicate-producing* data too: set stages dedup
as they go, and ``CSet`` iterates in first-occurrence order, so the streamed
sequence equals iterating the eagerly built set.
"""

import pytest

from repro.core.nrc import ast as A
from repro.core.nrc import builder as B
from repro.core.optimizer.joins import make_join_rule_set
from repro.core.optimizer.parallel import ParallelExt
from repro.core.values import CList, CSet, Record, iter_collection
from repro.kleisli.drivers.base import Driver
from repro.kleisli.engine import ExecutionMode, KleisliEngine

MODES = [ExecutionMode.INTERPRET, ExecutionMode.COMPILED]


class RangeDriver(Driver):
    """Scans yield ``base .. base+count-1`` lazily through a generator."""

    def __init__(self, name="ranges"):
        super().__init__(name)

    def _execute(self, request):
        base = int(request.get("base", 0))
        count = int(request.get("count", 5))

        def cursor():
            for i in range(base, base + count):
                yield i

        return cursor()


def _engine():
    engine = KleisliEngine()
    engine.register_driver(RangeDriver())
    return engine


def _scan(base=0, count=5):
    request = {"table": "t", "count": count}
    args = {}
    if isinstance(base, A.Expr):
        # A computed base (e.g. the outer loop variable) is a scan argument,
        # evaluated before the request is issued.
        args["base"] = base
    else:
        request["base"] = base
    return A.Scan("ranges", request, args=args, kind="list")


def _shapes():
    """(label, expr, bindings) triples covering the pipelined shapes."""
    xs = CList(range(4))
    records = CList([Record({"id": i, "tag": f"r{i}"}) for i in range(6)])
    refs = CList([Record({"ref": i % 3, "weight": i * 10}) for i in range(9)])

    shapes = []

    shapes.append((
        "flat scan comprehension",
        B.ext("x", B.singleton(B.prim("mul", B.var("x"), B.const(3)), "list"),
              _scan(count=6), kind="list"),
        {},
    ))

    shapes.append((
        "nested ext over two scans (body scan depends on loop var)",
        B.ext("x",
              B.ext("y",
                    B.singleton(B.prim("add", B.prim("mul", B.var("x"), B.const(100)),
                                       B.var("y")), "list"),
                    _scan(count=3, base=B.var("x")), kind="list"),
              _scan(count=4), kind="list"),
        {},
    ))

    shapes.append((
        "filtered comprehension",
        B.ext("x",
              B.if_then_else(B.prim("gt", B.var("x"), B.const(2)),
                             B.singleton(B.var("x"), "list"),
                             B.empty("list")),
              _scan(count=8), kind="list"),
        {},
    ))

    shapes.append((
        "union of two comprehensions (list)",
        A.Union(
            B.ext("x", B.singleton(B.var("x"), "list"), _scan(count=3), kind="list"),
            B.ext("x", B.singleton(B.prim("add", B.var("x"), B.const(50)), "list"),
                  _scan(count=3), kind="list"),
            "list"),
        {},
    ))

    shapes.append((
        "let over a bound collection",
        A.Let("k", B.const(7),
              B.ext("x", B.singleton(B.prim("add", B.var("x"), B.var("k")), "list"),
                    B.var("XS"), kind="list")),
        {"XS": xs},
    ))

    shapes.append((
        "parallel ext (bounded prefetch)",
        ParallelExt("x", B.singleton(B.prim("mul", B.var("x"), B.const(2)), "list"),
                    _scan(count=7), kind="list", max_workers=3),
        {},
    ))

    shapes.append((
        "parallel ext nested inside an outer loop",
        B.ext("x",
              ParallelExt("y", B.singleton(B.prim("add", B.var("x"), B.var("y")),
                                           "list"),
                          A.Const(CList([100, 200, 300])), kind="list",
                          max_workers=2),
              A.Const(CList([1, 2])), kind="list"),
        {},
    ))

    condition = B.eq(B.project(B.var("o"), "id"), B.project(B.var("i"), "ref"))
    head = B.record(tag=B.project(B.var("o"), "tag"),
                    weight=B.project(B.var("i"), "weight"))
    nested_join = B.ext(
        "o", B.ext("i", B.if_then_else(condition, B.singleton(head),
                                       B.empty()), B.var("INNER")),
        B.var("OUTER"))
    indexed = make_join_rule_set(minimum_inner_size=0).apply(nested_join)
    assert isinstance(indexed, A.Join) and indexed.method == "indexed"
    shapes.append(("indexed join (streamed probe side)", indexed,
                   {"OUTER": records, "INNER": refs}))

    blocked = A.Join("blocked", "o", B.var("OUTER"), "i", B.var("INNER"),
                     condition, B.singleton(head), None, None,
                     "set", 4)
    shapes.append(("blocked join (streamed per outer block)", blocked,
                   {"OUTER": records, "INNER": refs}))

    shapes.append((
        "scalar query (single-element stream)",
        B.prim("add", B.const(40), B.const(2)),
        {},
    ))

    shapes.append((
        "set-kind comprehension (duplicate-free)",
        B.ext("x", B.singleton(B.prim("mul", B.var("x"), B.var("x"))),
              A.Const(CSet([1, 2, 3, 4]))),
        {},
    ))

    shapes.append((
        "set-kind comprehension producing duplicates (mod collapses them)",
        B.ext("x", B.singleton(B.prim("mod", B.var("x"), B.const(3))),
              A.Const(CSet(range(10)))),
        {},
    ))

    shapes.append((
        "set-kind let-wrapped duplicate-producing comprehension",
        A.Let("v", B.const(2),
              B.ext("x", B.singleton(B.prim("mod", B.var("x"), B.var("v"))),
                    A.Const(CSet([1, 2, 3, 4, 5])))),
        {},
    ))

    shapes.append((
        "set-kind parallel ext producing duplicates",
        ParallelExt("x", B.singleton(B.prim("mod", B.var("x"), B.const(4))),
                    A.Const(CSet(range(12))), kind="set", max_workers=3),
        {},
    ))

    return shapes


@pytest.mark.parametrize("mode", MODES, ids=lambda m: m.value)
@pytest.mark.parametrize("label,expr,bindings",
                         _shapes(), ids=lambda v: v if isinstance(v, str) else "")
def test_stream_matches_execute(mode, label, expr, bindings):
    engine = _engine()
    streamed = list(engine.stream(expr, bindings, optimize=False, mode=mode))
    stream_stats = engine.last_eval_statistics

    engine2 = _engine()
    result = engine2.execute(expr, bindings, optimize=False, mode=mode)
    execute_stats = engine2.last_eval_statistics
    try:
        executed = list(iter_collection(result))
    except Exception:
        executed = [result]

    assert streamed == executed, label
    assert stream_stats.elements_fetched == execute_stats.elements_fetched, label


@pytest.mark.parametrize("label,expr,bindings",
                         _shapes(), ids=lambda v: v if isinstance(v, str) else "")
def test_stream_agrees_across_modes(label, expr, bindings):
    """Compiled-streamed, interpreted-streamed: one element sequence."""
    per_mode = {}
    for mode in MODES:
        engine = _engine()
        per_mode[mode.value] = list(engine.stream(expr, bindings,
                                                  optimize=False, mode=mode))
    assert per_mode["interpret"] == per_mode["compiled"], label


@pytest.mark.parametrize("mode", MODES, ids=lambda m: m.value)
def test_plain_python_iterables_are_one_value_not_a_sequence(mode):
    """A non-CPL iterable (tuple, dict, str) bound to a variable is a single
    value in every mode — streaming must not explode it element-wise
    (regression: the compiled top-level tolerance iterated any iterable)."""
    engine = _engine()
    for value in [(1, 2), {"a": 1}, "xy"]:
        streamed = list(engine.stream(B.var("V"), {"V": value},
                                      optimize=False, mode=mode))
        assert streamed == [value], (value, streamed)
        executed = engine.execute(B.var("V"), {"V": value}, optimize=False,
                                  mode=mode)
        assert executed == value


def test_last_eval_statistics_is_current_before_first_next():
    """engine.stream() must rebind last_eval_statistics to the new run
    immediately, not on first next() (regression: callers reading it right
    after stream() got the previous run's numbers)."""
    engine = _engine()
    expr = B.ext("x", B.singleton(B.var("x"), "list"), _scan(count=3), kind="list")
    assert list(engine.stream(expr, optimize=False)) == [0, 1, 2]
    previous = engine.last_eval_statistics
    stream = engine.stream(expr, optimize=False)
    assert engine.last_eval_statistics is not previous
    assert engine.last_eval_statistics.elements_fetched == 0
    stream.close()


@pytest.mark.parametrize("mode", MODES, ids=lambda m: m.value)
def test_stats_object_published_at_stream_time_reports_the_run(mode):
    """The EvalStatistics bound at stream() time must be the one the run
    updates — for every shape, including the interpreted non-Ext path
    (regression: that path routed through execute(), which rebound
    last_eval_statistics to a fresh object mid-stream)."""
    engine = _engine()
    plus = B.lam("a", B.lam("b", B.prim("add", B.var("a"), B.var("b"))))
    fold = B.fold(plus, B.const(0), A.Const(CList([1, 2, 3])))
    stream = engine.stream(fold, optimize=False, mode=mode)
    stats = engine.last_eval_statistics
    assert list(stream) == [6]
    assert engine.last_eval_statistics is stats
    assert stats.fold_iterations == 3


@pytest.mark.parametrize("mode", MODES, ids=lambda m: m.value)
def test_scalar_results_stream_as_one_element(mode):
    """Scalar values reached through the transparent spine (Const, Var, Let
    bodies, IfThenElse branches) must stream as a single element, exactly
    like the eager path — not raise (regression: the first streaming lowering
    rejected them as non-collections in compiled mode)."""
    engine = _engine()
    cases = [
        ("const", A.Const(5), {}, [5]),
        ("var bound to a scalar", B.var("N"), {"N": 7}, [7]),
        ("let with a scalar body",
         A.Let("x", B.const(40), B.prim("add", B.var("x"), B.const(2))), {}, [42]),
        ("if-then-else with scalar branches",
         B.if_then_else(B.const(True), B.const(1), B.const(2)), {}, [1]),
        ("let with a streaming body",
         A.Let("k", B.const(5),
               B.ext("x", B.singleton(B.prim("add", B.var("x"), B.var("k")),
                                      "list"),
                     A.Const(CList([1, 2])), kind="list")), {}, [6, 7]),
    ]
    for label, expr, bindings, expected in cases:
        got = list(engine.stream(expr, bindings, optimize=False, mode=mode))
        assert got == expected, (label, got)


def test_parallel_ext_in_body_does_not_accumulate_pools():
    """A ParallelExt in the body of an outer loop runs once per outer
    element; each section must close its worker pool on exit (regression:
    pools were only released at whole-stream end, one live pool per
    iteration)."""
    import threading

    engine = _engine()
    expr = B.ext(
        "x",
        ParallelExt("y", B.singleton(B.prim("add", B.var("x"), B.var("y")),
                                     "list"),
            A.Const(CList([1, 2, 3])), kind="list", max_workers=3),
        A.Const(CList(range(20))), kind="list")
    baseline = threading.active_count()
    stream = engine.stream(expr, optimize=False, mode="compiled")
    peak = 0
    for i, _ in enumerate(stream):
        if i % 6 == 0:
            peak = max(peak, threading.active_count())
    assert peak <= baseline + 3, \
        f"{peak - baseline} threads live mid-stream (pools accumulating)"
    assert threading.active_count() == baseline


def test_streamed_pipeline_reports_compiled_mode():
    engine = _engine()
    expr = B.ext("x", B.singleton(B.var("x"), "list"), _scan(count=3), kind="list")
    assert list(engine.stream(expr, optimize=False, mode="compiled")) == [0, 1, 2]
    stats = engine.last_eval_statistics
    assert stats.execution_mode == "compiled"
    assert stats.stream_fallbacks == 0


@pytest.mark.parametrize("mode", MODES, ids=lambda m: m.value)
def test_union_of_mismatched_kinds_raises_in_stream_too(mode):
    """union_like's operand type check must hold when streaming: a term
    execute() rejects must not silently succeed under stream() (regression:
    the streamed list/bag union chained operands without the check)."""
    from repro.core.errors import EvaluationError

    engine = _engine()
    expr = A.Union(B.var("L"), B.var("R"), "list")
    bindings = {"L": CList([1, 2]), "R": CSet([3, 4])}
    with pytest.raises(EvaluationError):
        engine.execute(expr, bindings, optimize=False, mode=mode)
    with pytest.raises(EvaluationError):
        list(engine.stream(expr, bindings, optimize=False, mode=mode))


def test_streamed_source_accepts_what_eager_accepts():
    """iterate_source accepts any iterable as a generator source (e.g. a
    bound str); the streaming lowering must agree (regression: it rejected
    str/bytes sources the eager backend iterates)."""
    engine = _engine()
    expr = B.ext("x", B.singleton(B.var("x"), "list"), B.var("S"), kind="list")
    bindings = {"S": "abc"}
    executed = list(iter_collection(
        engine.execute(expr, bindings, optimize=False, mode="compiled")))
    streamed = list(engine.stream(expr, bindings, optimize=False,
                                  mode="compiled"))
    assert streamed == executed == ["a", "b", "c"]


def test_eager_sections_are_surfaced_in_statistics():
    """A set-kind Union has no pull-based form (it deduplicates across both
    operands): it runs eagerly inside the pipeline and the run reports it."""
    engine = _engine()
    source = A.Union(A.Const(CSet([1, 2])), A.Const(CSet([2, 3])), "set")
    expr = B.ext("x", B.singleton(B.var("x")), source)
    streamed = list(engine.stream(expr, optimize=False, mode="compiled"))
    assert sorted(streamed) == [1, 2, 3]
    stats = engine.last_eval_statistics
    assert stats.stream_fallbacks >= 1
    query = engine.compiled_stream(expr)
    assert "Union" in query.eager_nodes
    assert query.fully_compiled  # eager section != interpreter fallback
