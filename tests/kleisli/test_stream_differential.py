"""Differential streaming harness: ``stream`` must agree with ``execute``.

For every query shape the streaming backend pipelines — nested ``Ext``
chains, filtered comprehensions, unions, ``ParallelExt``, both join methods —
and in both execution modes, ``engine.stream`` must yield exactly the element
sequence of ``engine.execute``'s result, and consume exactly as many source
elements (``EvalStatistics.elements_fetched``) once drained.

Set-kind shapes hold with *duplicate-producing* data too: set stages dedup
as they go, and ``CSet`` iterates in first-occurrence order, so the streamed
sequence equals iterating the eagerly built set.
"""

import pytest

from repro.core.nrc import ast as A
from repro.core.nrc import builder as B
from repro.core.optimizer.joins import make_join_rule_set
from repro.core.optimizer.parallel import ParallelExt
from repro.core.values import CList, CSet, Record, iter_collection
from repro.kleisli.drivers.base import Driver
from repro.kleisli.engine import ExecutionMode, KleisliEngine

MODES = [ExecutionMode.INTERPRET, ExecutionMode.COMPILED]


class RangeDriver(Driver):
    """Scans yield ``base .. base+count-1`` lazily through a generator."""

    def __init__(self, name="ranges"):
        super().__init__(name)

    def _execute(self, request):
        base = int(request.get("base", 0))
        count = int(request.get("count", 5))

        def cursor():
            for i in range(base, base + count):
                yield i

        return cursor()


def _engine():
    engine = KleisliEngine()
    engine.register_driver(RangeDriver())
    return engine


def _scan(base=0, count=5):
    request = {"table": "t", "count": count}
    args = {}
    if isinstance(base, A.Expr):
        # A computed base (e.g. the outer loop variable) is a scan argument,
        # evaluated before the request is issued.
        args["base"] = base
    else:
        request["base"] = base
    return A.Scan("ranges", request, args=args, kind="list")


def _shapes():
    """(label, expr, bindings) triples covering the pipelined shapes."""
    xs = CList(range(4))
    records = CList([Record({"id": i, "tag": f"r{i}"}) for i in range(6)])
    refs = CList([Record({"ref": i % 3, "weight": i * 10}) for i in range(9)])

    shapes = []

    shapes.append((
        "flat scan comprehension",
        B.ext("x", B.singleton(B.prim("mul", B.var("x"), B.const(3)), "list"),
              _scan(count=6), kind="list"),
        {},
    ))

    shapes.append((
        "nested ext over two scans (body scan depends on loop var)",
        B.ext("x",
              B.ext("y",
                    B.singleton(B.prim("add", B.prim("mul", B.var("x"), B.const(100)),
                                       B.var("y")), "list"),
                    _scan(count=3, base=B.var("x")), kind="list"),
              _scan(count=4), kind="list"),
        {},
    ))

    shapes.append((
        "filtered comprehension",
        B.ext("x",
              B.if_then_else(B.prim("gt", B.var("x"), B.const(2)),
                             B.singleton(B.var("x"), "list"),
                             B.empty("list")),
              _scan(count=8), kind="list"),
        {},
    ))

    shapes.append((
        "union of two comprehensions (list)",
        A.Union(
            B.ext("x", B.singleton(B.var("x"), "list"), _scan(count=3), kind="list"),
            B.ext("x", B.singleton(B.prim("add", B.var("x"), B.const(50)), "list"),
                  _scan(count=3), kind="list"),
            "list"),
        {},
    ))

    shapes.append((
        "let over a bound collection",
        A.Let("k", B.const(7),
              B.ext("x", B.singleton(B.prim("add", B.var("x"), B.var("k")), "list"),
                    B.var("XS"), kind="list")),
        {"XS": xs},
    ))

    shapes.append((
        "parallel ext (bounded prefetch)",
        ParallelExt("x", B.singleton(B.prim("mul", B.var("x"), B.const(2)), "list"),
                    _scan(count=7), kind="list", max_workers=3),
        {},
    ))

    shapes.append((
        "parallel ext nested inside an outer loop",
        B.ext("x",
              ParallelExt("y", B.singleton(B.prim("add", B.var("x"), B.var("y")),
                                           "list"),
                          A.Const(CList([100, 200, 300])), kind="list",
                          max_workers=2),
              A.Const(CList([1, 2])), kind="list"),
        {},
    ))

    condition = B.eq(B.project(B.var("o"), "id"), B.project(B.var("i"), "ref"))
    head = B.record(tag=B.project(B.var("o"), "tag"),
                    weight=B.project(B.var("i"), "weight"))
    nested_join = B.ext(
        "o", B.ext("i", B.if_then_else(condition, B.singleton(head),
                                       B.empty()), B.var("INNER")),
        B.var("OUTER"))
    indexed = make_join_rule_set(minimum_inner_size=0).apply(nested_join)
    assert isinstance(indexed, A.Join) and indexed.method == "indexed"
    shapes.append(("indexed join (streamed probe side)", indexed,
                   {"OUTER": records, "INNER": refs}))

    blocked = A.Join("blocked", "o", B.var("OUTER"), "i", B.var("INNER"),
                     condition, B.singleton(head), None, None,
                     "set", 4)
    shapes.append(("blocked join (streamed per outer block)", blocked,
                   {"OUTER": records, "INNER": refs}))

    unit_blocked = A.Join("blocked", "o", B.var("OUTER"), "i", B.var("INNER"),
                          condition, B.singleton(head), None, None,
                          "set", 1)
    shapes.append(("blocked join with block size 1 (per-element probe)",
                   unit_blocked, {"OUTER": records, "INNER": refs}))

    shapes.append((
        "typed union of two scan chains (streams both operands)",
        A.Union(
            B.ext("x", B.singleton(B.var("x"), "list"), _scan(count=4), kind="list"),
            B.ext("x", B.singleton(B.prim("add", B.var("x"), B.const(50)), "list"),
                  _scan(count=4), kind="list"),
            "list"),
        {},
    ))

    shapes.append((
        "typed set union with cross-operand duplicates (shared seen-filter)",
        A.Union(
            B.ext("x", B.singleton(B.prim("mod", B.var("x"), B.const(3))),
                  A.Const(CSet(range(5)))),
            B.ext("x", B.singleton(B.prim("mod", B.var("x"), B.const(4))),
                  A.Const(CSet(range(6)))),
            "set"),
        {},
    ))

    shapes.append((
        "nested typed SET unions (one shared seen-filter, dupes everywhere)",
        A.Union(
            A.Union(
                B.ext("x", B.singleton(B.prim("mod", B.var("x"), B.const(3))),
                      A.Const(CSet(range(7)))),
                B.ext("x", B.singleton(B.prim("mod", B.var("x"), B.const(4))),
                      A.Const(CSet(range(6)))),
                "set"),
            B.ext("x", B.singleton(B.prim("mod", B.var("x"), B.const(5))),
                  A.Const(CSet(range(9)))),
            "set"),
        {},
    ))

    shapes.append((
        "nested typed unions (three-way chain)",
        A.Union(
            A.Union(
                B.ext("x", B.singleton(B.var("x"), "list"), _scan(count=2),
                      kind="list"),
                B.singleton(B.const(99), "list"),
                "list"),
            B.ext("x", B.singleton(B.prim("mul", B.var("x"), B.const(7)), "list"),
                  _scan(count=2), kind="list"),
            "list"),
        {},
    ))

    shapes.append((
        "union with an unproven operand (eager fallback stays correct)",
        A.Union(
            B.ext("x", B.singleton(B.var("x"), "list"), _scan(count=3), kind="list"),
            B.var("XS_LIST"),
            "list"),
        {"XS_LIST": CList([7, 8])},
    ))

    shapes.append((
        "scalar query (single-element stream)",
        B.prim("add", B.const(40), B.const(2)),
        {},
    ))

    shapes.append((
        "set-kind comprehension (duplicate-free)",
        B.ext("x", B.singleton(B.prim("mul", B.var("x"), B.var("x"))),
              A.Const(CSet([1, 2, 3, 4]))),
        {},
    ))

    shapes.append((
        "set-kind comprehension producing duplicates (mod collapses them)",
        B.ext("x", B.singleton(B.prim("mod", B.var("x"), B.const(3))),
              A.Const(CSet(range(10)))),
        {},
    ))

    shapes.append((
        "set-kind let-wrapped duplicate-producing comprehension",
        A.Let("v", B.const(2),
              B.ext("x", B.singleton(B.prim("mod", B.var("x"), B.var("v"))),
                    A.Const(CSet([1, 2, 3, 4, 5])))),
        {},
    ))

    shapes.append((
        "set-kind parallel ext producing duplicates",
        ParallelExt("x", B.singleton(B.prim("mod", B.var("x"), B.const(4))),
                    A.Const(CSet(range(12))), kind="set", max_workers=3),
        {},
    ))

    return shapes


@pytest.mark.parametrize("mode", MODES, ids=lambda m: m.value)
@pytest.mark.parametrize("label,expr,bindings",
                         _shapes(), ids=lambda v: v if isinstance(v, str) else "")
def test_stream_matches_execute(mode, label, expr, bindings):
    engine = _engine()
    streamed = list(engine.stream(expr, bindings, optimize=False, mode=mode))
    stream_stats = engine.last_eval_statistics

    engine2 = _engine()
    result = engine2.execute(expr, bindings, optimize=False, mode=mode)
    execute_stats = engine2.last_eval_statistics
    try:
        executed = list(iter_collection(result))
    except Exception:
        executed = [result]

    assert streamed == executed, label
    assert stream_stats.elements_fetched == execute_stats.elements_fetched, label


@pytest.mark.parametrize("mode", MODES, ids=lambda m: m.value)
@pytest.mark.parametrize("label,expr,bindings",
                         _shapes(), ids=lambda v: v if isinstance(v, str) else "")
def test_chunked_stream_matches_execute(mode, label, expr, bindings):
    """The chunked lowering against ``execute`` in BOTH execution modes:
    exact element sequence, and (against compiled execute, the matching
    backend) exact ``elements_fetched`` once drained — chunk sizes must be
    value- and accounting-invisible."""
    engine = _engine()
    chunked = list(engine.stream(expr, bindings, optimize=False,
                                 mode="compiled", chunked=True))
    chunked_stats = engine.last_eval_statistics

    engine2 = _engine()
    result = engine2.execute(expr, bindings, optimize=False, mode=mode)
    execute_stats = engine2.last_eval_statistics
    try:
        executed = list(iter_collection(result))
    except Exception:
        executed = [result]

    assert chunked == executed, label
    assert chunked_stats.elements_fetched == execute_stats.elements_fetched, label


@pytest.mark.parametrize("label,expr,bindings",
                         _shapes(), ids=lambda v: v if isinstance(v, str) else "")
def test_chunked_stream_matches_per_element_stream(label, expr, bindings):
    """Chunked and per-element compiled streams: one element sequence and
    one drained-run accounting."""
    engine = _engine()
    chunked = list(engine.stream(expr, bindings, optimize=False,
                                 mode="compiled", chunked=True))
    chunked_stats = engine.last_eval_statistics
    engine2 = _engine()
    element = list(engine2.stream(expr, bindings, optimize=False,
                                  mode="compiled", chunked=False))
    element_stats = engine2.last_eval_statistics
    assert chunked == element, label
    assert chunked_stats.elements_fetched == element_stats.elements_fetched, label


def test_chunked_pipelines_without_scalar_stages_on_optimizer_shapes():
    """Every optimizer-producible pipelined shape has a native chunk-wise
    lowering: no eager sections (stream_fallbacks) and no per-element
    sections (scalar_stages) inside a chunked run."""
    records = CList([Record({"id": i, "tag": f"r{i}"}) for i in range(6)])
    refs = CList([Record({"ref": i % 3, "weight": i * 10}) for i in range(9)])
    condition = B.eq(B.project(B.var("o"), "id"), B.project(B.var("i"), "ref"))
    shapes = [
        B.ext("x", B.singleton(B.prim("mul", B.var("x"), B.const(3)), "list"),
              _scan(count=6), kind="list"),
        A.Union(
            B.ext("x", B.singleton(B.var("x"), "list"), _scan(count=3), kind="list"),
            B.ext("x", B.singleton(B.prim("add", B.var("x"), B.const(50)), "list"),
                  _scan(count=3), kind="list"),
            "list"),
        A.Join("blocked", "o", B.var("OUTER"), "i", B.var("INNER"),
               condition, B.singleton(B.project(B.var("o"), "tag"), "list"),
               None, None, "list", 1),
        ParallelExt("x", B.singleton(B.prim("mul", B.var("x"), B.const(2)), "list"),
                    _scan(count=7), kind="list", max_workers=3),
    ]
    bindings = {"OUTER": records, "INNER": refs}
    for expr in shapes:
        engine = _engine()
        query = engine.compiled_chunked(expr)
        assert query.fully_chunked, (query.scalar_stages, query.eager_nodes)
        list(engine.stream(expr, bindings, optimize=False, chunked=True))
        stats = engine.last_eval_statistics
        assert stats.stream_fallbacks == 0, stats.as_dict()
        assert stats.scalar_stages == 0, stats.as_dict()


@pytest.mark.parametrize("label,expr,bindings",
                         _shapes(), ids=lambda v: v if isinstance(v, str) else "")
def test_stream_agrees_across_modes(label, expr, bindings):
    """Compiled-streamed, interpreted-streamed: one element sequence."""
    per_mode = {}
    for mode in MODES:
        engine = _engine()
        per_mode[mode.value] = list(engine.stream(expr, bindings,
                                                  optimize=False, mode=mode))
    assert per_mode["interpret"] == per_mode["compiled"], label


@pytest.mark.parametrize("mode", MODES, ids=lambda m: m.value)
def test_plain_python_iterables_are_one_value_not_a_sequence(mode):
    """A non-CPL iterable (tuple, dict, str) bound to a variable is a single
    value in every mode — streaming must not explode it element-wise
    (regression: the compiled top-level tolerance iterated any iterable)."""
    engine = _engine()
    for value in [(1, 2), {"a": 1}, "xy"]:
        streamed = list(engine.stream(B.var("V"), {"V": value},
                                      optimize=False, mode=mode))
        assert streamed == [value], (value, streamed)
        executed = engine.execute(B.var("V"), {"V": value}, optimize=False,
                                  mode=mode)
        assert executed == value


def test_last_eval_statistics_is_current_before_first_next():
    """engine.stream() must rebind last_eval_statistics to the new run
    immediately, not on first next() (regression: callers reading it right
    after stream() got the previous run's numbers)."""
    engine = _engine()
    expr = B.ext("x", B.singleton(B.var("x"), "list"), _scan(count=3), kind="list")
    assert list(engine.stream(expr, optimize=False)) == [0, 1, 2]
    previous = engine.last_eval_statistics
    stream = engine.stream(expr, optimize=False)
    assert engine.last_eval_statistics is not previous
    assert engine.last_eval_statistics.elements_fetched == 0
    stream.close()


@pytest.mark.parametrize("mode", MODES, ids=lambda m: m.value)
def test_stats_object_published_at_stream_time_reports_the_run(mode):
    """The EvalStatistics bound at stream() time must be the one the run
    updates — for every shape, including the interpreted non-Ext path
    (regression: that path routed through execute(), which rebound
    last_eval_statistics to a fresh object mid-stream)."""
    engine = _engine()
    plus = B.lam("a", B.lam("b", B.prim("add", B.var("a"), B.var("b"))))
    fold = B.fold(plus, B.const(0), A.Const(CList([1, 2, 3])))
    stream = engine.stream(fold, optimize=False, mode=mode)
    stats = engine.last_eval_statistics
    assert list(stream) == [6]
    assert engine.last_eval_statistics is stats
    assert stats.fold_iterations == 3


@pytest.mark.parametrize("mode", MODES, ids=lambda m: m.value)
def test_scalar_results_stream_as_one_element(mode):
    """Scalar values reached through the transparent spine (Const, Var, Let
    bodies, IfThenElse branches) must stream as a single element, exactly
    like the eager path — not raise (regression: the first streaming lowering
    rejected them as non-collections in compiled mode)."""
    engine = _engine()
    cases = [
        ("const", A.Const(5), {}, [5]),
        ("var bound to a scalar", B.var("N"), {"N": 7}, [7]),
        ("let with a scalar body",
         A.Let("x", B.const(40), B.prim("add", B.var("x"), B.const(2))), {}, [42]),
        ("if-then-else with scalar branches",
         B.if_then_else(B.const(True), B.const(1), B.const(2)), {}, [1]),
        ("let with a streaming body",
         A.Let("k", B.const(5),
               B.ext("x", B.singleton(B.prim("add", B.var("x"), B.var("k")),
                                      "list"),
                     A.Const(CList([1, 2])), kind="list")), {}, [6, 7]),
    ]
    for label, expr, bindings, expected in cases:
        got = list(engine.stream(expr, bindings, optimize=False, mode=mode))
        assert got == expected, (label, got)


def test_parallel_ext_in_body_does_not_accumulate_pools():
    """A ParallelExt in the body of an outer loop runs once per outer
    element; each section must close its worker pool on exit (regression:
    pools were only released at whole-stream end, one live pool per
    iteration)."""
    import threading

    engine = _engine()
    expr = B.ext(
        "x",
        ParallelExt("y", B.singleton(B.prim("add", B.var("x"), B.var("y")),
                                     "list"),
            A.Const(CList([1, 2, 3])), kind="list", max_workers=3),
        A.Const(CList(range(20))), kind="list")
    baseline = threading.active_count()
    stream = engine.stream(expr, optimize=False, mode="compiled")
    peak = 0
    for i, _ in enumerate(stream):
        if i % 6 == 0:
            peak = max(peak, threading.active_count())
    assert peak <= baseline + 3, \
        f"{peak - baseline} threads live mid-stream (pools accumulating)"
    assert threading.active_count() == baseline


def test_streamed_pipeline_reports_compiled_mode():
    engine = _engine()
    expr = B.ext("x", B.singleton(B.var("x"), "list"), _scan(count=3), kind="list")
    assert list(engine.stream(expr, optimize=False, mode="compiled")) == [0, 1, 2]
    stats = engine.last_eval_statistics
    assert stats.execution_mode == "compiled"
    assert stats.stream_fallbacks == 0


@pytest.mark.parametrize("mode", MODES, ids=lambda m: m.value)
def test_union_of_mismatched_kinds_raises_in_stream_too(mode):
    """union_like's operand type check must hold when streaming: a term
    execute() rejects must not silently succeed under stream() (regression:
    the streamed list/bag union chained operands without the check)."""
    from repro.core.errors import EvaluationError

    engine = _engine()
    expr = A.Union(B.var("L"), B.var("R"), "list")
    bindings = {"L": CList([1, 2]), "R": CSet([3, 4])}
    with pytest.raises(EvaluationError):
        engine.execute(expr, bindings, optimize=False, mode=mode)
    with pytest.raises(EvaluationError):
        list(engine.stream(expr, bindings, optimize=False, mode=mode))


def test_streamed_source_accepts_what_eager_accepts():
    """iterate_source accepts any iterable as a generator source (e.g. a
    bound str); the streaming lowering must agree (regression: it rejected
    str/bytes sources the eager backend iterates)."""
    engine = _engine()
    expr = B.ext("x", B.singleton(B.var("x"), "list"), B.var("S"), kind="list")
    bindings = {"S": "abc"}
    executed = list(iter_collection(
        engine.execute(expr, bindings, optimize=False, mode="compiled")))
    streamed = list(engine.stream(expr, bindings, optimize=False,
                                  mode="compiled"))
    assert streamed == executed == ["a", "b", "c"]


def test_eager_sections_are_surfaced_in_statistics():
    """A set-kind Union has no pull-based form (it deduplicates across both
    operands): it runs eagerly inside the pipeline and the run reports it."""
    engine = _engine()
    source = A.Union(A.Const(CSet([1, 2])), A.Const(CSet([2, 3])), "set")
    expr = B.ext("x", B.singleton(B.var("x")), source)
    streamed = list(engine.stream(expr, optimize=False, mode="compiled"))
    assert sorted(streamed) == [1, 2, 3]
    stats = engine.last_eval_statistics
    assert stats.stream_fallbacks >= 1
    query = engine.compiled_stream(expr)
    assert "Union" in query.eager_nodes
    assert query.fully_compiled  # eager section != interpreter fallback


def test_typed_union_pipelines_without_fallback():
    """A union whose operand kinds are statically proven streams end-to-end:
    no eager section, and the first element is produced before the right
    operand's scan is even requested."""
    engine = _engine()
    expr = A.Union(
        B.ext("x", B.singleton(B.var("x"), "list"), _scan(count=5), kind="list"),
        B.ext("x", B.singleton(B.prim("add", B.var("x"), B.const(50)), "list"),
              _scan(count=5), kind="list"),
        "list")
    query = engine.compiled_stream(expr)
    assert query.fully_streamed, query.eager_nodes
    stream = engine.stream(expr, optimize=False, mode="compiled")
    assert next(stream) == 0
    stats = engine.last_eval_statistics
    assert stats.stream_fallbacks == 0
    assert stats.scan_requests == 1, "right operand requested before needed"
    stream.close()


def test_unproven_union_still_reports_an_eager_section():
    """Only PROVEN unions stream; a bound-variable operand keeps the eager
    union_like section (and its statistics surfacing)."""
    engine = _engine()
    expr = A.Union(
        B.ext("x", B.singleton(B.var("x"), "list"), _scan(count=3), kind="list"),
        B.var("XS"), "list")
    query = engine.compiled_stream(expr)
    assert not query.fully_streamed
    assert "Union" in query.eager_nodes
    streamed = list(engine.stream(expr, {"XS": CList([7])},
                                  optimize=False, mode="compiled"))
    assert streamed == [0, 1, 2, 7]
    assert engine.last_eval_statistics.stream_fallbacks >= 1


@pytest.mark.parametrize("mode", MODES, ids=lambda m: m.value)
def test_union_with_provenly_mismatched_operands_raises_in_stream_too(mode):
    """A Union whose operand kinds provably disagree with its own falls back
    to the eager union_like — which must keep raising exactly where
    execute raises, in both modes."""
    from repro.core.errors import EvaluationError

    engine = _engine()
    expr = A.Union(
        B.ext("x", B.singleton(B.var("x"), "bag"), B.var("XS"), kind="bag"),
        B.ext("x", B.singleton(B.var("x"), "list"), B.var("XS"), kind="list"),
        "list")
    bindings = {"XS": CList([1, 2])}
    with pytest.raises(EvaluationError):
        engine.execute(expr, bindings, optimize=False, mode=mode)
    with pytest.raises(EvaluationError):
        list(engine.stream(expr, bindings, optimize=False, mode=mode))


class TestJoinConditionPolicy:
    """The pinned join-condition behavior (ROADMAP): a non-boolean condition
    value raises for BOTH join methods in all three backends — interpreter,
    eager closures, and the streamed lowering.  (Indexed joins used to
    filter by truthiness, so a query's strictness depended on the
    optimizer's join-method choice.)"""

    @staticmethod
    def _join(method):
        condition = B.const(1)  # truthy, but not a boolean
        if method == "indexed":
            return A.Join("indexed", "o", B.var("OUTER"), "i", B.var("INNER"),
                          condition, B.singleton(B.var("o"), "list"),
                          B.var("o"), B.var("i"), "list", 4)
        return A.Join("blocked", "o", B.var("OUTER"), "i", B.var("INNER"),
                      condition, B.singleton(B.var("o"), "list"),
                      None, None, "list", 4)

    BINDINGS = {"OUTER": CList([1, 2]), "INNER": CList([1, 3])}

    @pytest.mark.parametrize("mode", MODES, ids=lambda m: m.value)
    @pytest.mark.parametrize("method", ["blocked", "indexed"])
    def test_non_boolean_condition_raises_everywhere(self, mode, method):
        from repro.core.errors import EvaluationError

        engine = _engine()
        expr = self._join(method)
        with pytest.raises(EvaluationError, match="join condition must be boolean"):
            engine.execute(expr, self.BINDINGS, optimize=False, mode=mode)
        with pytest.raises(EvaluationError, match="join condition must be boolean"):
            list(engine.stream(expr, self.BINDINGS, optimize=False, mode=mode))

    @pytest.mark.parametrize("mode", MODES, ids=lambda m: m.value)
    @pytest.mark.parametrize("method", ["blocked", "indexed"])
    def test_boolean_conditions_still_filter(self, mode, method):
        engine = _engine()
        expr = self._join(method)
        expr = A.Join(expr.method, expr.outer_var, expr.outer, expr.inner_var,
                      expr.inner, B.eq(B.var("o"), B.var("i")),
                      expr.body, expr.outer_key, expr.inner_key,
                      expr.kind, expr.block_size)
        assert list(engine.stream(expr, self.BINDINGS,
                                  optimize=False, mode=mode)) == [1]


def test_unit_block_join_probes_per_outer_element():
    """A block-size-1 blocked join yields each outer element's matches
    before the next outer element is pulled, and fetches the inner side
    exactly once (like the indexed join's build side)."""

    class CountingDriver(Driver):
        def __init__(self):
            super().__init__("counting")
            self.produced = 0

        def _execute(self, request):
            def cursor():
                for i in range(100):
                    self.produced += 1
                    yield i

            return cursor()

    engine = KleisliEngine()
    driver = engine.register_driver(CountingDriver())
    expr = A.Join("blocked", "o",
                  A.Scan("counting", {"table": "t"}, kind="list"),
                  "i", B.var("INNER"),
                  B.eq(B.prim("mod", B.var("o"), B.const(2)), B.var("i")),
                  B.singleton(B.var("o"), "list"), None, None, "list", 1)
    stream = engine.stream(expr, {"INNER": CList([0, 1])},
                           optimize=False, mode="compiled")
    assert next(stream) == 0
    assert driver.produced <= 2, \
        f"unit-block join drained {driver.produced} outer elements eagerly"
    stream.close()


def test_engine_stream_plans_unit_block_joins():
    """engine.stream optimizes with the streaming hint: the same query plans
    a block-256 blocked join for execute and a block-1 join for stream, and
    both produce the same value."""
    engine = _engine()
    condition = B.prim("lt", B.project(B.var("o"), "id"),
                       B.project(B.var("i"), "ref"))
    head = B.record(o=B.project(B.var("o"), "id"), r=B.project(B.var("i"), "ref"))
    inner = B.ext("i", B.if_then_else(condition, B.singleton(head), B.empty()),
                  B.var("INNER"))
    expr = B.ext("o", inner, B.var("OUTER"))

    def find_join(term):
        if isinstance(term, A.Join):
            return term
        for child in term.children():
            found = find_join(child)
            if found is not None:
                return found
        return None

    eager_join = find_join(engine.compile(expr))
    stream_join = find_join(engine.compile_for_stream(expr))
    assert eager_join is not None and stream_join is not None
    assert eager_join.method == stream_join.method == "blocked"
    assert eager_join.block_size == 256
    assert stream_join.block_size == 1

    bindings = {
        "OUTER": CSet([Record({"id": i, "name": f"n{i}"}) for i in range(12)]),
        "INNER": CSet([Record({"ref": i, "data": f"d{i}"}) for i in range(12)]),
    }
    streamed = CSet(engine.stream(expr, bindings, optimize=True, mode="compiled"))
    executed = engine.execute(expr, bindings, optimize=True, mode="compiled")
    assert streamed == executed


def test_optimized_stream_matches_optimized_execute_when_set_order_is_visible():
    """stream() plans block-1 blocked joins while execute() plans block 256;
    blocked-join emission is outer-major at EVERY block size, so the two
    plans must return the same value even when the set-kind join's
    first-occurrence order becomes value-visible downstream (a list
    comprehension over the join result) — regression for the one shape
    where block-size-dependent ordering would have diverged."""
    engine = _engine()
    condition = B.prim("lt", B.project(B.var("o"), "id"),
                       B.project(B.var("i"), "ref"))
    head = B.record(o=B.project(B.var("o"), "id"), r=B.project(B.var("i"), "ref"))
    inner = B.ext("i", B.if_then_else(condition, B.singleton(head), B.empty()),
                  B.var("INNER"))
    set_join = B.ext("o", inner, B.var("OUTER"))
    # The set's iteration order becomes a CList: order is now part of the value.
    expr = B.ext("p", B.singleton(B.project(B.var("p"), "r"), "list"),
                 set_join, kind="list")
    bindings = {
        "OUTER": CSet([Record({"id": i, "name": f"n{i}"}) for i in range(9)]),
        "INNER": CSet([Record({"ref": i, "data": f"d{i}"}) for i in range(12)]),
    }
    streamed = list(engine.stream(expr, bindings, optimize=True, mode="compiled"))
    executed = list(iter_collection(
        engine.execute(expr, bindings, optimize=True, mode="compiled")))
    assert streamed == executed


def test_blocked_join_element_sequence_is_block_size_independent():
    """Outer-major emission: for each outer element in order, all its inner
    matches — at every block size, in every backend."""
    engine = _engine()
    bindings = {"OUTER": CList([1, 2, 3]), "INNER": CList([10, 20])}

    def join(block_size):
        return A.Join("blocked", "o", B.var("OUTER"), "i", B.var("INNER"),
                      None, B.singleton(B.record(o=B.var("o"), i=B.var("i")),
                                        "list"),
                      None, None, "list", block_size)

    sequences = []
    for block_size in (1, 2, 256):
        for mode in MODES:
            sequences.append(list(iter_collection(
                engine.execute(join(block_size), bindings,
                               optimize=False, mode=mode))))
            sequences.append(list(engine.stream(join(block_size), bindings,
                                                optimize=False, mode=mode)))
    expected = [Record({"o": o, "i": i}) for o in [1, 2, 3] for i in [10, 20]]
    assert all(sequence == expected for sequence in sequences), sequences


def test_failed_requests_do_not_pollute_the_latency_ema():
    """A driver raising quickly (overloaded remote) must not drag the
    observed-latency EMA down and demote the driver from remote."""

    class FailingDriver(Driver):
        def __init__(self):
            super().__init__("flaky")

        def _execute(self, request):
            raise RuntimeError("overloaded")

    engine = KleisliEngine()
    engine.register_driver(FailingDriver())
    engine.statistics_registry.record_latency_sample("flaky", 0.2)
    assert engine.statistics_registry.is_remote("flaky")
    for _ in range(20):
        try:
            engine.driver_executor("flaky", {"table": "t"})
        except RuntimeError:
            pass
    assert engine.statistics_registry.observed_latency("flaky") == 0.2
    assert engine.statistics_registry.is_remote("flaky"), \
        "fast failures demoted a slow remote driver"
