"""The chunked (morsel-at-a-time) lowering: policy, ramp, batched fetch.

Element-sequence parity with ``execute`` is pinned by the differential
harness (``test_stream_differential``); this suite covers the chunk-specific
machinery — the :class:`~repro.core.nrc.compile.ChunkPolicy` ramp, the
remote-source chunk cap, per-element scalar stages for nodes with no chunk
lowering, and the ``Driver.execute_batch`` batched-fetch extension point.
"""

import pytest

from repro.core.nrc import ast as A
from repro.core.nrc import builder as B
from repro.core.nrc.compile import ChunkPolicy
from repro.core.nrc.eval import EvalContext, Environment
from repro.core.values import CList, CSet, iter_collection
from repro.kleisli.drivers.base import Driver
from repro.kleisli.drivers.flatfile import FlatFileDriver
from repro.kleisli.drivers.relational import RelationalDriver
from repro.kleisli.engine import KleisliEngine
from repro.relational.database import Database


class RangeDriver(Driver):
    def __init__(self, name="ranges"):
        super().__init__(name)
        self.batch_calls = []

    def _execute(self, request):
        base = int(request.get("base", 0))
        count = int(request.get("count", 5))

        def cursor():
            for i in range(base, base + count):
                yield i

        return cursor()

    def execute_batch(self, requests):
        self.batch_calls.append(len(requests))
        return super().execute_batch(requests)


def _engine():
    engine = KleisliEngine()
    engine.register_driver(RangeDriver())
    return engine


def _scan(base=0, count=5):
    request = {"table": "t", "count": count}
    args = {}
    if isinstance(base, A.Expr):
        args["base"] = base
    else:
        request["base"] = base
    return A.Scan("ranges", request, args=args, kind="list")


class TestChunkPolicy:
    def test_sizes_ramp_from_initial_to_max(self):
        policy = ChunkPolicy(max_chunk=128)
        assert policy.sizes_for() == (1, 128)
        assert policy.sizes_for("anything") == (1, 128)  # no is_remote wired

    def test_remote_drivers_keep_small_chunks(self):
        policy = ChunkPolicy(max_chunk=1024, remote_max_chunk=16,
                             is_remote=lambda name: name == "slow")
        assert policy.sizes_for("slow") == (1, 16)
        assert policy.sizes_for("fast") == (1, 1024)

    def test_engine_policy_follows_the_statistics_registry(self):
        engine = _engine()
        engine.statistics_registry.register_latency("ranges", 0.08)
        policy = engine.chunk_policy()
        assert policy.sizes_for("ranges")[1] == ChunkPolicy.REMOTE_MAX_CHUNK
        assert policy.sizes_for("other")[1] == ChunkPolicy.DEFAULT_MAX_CHUNK

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            ChunkPolicy(max_chunk=0)


class TestRampingChunks:
    def test_chunk_sizes_double_from_one(self):
        """Observed through CompiledChunkedStream.chunks: 1, 2, 4, ..."""
        engine = _engine()
        expr = B.ext("x", B.singleton(B.var("x"), "list"), _scan(count=40),
                     kind="list")
        query = engine.compiled_chunked(expr)
        context = EvalContext(driver_executor=engine.driver_executor)
        sizes = [len(chunk) for chunk in query.chunks(Environment(), context)]
        assert sizes == [1, 2, 4, 8, 16, 9]
        assert sum(sizes) == 40

    def test_remote_sources_cap_the_ramp(self):
        engine = _engine()
        expr = B.ext("x", B.singleton(B.var("x"), "list"), _scan(count=40),
                     kind="list")
        query = engine.compiled_chunked(expr)
        context = EvalContext(driver_executor=engine.driver_executor)
        context.chunk_policy = ChunkPolicy(remote_max_chunk=4,
                                           is_remote=lambda name: True)
        sizes = [len(chunk) for chunk in query.chunks(Environment(), context)]
        assert max(sizes) == 4
        assert sum(sizes) == 40

    def test_policy_is_runtime_not_baked_into_the_cache(self):
        """One cached pipeline serves every policy (the chunk size is read
        from the context, so the compile-cache key stays the fingerprint)."""
        engine = _engine()
        expr = B.ext("x", B.singleton(B.var("x"), "list"), _scan(count=20),
                     kind="list")
        small = list(engine.stream(expr, optimize=False, chunked=True,
                                   chunk_policy=ChunkPolicy(max_chunk=2)))
        hits_before = engine._compiled_queries.hits
        large = list(engine.stream(expr, optimize=False, chunked=True,
                                   chunk_policy=ChunkPolicy(max_chunk=512)))
        assert small == large == list(range(20))
        assert engine._compiled_queries.hits == hits_before + 1

    def test_chunked_false_forces_the_per_element_backend(self):
        engine = _engine()
        expr = B.ext("x", B.singleton(B.var("x"), "list"), _scan(count=3),
                     kind="list")
        assert list(engine.stream(expr, optimize=False, chunked=False)) == \
            [0, 1, 2]
        # The per-element lowering was cached under its own target tag.
        targets = {key[0] for key in engine._compiled_queries._entries}
        assert "stream" in targets and "chunked" not in targets


class TestScalarStages:
    def test_fold_still_streams_as_an_eager_section(self):
        """A node with neither a chunk nor a stream lowering keeps the eager
        section semantics inside a chunked run."""
        engine = _engine()
        plus = B.lam("a", B.lam("b", B.prim("add", B.var("a"), B.var("b"))))
        fold = B.fold(plus, B.const(0), A.Const(CList([1, 2, 3])))
        streamed = list(engine.stream(fold, optimize=False, chunked=True))
        assert streamed == [6]
        assert engine.last_eval_statistics.stream_fallbacks >= 1

    def test_scalar_stage_counter_reports(self):
        """Drive _chunk_via_stream directly through a registered-stream-only
        node: the blocked join with block size > 1 keeps the per-element
        lowering inside a chunked run and counts a scalar stage."""
        engine = KleisliEngine()
        expr = A.Join("blocked", "o", B.var("OUTER"), "i", B.var("INNER"),
                      None, B.singleton(B.var("o"), "list"), None, None,
                      "list", 4)
        bindings = {"OUTER": CList([1, 2, 3]), "INNER": CList([10])}
        query = engine.compiled_chunked(expr)
        assert "Join" in query.scalar_stages
        assert not query.fully_chunked
        streamed = list(engine.stream(expr, bindings, optimize=False,
                                      chunked=True))
        assert streamed == [1, 2, 3]
        assert engine.last_eval_statistics.scalar_stages >= 1


class TestBatchedBodyScans:
    def test_body_scans_are_batched_per_chunk(self):
        """An Ext whose body is a Scan issues ONE execute_batch call per
        source chunk, with parity on values and scan accounting."""
        engine = _engine()
        driver = engine.drivers["ranges"]
        expr = B.ext("x",
                     _scan(count=2, base=B.var("x")),
                     A.Const(CList(range(7))), kind="list")
        chunked = list(engine.stream(expr, optimize=False, chunked=True))
        chunked_stats = engine.last_eval_statistics
        # Ramp 1, 2, 4 over 7 source elements -> one batch per chunk.
        assert driver.batch_calls == [1, 2, 4]
        executed = list(iter_collection(engine.execute(expr, optimize=False)))
        executed_stats = engine.last_eval_statistics
        assert chunked == executed
        assert chunked_stats.scan_requests == executed_stats.scan_requests == 7
        assert chunked_stats.elements_fetched == executed_stats.elements_fetched

    def test_remote_scan_drivers_cap_the_request_batch(self):
        """The batch size is bounded by the SCAN driver's policy maximum,
        not the source's chunk ramp: a remote body-scan driver never sees
        more than remote_max_chunk requests per execute_batch call, however
        large the local source's chunks grow (regression: one batch used to
        block on a full source chunk's worth of round-trips)."""
        engine = _engine()
        driver = engine.drivers["ranges"]
        expr = B.ext("x",
                     _scan(count=1, base=B.var("x")),
                     A.Const(CList(range(30))), kind="list")
        policy = ChunkPolicy(max_chunk=1024, remote_max_chunk=4,
                             is_remote=lambda name: name == "ranges")
        chunked = list(engine.stream(expr, optimize=False, chunked=True,
                                     chunk_policy=policy))
        assert chunked == list(range(30))
        assert max(driver.batch_calls) <= 4, driver.batch_calls
        assert sum(driver.batch_calls) == 30

    def test_default_looping_batches_feed_accurate_latency_samples(self):
        """A driver with the DEFAULT execute_batch dispatches per request,
        so every round-trip feeds the EMA and a slow undeclared driver
        reached only through batched body scans is still promoted to
        remote (regression: batched dispatch used to starve observation)."""
        import time as _time

        class SlowDriver(Driver):
            def __init__(self):
                super().__init__("slow")

            def _execute(self, request):
                _time.sleep(0.06)
                return CList([1])

        engine = KleisliEngine()
        engine.register_driver(SlowDriver())
        engine.driver_executor_batch("slow", [{"a": i} for i in range(2)])
        assert engine.statistics_registry.observed_latency("slow") > 0.05
        assert engine.statistics_registry.is_remote("slow")

    def test_native_batch_dispatch_does_not_pollute_the_latency_ema(self):
        """A NATIVE batch is one wire call; no per-request decomposition is
        sound, so it must not feed the EMA (regression: a mean-per-request
        sample from native batches decayed remote drivers below the
        promotion threshold as batches grew)."""

        class NativeBatchDriver(Driver):
            def __init__(self):
                super().__init__("nativebatch")

            def _execute(self, request):
                return CList([1])

            def execute_batch(self, requests):
                # One (fast) wire call for the whole batch.
                return [self._execute(dict(request)) for request in requests]

        engine = KleisliEngine()
        engine.register_driver(NativeBatchDriver())
        # A genuinely slow per-request history promotes the driver...
        engine.statistics_registry.record_latency_sample("nativebatch", 0.2)
        assert engine.statistics_registry.is_remote("nativebatch")
        # ...and native batched dispatch must not decay it.
        engine.driver_executor_batch("nativebatch",
                                     [{"a": i} for i in range(8)])
        assert engine.statistics_registry.observed_latency("nativebatch") == 0.2
        assert engine.statistics_registry.is_remote("nativebatch")

    def test_empty_batch_is_a_no_op(self):
        engine = _engine()
        assert engine.driver_executor_batch("ranges", []) == []


class TestDriverExecuteBatch:
    def test_default_loops_over_execute(self):
        driver = RangeDriver()
        results = Driver.execute_batch(driver, [
            {"base": 0, "count": 2}, {"base": 10, "count": 2}])
        assert [list(cursor) for cursor in results] == [[0, 1], [10, 11]]
        assert driver.request_count == 2

    def test_relational_batch_is_one_remote_round_trip(self):
        database = Database()
        table = database.create_table_from_spec("t", {"id": "int"})
        for i in range(4):
            table.insert({"id": i})
        driver = RelationalDriver.with_latency("rel", database, latency=0.0)
        requests = [{"table": "t", "where": [{"column": "id", "op": "=",
                                              "value": i}]}
                    for i in range(3)]
        results = driver.execute_batch(requests)
        assert [sorted(record.project("id") for record in result)
                for result in results] == [[0], [1], [2]]
        # One wire round-trip (call log entry) for the whole batch; three
        # separate execute() calls would have logged three.
        assert driver.remote.request_count == 1
        assert driver.request_count == 3

    def test_relational_batch_matches_per_request_results(self):
        database = Database()
        table = database.create_table_from_spec("t", {"id": "int",
                                                      "name": "string"})
        for i in range(5):
            table.insert({"id": i, "name": f"n{i}"})
        driver = RelationalDriver.with_latency("rel", database, latency=0.0)
        requests = [{"table": "t"}, {"query": "select id from t where id = 2"}]
        batched = driver.execute_batch(requests)
        singly = [driver.execute(request) for request in requests]
        for batch_result, single_result in zip(batched, singly):
            assert CSet(iter_collection(batch_result)) == \
                CSet(iter_collection(single_result))

    def test_flatfile_batch_reads_each_file_once(self, tmp_path):
        path = tmp_path / "seqs.fa"
        path.write_text(">a\nACGT\n>b\nGGCC\n")
        reads = []

        class CountingFlatFile(FlatFileDriver):
            def _load_text(self, request):
                if "text" not in request:  # an actual file read
                    reads.append(request.get("file"))
                return super()._load_text(request)

        driver = CountingFlatFile(name="Files")
        requests = [{"format": "fasta", "file": str(path)}] * 3
        results = driver.execute_batch(requests)
        assert len(results) == 3
        assert len(reads) == 1, "batch read the same file repeatedly"
        assert driver.request_count == 3
        for result in results:
            names = sorted(record.project("identifier")
                           for record in iter_collection(result))
            assert names == ["a", "b"]


class TestSetKindChunks:
    def test_cross_chunk_dedup_matches_eager_sets(self):
        """The seen-set persists across chunk boundaries: duplicates in a
        LATER chunk of a set-kind stage are suppressed."""
        engine = KleisliEngine()
        expr = B.ext("x", B.singleton(B.prim("mod", B.var("x"), B.const(3))),
                     A.Const(CSet(range(11))))
        streamed = list(engine.stream(expr, optimize=False, chunked=True,
                                      chunk_policy=ChunkPolicy(max_chunk=2)))
        executed = list(iter_collection(engine.execute(expr, optimize=False)))
        assert streamed == executed == [0, 1, 2]

    def test_nested_set_unions_carry_one_seen_set(self):
        """The chunked typed union unwraps operand dedup stages like the
        per-element one: nested set unions still match eager order."""
        engine = KleisliEngine()
        expr = A.Union(
            A.Union(
                B.ext("x", B.singleton(B.prim("mod", B.var("x"), B.const(3))),
                      A.Const(CSet(range(7)))),
                B.ext("x", B.singleton(B.prim("mod", B.var("x"), B.const(4))),
                      A.Const(CSet(range(6)))),
                "set"),
            B.ext("x", B.singleton(B.prim("mod", B.var("x"), B.const(5))),
                  A.Const(CSet(range(9)))),
            "set")
        streamed = list(engine.stream(expr, optimize=False, chunked=True,
                                      chunk_policy=ChunkPolicy(max_chunk=2)))
        executed = list(iter_collection(engine.execute(expr, optimize=False)))
        assert streamed == executed


class TestReviewRegressions:
    """Pins for reviewed edge cases of the batched/chunked machinery."""

    def test_native_per_request_batches_still_feed_the_ema(self):
        """A native execute_batch that does per-request work (flatfile-style,
        batch_single_round_trip=False) records the mean per-request cost, so
        a slow driver of that shape is still promoted to remote."""
        import time as _time

        class CachedBatchDriver(Driver):
            def __init__(self):
                super().__init__("cachedbatch")

            def _execute(self, request):
                _time.sleep(0.06)
                return CList([1])

            def execute_batch(self, requests):
                # Native, but still one unit of work per request.
                return [self.execute(dict(request)) for request in requests]

        engine = KleisliEngine()
        engine.register_driver(CachedBatchDriver())
        engine.driver_executor_batch("cachedbatch", [{"a": 1}, {"a": 2}])
        assert engine.statistics_registry.observed_latency("cachedbatch") > 0.05
        assert engine.statistics_registry.is_remote("cachedbatch")

    def test_parallel_ext_rechunk_respects_remote_body_drivers(self):
        """The chunked ParallelExt's output re-chunk uses the subtree's
        conservative driver bounds: a remote body scan caps chunk sizes at
        remote_max_chunk, like every other re-chunk point."""
        from repro.core.optimizer.parallel import ParallelExt

        engine = _engine()
        pexpr = ParallelExt("x",
                            _scan(count=3, base=B.var("x")),
                            A.Const(CList(range(40))), kind="list",
                            max_workers=3)
        query = engine.compiled_chunked(pexpr)
        context = EvalContext(
            driver_executor=engine.driver_executor,
            driver_executor_batch=engine.driver_executor_batch)
        context.chunk_policy = ChunkPolicy(
            max_chunk=1024, remote_max_chunk=4,
            is_remote=lambda name: name == "ranges")
        sizes = [len(chunk) for chunk in query.chunks(Environment(), context)]
        assert sum(sizes) == 120
        assert max(sizes) <= 4, sizes

    def test_scan_batch_ramp_continues_across_results(self):
        """The batched-scan stage's chunk ramp does not restart at 1 for
        every scan result: after warming up, full-size chunks keep coming."""
        engine = _engine()
        expr = B.ext("x",
                     _scan(count=8, base=B.var("x")),
                     A.Const(CList(range(20))), kind="list")
        query = engine.compiled_chunked(expr)
        context = EvalContext(
            driver_executor=engine.driver_executor,
            driver_executor_batch=engine.driver_executor_batch)
        sizes = [len(chunk) for chunk in query.chunks(Environment(), context)]
        assert sum(sizes) == 160
        assert sizes[0] == 1  # TTFR: the very first chunk is one element
        # A per-result restart would emit 20 x [1, 2, 4, 1] = 80 chunks;
        # the continuing ramp reaches the 8-element result size and stays.
        assert len(sizes) <= 30, sizes
        assert sizes[-1] == 8, sizes
