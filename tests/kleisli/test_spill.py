"""Spill-to-disk backends and the spill == in-memory differential.

The spill subsystem trades memory for disk at the engine's two biggest
unbounded materialization points (join build sides, dedup seen-sets).  The
contract this file pins:

* each backend is **bit-for-bit equivalent** to the in-memory structure it
  replaces (same values, same order, exact dedup under hash collisions);
* a spilled engine run matches the ungoverned run in **values and
  ``elements_fetched``** across all three lowerings (eager, per-element,
  chunked) — degradation is invisible except in the governance books;
* the plan gate picks in-memory vs. spill **up front** from the PR 5 cost
  model's row estimate, and an over-budget query that would die with
  ``spill=False`` completes under ``spill=True``;
* :meth:`SpillManager.close` deletes every spill file.
"""

import pickle

import pytest

from repro.core.errors import MemoryBudgetExceededError
from repro.core.nrc import ast as A
from repro.core.nrc import builder as B
from repro.core.nrc.eval import EvalScope
from repro.core.planner.plan import PhysicalPlan
from repro.core.values import iter_collection
from repro.kleisli.drivers.base import Driver
from repro.kleisli.engine import KleisliEngine
from repro.kleisli.governance import NOMINAL_ROW_BYTES, MemoryBudget
from repro.kleisli.spill import (
    PARTITIONS,
    GovernedSeenSet,
    SpilledIndex,
    SpilledList,
    SpillManager,
)


class RangeDriver(Driver):
    """Lazy scans — the build sides below must not arrive pre-materialized,
    or the spill paths (which only fire for lazy sources) stay cold."""

    def __init__(self, name="ranges"):
        super().__init__(name)

    def _execute(self, request):
        base = int(request.get("base", 0))
        count = int(request.get("count", 5))

        def cursor():
            for i in range(base, base + count):
                yield i

        return cursor()


def _scan(count, base=0):
    return A.Scan("ranges", {"table": "t", "count": count, "base": base},
                  args={}, kind="list")


class Colliding:
    """All instances share one hash bucket; equality is by payload.  Forces
    the seen-set's collision path: a hash hit must verify true equality."""

    def __init__(self, payload):
        self.payload = payload

    def __hash__(self):
        return 7

    def __eq__(self, other):
        return isinstance(other, Colliding) and self.payload == other.payload


class Unpicklable:
    def __init__(self, payload):
        self.payload = payload

    def __hash__(self):
        return hash(("unpicklable", self.payload))

    def __eq__(self, other):
        return isinstance(other, Unpicklable) and self.payload == other.payload

    def __reduce__(self):
        raise pickle.PicklingError("deliberately unpicklable")


# -- SpilledList --------------------------------------------------------------

class TestSpilledList:
    def test_matches_list_model_across_flush_boundaries(self):
        manager = SpillManager(memory_elements=8)
        spilled = manager.spilled_list()
        model = []
        for i in range(100):
            spilled.append(("row", i))
            model.append(("row", i))
        assert list(spilled) == model
        assert len(spilled) == 100
        # Multi-pass: a build side is replayed once per outer block.
        assert list(spilled) == model
        assert manager.books["spills"] == 1
        assert manager.books["bytes_spilled"] > 0
        manager.close()

    def test_small_list_never_touches_disk(self):
        manager = SpillManager(memory_elements=1024)
        spilled = manager.spilled_list()
        spilled.extend(range(10))
        assert list(spilled) == list(range(10))
        assert manager.books["spills"] == 0
        manager.close()

    def test_unpicklable_batches_are_retained_in_order(self):
        manager = SpillManager(memory_elements=2)
        spilled = manager.spilled_list()
        values = [0, 1, Unpicklable("a"), Unpicklable("b"), 4, 5, 6]
        spilled.extend(values)
        assert list(spilled) == values
        assert manager.books["spill_fallbacks"] >= 1
        manager.close()


# -- GovernedSeenSet ----------------------------------------------------------

class TestGovernedSeenSet:
    def test_matches_set_model_past_the_spill_threshold(self):
        manager = SpillManager(memory_elements=16)
        seen = manager.seen_set()
        model = set()
        outcome_parity = True
        for i in range(400):
            value = ("v", i % 150)       # repeats force real dedup work
            outcome_parity &= ((value in seen) == (value in model))
            seen.add(value)
            model.add(value)
        assert outcome_parity
        assert len(seen) == len(model) == 150
        assert manager.books["spills"] >= 1
        manager.close()

    def test_exact_dedup_under_hash_collisions(self):
        manager = SpillManager(memory_elements=4)
        seen = manager.seen_set()
        for i in range(50):
            seen.add(Colliding(i % 20))
        assert len(seen) == 20
        assert Colliding(3) in seen
        assert Colliding(99) not in seen
        manager.close()

    def test_unpicklable_values_still_dedup(self):
        manager = SpillManager(memory_elements=2)
        seen = manager.seen_set()
        for i in range(20):
            seen.add(Unpicklable(i % 5))
        assert len(seen) == 5
        assert Unpicklable(2) in seen
        assert manager.books["spill_fallbacks"] >= 1
        manager.close()


# -- SpilledIndex -------------------------------------------------------------

class TestSpilledIndex:
    def test_matches_dict_model(self):
        manager = SpillManager(memory_elements=8)
        index = manager.index()
        model = {}
        for i in range(300):
            key, row = i % 40, ("row", i)
            index.add(key, row)
            model.setdefault(key, []).append(row)
        for key in range(45):            # probe present and absent keys
            assert index.get(key) == model.get(key)
            assert (key in index) == (key in model)
        assert len(index) == 300
        assert manager.books["spills"] >= 1
        manager.close()

    def test_probe_locality_survives_interleaved_builds(self):
        manager = SpillManager(memory_elements=8)
        index = manager.index()
        index.add("a", 1)
        assert index.get("a") == [1]     # loads + caches a's partition
        index.add("a", 2)                # append must refresh the cache
        assert index.get("a") == [1, 2]
        manager.close()

    def test_unpicklable_rows_live_in_residue(self):
        manager = SpillManager(memory_elements=8)
        index = manager.index()
        index.add("k", Unpicklable("x"))
        index.add("k", 5)
        assert index.get("k") == [5, Unpicklable("x")] or \
            index.get("k") == [Unpicklable("x"), 5]
        manager.close()


# -- SpillManager lifecycle ---------------------------------------------------

def test_close_deletes_every_spill_file_and_is_idempotent():
    manager = SpillManager(memory_elements=2)
    spilled = manager.spilled_list()
    spilled.extend(range(50))
    seen = manager.seen_set()
    for i in range(50):
        seen.add(i)
    handles = list(manager._files)
    assert handles
    manager.close()
    assert all(handle.closed for handle in handles)
    manager.close()                      # idempotent


def test_backends_refuse_a_closed_manager():
    manager = SpillManager(memory_elements=1)
    manager.close()
    spilled = manager.spilled_list()
    with pytest.raises(Exception):
        spilled.extend(range(10))


# -- the plan gate ------------------------------------------------------------

class TestPlanGate:
    def _engine(self):
        engine = KleisliEngine()
        engine.register_driver(RangeDriver())
        return engine

    def test_forced_spill_and_forbidden_spill(self):
        engine = self._engine()
        budget = MemoryBudget(1 << 30)
        assert engine._resolve_spill(True, None, None) is not None
        assert engine._resolve_spill(False, budget,
                                     PhysicalPlan.default()) is None

    def test_auto_spills_only_when_estimate_exceeds_the_tightest_cap(self):
        engine = self._engine()
        pool = MemoryBudget(1 << 20, label="engine")
        query = MemoryBudget(None, label="query", parent=pool)
        tight = MemoryBudget(100 * NOMINAL_ROW_BYTES, label="query",
                             parent=pool)
        # Build plans through the dataclass directly (frozen).
        import dataclasses
        big = dataclasses.replace(PhysicalPlan.default(),
                                  estimated_rows=1_000_000.0)
        small = dataclasses.replace(PhysicalPlan.default(),
                                    estimated_rows=10.0)
        unknown = PhysicalPlan.default()
        assert engine._resolve_spill(None, tight, big) is not None
        assert engine._resolve_spill(None, tight, small) is None
        # No estimate / no cap anywhere → stay in memory (budget enforces).
        assert engine._resolve_spill(None, tight, unknown) is None
        assert engine._resolve_spill(None, query, big) is not None  # pool cap
        assert engine._resolve_spill(None, None, big) is None


# -- engine differential: spill == in-memory ----------------------------------

COUNT = 1500  # > SpillManager.DEFAULT_MEMORY_ELEMENTS: the backends hit disk


def _engine():
    engine = KleisliEngine()
    engine.register_driver(RangeDriver())
    return engine


def _dedup_expr():
    """Set-kind comprehension with >1024 distinct survivors and repeats."""
    return B.ext("x", B.singleton(B.prim("mod", B.var("x"),
                                         B.const(1400)), "set"),
                 _scan(COUNT), kind="set")


def _indexed_join_expr():
    """Indexed join whose build side is a lazy 1500-row scan."""
    condition = B.eq(B.prim("mod", B.var("o"), B.const(COUNT)), B.var("i"))
    return A.Join("indexed", "o", _scan(40), "i", _scan(COUNT),
                  condition, B.singleton(B.prim("add", B.var("o"),
                                                B.var("i")), "list"),
                  outer_key=B.prim("mod", B.var("o"), B.const(COUNT)),
                  inner_key=B.var("i"), kind="list")


def _blocked_join_expr():
    """Blocked join: the lazy inner side is materialized for multi-pass."""
    condition = B.prim("lt", B.var("i"), B.var("o"))
    return A.Join("blocked", "o", _scan(3), "i", _scan(COUNT, base=0),
                  condition, B.singleton(B.var("i"), "list"),
                  kind="list", block_size=2)


def _drain(engine, expr, **kwargs):
    """(values, elements_fetched) for one fully-drained run."""
    values = list(engine.stream(expr, optimize=False, **kwargs))
    return values, engine.last_eval_statistics.elements_fetched


def _drain_eager(engine, expr, **kwargs):
    result = engine.execute(expr, optimize=False, **kwargs)
    values = list(iter_collection(result))
    return values, engine.last_eval_statistics.elements_fetched


@pytest.mark.parametrize("shape", [_dedup_expr, _indexed_join_expr,
                                   _blocked_join_expr])
def test_spilled_run_matches_in_memory_across_all_lowerings(shape):
    expr = shape()
    baseline_engine = _engine()
    spill_engine = _engine()
    for drain, kwargs in [
        (_drain_eager, {}),
        (_drain, {"chunked": False}),
        (_drain, {"chunked": True}),
    ]:
        plain_values, plain_fetched = drain(baseline_engine, expr, **kwargs)
        spill_values, spill_fetched = drain(spill_engine, expr,
                                            spill=True, **kwargs)
        assert spill_values == plain_values
        assert spill_fetched == plain_fetched
        assert EvalScope.live_count() == 0
    books = spill_engine.governor.snapshot()
    assert books["spills"] > 0
    assert books["bytes_spilled"] > 0
    assert baseline_engine.governor.snapshot()["spills"] == 0


def test_over_budget_dedup_completes_under_spill():
    """The headline degradation: a budget that rejects the in-memory run is
    enough once the seen-set lives on disk.  Per-element lowering: the
    seen-set is the run's only materialization point (the chunked pump's
    transient chunk buffers charge the budget by design, spill or not)."""
    expr = _dedup_expr()
    budget = 64 * NOMINAL_ROW_BYTES
    strict = _engine()
    with pytest.raises(MemoryBudgetExceededError):
        list(strict.stream(expr, optimize=False, chunked=False,
                           memory_budget=budget, spill=False))
    degraded = _engine()
    values = list(degraded.stream(expr, optimize=False, chunked=False,
                                  memory_budget=budget, spill=True))
    plain = list(_engine().stream(expr, optimize=False, chunked=False))
    assert values == plain
    books = degraded.governor.snapshot()
    assert books["spills"] > 0 and books["budget_rejections"] == 0


def test_spilled_engine_run_settles_books_and_budget():
    engine = KleisliEngine(memory_pool_limit=1 << 22)
    engine.register_driver(RangeDriver())
    list(engine.stream(_dedup_expr(), optimize=False, spill=True))
    assert engine.governor.pool.used == 0
    assert engine.governor.snapshot()["spills"] > 0
    assert EvalScope.live_count() == 0


def test_partitions_constant_is_sane():
    assert PARTITIONS >= 2
    assert isinstance(GovernedSeenSet, type)
    assert isinstance(SpilledList, type)
    assert isinstance(SpilledIndex, type)
