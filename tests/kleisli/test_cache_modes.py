"""SubqueryCache accounting when one ``Cached`` node crosses execution modes.

The subquery cache lives on the engine (one per session), so a ``Cached``
node evaluated first in compiled mode must be a cache *hit* when the same
query later runs interpreted (and vice versa) — with the hit/miss counters
on both the cache and the per-run ``EvalStatistics`` agreeing.
"""

import pytest

from repro.core.nrc import ast as A
from repro.core.nrc import builder as B
from repro.core.values import CSet
from repro.kleisli.engine import ExecutionMode
from repro.kleisli.session import Session


def _cached_query():
    """``{ x + sum(Cached(EXPENSIVE)) | x <- DB }`` — the cached subquery is
    loop-invariant, so one evaluation has |DB| lookups of the same key."""
    cached = A.Cached(B.ext("e", B.singleton(B.prim("mul", B.var("e"), B.const(2))),
                            B.var("EXPENSIVE")), key="%shared-subquery")
    body = B.singleton(B.prim("add", B.var("x"), B.prim("sum", cached)))
    return B.ext("x", body, B.var("DB"))


@pytest.fixture()
def session():
    session = Session()
    session.bind("DB", {1, 2, 3, 4, 5}, list_as="set")
    session.bind("EXPENSIVE", {10, 20, 30}, list_as="set")
    return session


def _run(session, mode):
    value = session.engine.execute(_cached_query(), session.values,
                                   optimize=False, mode=mode)
    return value, session.engine.last_eval_statistics


class TestCacheAcrossModes:
    @pytest.mark.parametrize("first,second", [
        (ExecutionMode.COMPILED, ExecutionMode.INTERPRET),
        (ExecutionMode.INTERPRET, ExecutionMode.COMPILED),
    ], ids=["compiled-then-interpreted", "interpreted-then-compiled"])
    def test_second_mode_hits_the_first_modes_entry(self, session, first, second):
        cache = session.engine.cache
        value_first, stats_first = _run(session, first)

        # First run: one miss populates the entry, the remaining |DB|-1
        # lookups hit it.  SubqueryCache.misses stays 0 because the evaluator
        # probes membership before reading.
        assert stats_first.cache_misses == 1
        assert stats_first.cache_hits == 4
        assert cache.misses == 0
        assert cache.hits == 4
        assert "%shared-subquery" in cache

        value_second, stats_second = _run(session, second)

        # Second run, other mode: the very first lookup is already a hit.
        assert stats_second.cache_misses == 0
        assert stats_second.cache_hits == 5
        assert cache.hits == 9
        assert cache.misses == 0

        assert value_first == value_second == CSet([121, 122, 123, 124, 125])
        assert stats_first.execution_mode != stats_second.execution_mode

    def test_cached_value_is_materialised_identically(self, session):
        """The cached payload written by either mode is a plain collection
        (not a lazy stream), so the *other* mode can consume it directly."""
        _run(session, ExecutionMode.COMPILED)
        payload = session.engine.cache["%shared-subquery"]
        assert payload == CSet([20, 40, 60])
        session.engine.cache.clear()
        session.engine.cache.hits = 0
        _run(session, ExecutionMode.INTERPRET)
        assert session.engine.cache["%shared-subquery"] == payload
