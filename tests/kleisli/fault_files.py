"""Fault-injecting file fixtures for the plan-store crash suite.

:class:`FaultInjectingOpener` is the one storage fault model the
persistence tests use (the file-level sibling of
:mod:`fault_drivers`' driver faults): an ``open``-compatible callable whose
handles can be told, per byte offset, to die mid-write — the write stops
after ``crash_after_bytes`` of the *total* bytes ever written through the
opener have reached the file, and every later operation raises ``OSError``
as a killed process's descriptors would.  Because the cut is by byte, not
by record, the surviving file ends in a torn frame: exactly what a power
cut mid-``write`` leaves on disk.

``fail_writes_from`` instead makes whole write calls fail (with the bytes
*not* written) from the Nth write onward — the full-disk model, which must
degrade to a disabled writer, never an exception escaping into query
execution.
"""

from __future__ import annotations

import threading
from typing import Optional

__all__ = ["FaultInjectingOpener"]


class FaultInjectingOpener:
    """An ``open()`` stand-in whose handles can crash mid-write.

    ``crash_after_bytes``   total bytes (across all handles this opener
                            created, in write order) after which a write is
                            cut short *mid-record* and the handle dies —
                            the partial prefix reaches the file, the rest
                            never does, and all later calls raise
                            ``OSError``.
    ``fail_writes_from``    1-based write ordinal from which whole write
                            calls raise ``OSError`` without writing (disk
                            full); flush/close keep working.

    Counters (``bytes_written``, ``writes``, ``faults``) are lock-guarded
    so concurrent-writer tests can share one opener.
    """

    def __init__(self, crash_after_bytes: Optional[int] = None,
                 fail_writes_from: Optional[int] = None):
        self.crash_after_bytes = crash_after_bytes
        self.fail_writes_from = fail_writes_from
        self.bytes_written = 0
        self.writes = 0
        self.faults = 0
        self.crashed = False
        self._lock = threading.Lock()

    def __call__(self, path, mode="rb", *args, **kwargs):
        handle = open(path, mode, *args, **kwargs)
        if "r" in mode and "+" not in mode:
            return handle  # reads are never faulted; recovery is the test
        return _FaultyWriteHandle(handle, self)

    # -- the fault decisions, shared across handles --------------------------

    def _before_write(self, data: bytes) -> bytes:
        """How much of this write may proceed; raises on a whole-call fault."""
        with self._lock:
            self.writes += 1
            if self.crashed:
                self.faults += 1
                raise OSError("injected: file handle died earlier")
            if self.fail_writes_from is not None \
                    and self.writes >= self.fail_writes_from:
                self.faults += 1
                raise OSError("injected: disk full")
            if self.crash_after_bytes is not None:
                budget = self.crash_after_bytes - self.bytes_written
                if budget < len(data):
                    # The crash: a partial prefix lands, then the lights
                    # go out for every handle of this opener.
                    self.crashed = True
                    self.faults += 1
                    self.bytes_written += max(0, budget)
                    return data[:max(0, budget)]
            self.bytes_written += len(data)
            return data

    def _check_alive(self) -> None:
        with self._lock:
            if self.crashed:
                raise OSError("injected: file handle died earlier")


class _FaultyWriteHandle:
    """One writable handle routing its writes through the opener's faults."""

    def __init__(self, handle, opener: FaultInjectingOpener):
        self._handle = handle
        self._opener = opener

    def write(self, data: bytes) -> int:
        allowed = self._opener._before_write(bytes(data))
        if allowed:
            self._handle.write(allowed)
            self._handle.flush()
        if len(allowed) < len(data):
            raise OSError("injected: crash mid-write")
        return len(allowed)

    def flush(self) -> None:
        self._opener._check_alive()
        self._handle.flush()

    def fileno(self) -> int:
        self._opener._check_alive()
        return self._handle.fileno()

    def tell(self) -> int:
        return self._handle.tell()

    def truncate(self, size: Optional[int] = None) -> int:
        # A dead handle cannot repair its torn tail — exactly the state a
        # killed process leaves behind.
        self._opener._check_alive()
        return self._handle.truncate(size)

    def close(self) -> None:
        self._handle.close()

    def __getattr__(self, name):
        return getattr(self._handle, name)
