"""Tests for the CPL session: binds, defines, queries, output formats, streaming."""

import pytest

from repro.core import types as T
from repro.core.values import CList, CSet, Record, Variant
from repro.kleisli.session import Session


class TestBindAndRun:
    def test_bind_python_data_and_query(self):
        session = Session()
        session.bind("DB", [{"title": "A", "year": 1989}, {"title": "B", "year": 1992}],
                     list_as="set")
        result = session.run(r"{p.title | \p <- DB, p.year = 1989}")
        assert result == CSet(["A"])

    def test_query_result_carries_type_and_plans(self, publication_session):
        result = publication_session.query(r"{p.title | \p <- DB}")
        assert result.inferred_type == T.SetType(T.STRING)
        assert result.nrc is not None and result.optimized is not None
        assert len(result.value) > 0

    def test_defines_are_synonyms_expanded_into_queries(self, publication_session):
        publication_session.run("define Recent == {p | \\p <- DB, p.year >= 1990}")
        result = publication_session.run("{p.title | \\p <- Recent}")
        direct = publication_session.run(r"{p.title | \p <- DB, p.year >= 1990}")
        assert result == direct

    def test_defined_function_applies(self, publication_session):
        publication_session.run(
            "define titles-in == \\y => {p.title | \\p <- DB, p.year = y}")
        assert publication_session.run("titles-in(1989)") == \
            publication_session.run(r"{p.title | \p <- DB, p.year = 1989}")

    def test_paper_jname_function(self, tiny_publications):
        session = Session()
        session.bind("DB", tiny_publications)
        session.run('''
            define jname ==
               <uncontrolled = \\s> => s
             | <controlled = <medline-jta = \\s>> => s
             | <controlled = <iso-jta = \\s>> => s
        ''')
        result = session.run(r"{[title = t, name = jname(v)] | [title = \t, journal = \v, ...] <- DB}")
        names = {record.project("name") for record in result}
        assert names == {"J Immunol", "Workshop Notes", "Nucleic Acids Res."}

    def test_unoptimized_and_optimized_agree(self, publication_session):
        query = (r"{[keyword = k, titles = {x.title | \x <- DB, k <- x.keywd}] |"
                 r" \y <- DB, \k <- y.keywd}")
        assert publication_session.query(query).value == \
            publication_session.query(query, optimize=False).value

    def test_typecheck_can_be_disabled(self, publications):
        session = Session(typecheck=False)
        session.bind("DB", publications)
        assert session.query(r"{p.title | \p <- DB}").inferred_type is None


class TestOutputFormats:
    def test_print_value_round_trips_visually(self, publication_session):
        rendered = publication_session.print_value(CSet([Record({"a": 1})]))
        assert rendered == "{[a=1]}"

    def test_print_value_wraps_long_output(self, publication_session):
        value = publication_session.run(r"{p | \p <- DB, p.year = 1989}")
        rendered = publication_session.print_value(value, width=40)
        assert "\n" in rendered

    def test_tabular_output(self, publication_session):
        value = publication_session.run(r"{[title = p.title, year = p.year] | \p <- DB}")
        text = publication_session.print_tabular(value)
        header = text.splitlines()[0].split("\t")
        assert set(header) == {"title", "year"}
        assert len(text.splitlines()) == len(value) + 1

    def test_html_output_contains_table(self, publication_session):
        value = publication_session.run(r"{[title = p.title] | \p <- DB, p.year = 1989}")
        html = publication_session.print_html(value, title="Publications in 1989")
        assert "<table" in html and "Publications in 1989" in html

    def test_html_escapes_content(self, publication_session):
        html = publication_session.print_html(CSet([Record({"t": "<script>"})]))
        assert "<script>" not in html


class TestStreaming:
    def test_stream_yields_same_elements_as_query(self, publication_session):
        query = r"{p.title | \p <- DB, p.year >= 1990}"
        streamed = CSet(publication_session.stream(query))
        assert streamed == publication_session.run(query)

    def test_stream_of_scalar_query(self, publication_session):
        assert list(publication_session.stream("{1, 2, 3}")) == list(CSet([1, 2, 3]))


class TestVariantsEndToEnd:
    def test_variant_pattern_query(self, tiny_publications):
        session = Session()
        session.bind("DB", tiny_publications)
        result = session.run(
            r"{[name = n, title = t] |"
            r" [title = \t, journal = <uncontrolled = \n>, ...] <- DB}")
        assert result == CSet([Record({"name": "Workshop Notes",
                                       "title": "Mapping the BCR region"})])

    def test_flatten_and_invert(self, tiny_publications):
        session = Session()
        session.bind("DB", tiny_publications)
        inverted = session.run(
            r"{[keyword = k, titles = {x.title | \x <- DB, k <- x.keywd}] |"
            r" \y <- DB, \k <- y.keywd}")
        exons = next(r for r in inverted if r.project("keyword") == "Exons")
        assert exons.project("titles") == CSet(["Structure of the human perforin gene",
                                                "Exon prediction methods"])
