"""The cost-based adaptive planner: chooser, feedback loop, satellites.

Covers the knob chooser's two contracts (zero knowledge => the historical
defaults, bit-for-bit; knowledge => cost-model choices), the run-time
feedback ledger (record on drained runs only, exact + similar-shape lookup,
re-planning), the cost-adaptive chunk ramp, the ChunkPolicy validation
regression, and the statistics registry's concurrency guarantee.
"""

import threading
import time

import pytest

from repro.core.nrc import ast as A
from repro.core.nrc import builder as B
from repro.core.nrc.compile import ChunkPolicy, _ChunkRamp, term_fingerprint
from repro.core.optimizer import OptimizerConfig
from repro.core.optimizer.joins import make_join_rule_set
from repro.core.optimizer.parallel import ParallelExt, make_parallel_rule_set
from repro.core.planner import (
    CardinalityEstimator,
    PhysicalPlan,
    PlanFeedback,
    QueryPlanner,
    shape_fingerprint,
)
from repro.core.values import CList
from repro.kleisli.drivers.base import Driver
from repro.kleisli.engine import KleisliEngine
from repro.kleisli.scheduler import AdaptiveScheduler
from repro.kleisli.statistics import SourceStatisticsRegistry


class RangeDriver(Driver):
    def __init__(self, name="ranges", count=64):
        super().__init__(name)
        self.count = count

    def _execute(self, request):
        count = int(request.get("count", self.count))

        def cursor():
            for i in range(count):
                yield i

        return cursor()


class BatchRangeDriver(RangeDriver):
    """A driver whose native ``execute_batch`` is one wire round-trip."""

    batch_single_round_trip = True

    def __init__(self, name="batcher", count=4):
        super().__init__(name, count)
        self.batch_calls = 0

    def execute_batch(self, requests):
        self.batch_calls += 1
        return [self._execute(dict(request)) for request in requests]


def _scan(driver="ranges", count=8, table="t"):
    return A.Scan(driver, {"table": table, "count": count}, kind="list")


def _chain(driver="ranges", count=8):
    return B.ext("x", B.singleton(B.prim("mul", B.var("x"), B.const(2)),
                                  "list"),
                 _scan(driver, count), kind="list")


# ---------------------------------------------------------------------------
# Satellite: ChunkPolicy validation
# ---------------------------------------------------------------------------


class TestChunkPolicyValidation:
    def test_initial_above_max_rejected(self):
        with pytest.raises(ValueError, match="initial_chunk"):
            ChunkPolicy(max_chunk=8, initial_chunk=16)

    @pytest.mark.parametrize("knob", ["max_chunk", "remote_max_chunk",
                                      "initial_chunk", "parallel_chunk"])
    @pytest.mark.parametrize("bad", [0, -1, -100])
    def test_zero_and_negative_sizes_rejected(self, knob, bad):
        with pytest.raises(ValueError, match=knob):
            ChunkPolicy(**{knob: bad})

    @pytest.mark.parametrize("knob", ["max_chunk", "remote_max_chunk",
                                      "initial_chunk", "parallel_chunk"])
    def test_non_integer_sizes_rejected(self, knob):
        with pytest.raises(ValueError, match=knob):
            ChunkPolicy(**{knob: 2.5})
        with pytest.raises(ValueError, match=knob):
            ChunkPolicy(**{knob: True})

    def test_valid_policies_accepted(self):
        policy = ChunkPolicy(max_chunk=64, remote_max_chunk=8,
                             initial_chunk=4, parallel_chunk=16)
        assert policy.sizes_for() == (4, 64)
        assert policy.adaptive_ramp is False


# ---------------------------------------------------------------------------
# Satellite: statistics-registry concurrency
# ---------------------------------------------------------------------------


class TestRegistryConcurrency:
    def test_concurrent_samples_registrations_and_reads(self):
        """Worker threads hammer every mutable map while readers iterate:
        no exceptions (dict-resize-under-read) and no lost writes."""
        registry = SourceStatisticsRegistry()
        drivers = [f"driver{i}" for i in range(8)]
        errors = []
        barrier = threading.Barrier(len(drivers) + 2)

        def writer(name, value):
            try:
                barrier.wait()
                for round_number in range(200):
                    registry.record_latency_sample(name, value)
                    registry.register_cardinality(name, f"t{round_number % 5}",
                                                  round_number)
                    registry.register_latency(name + "-declared", value)
            except Exception as error:  # pragma: no cover - the failure mode
                errors.append(error)

        def reader():
            try:
                barrier.wait()
                for _ in range(400):
                    for name in drivers:
                        registry.cardinality(name, "t0")
                        registry.latency(name)
                        registry.is_remote(name)
                        registry.has_latency(name)
            except Exception as error:  # pragma: no cover - the failure mode
                errors.append(error)

        threads = [threading.Thread(target=writer, args=(name, 0.01 * (i + 1)))
                   for i, name in enumerate(drivers)]
        threads += [threading.Thread(target=reader) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert errors == []
        for i, name in enumerate(drivers):
            # Every sample had the same value, so the EMA must equal it
            # exactly — a lost or torn update could not produce this.
            assert registry.observed_latency(name) == pytest.approx(0.01 * (i + 1))
            assert registry.has_cardinality(name, "t0")
            assert registry.has_latency(name + "-declared")

    def test_has_latency_includes_pinned_local_declarations(self):
        registry = SourceStatisticsRegistry()
        assert not registry.has_latency("gdb")
        registry.register_latency("gdb", 0.0)
        assert registry.has_latency("gdb")
        assert not registry.is_remote("gdb")


# ---------------------------------------------------------------------------
# The chooser: zero knowledge => defaults, knowledge => different knobs
# ---------------------------------------------------------------------------


class TestPlannerDefaults:
    def test_zero_statistics_reproduces_default_knobs_exactly(self):
        engine = KleisliEngine()
        engine.register_driver(RangeDriver())
        plan = engine.plan_for(_chain())
        assert plan.is_default
        assert plan == PhysicalPlan.default(
            engine.optimizer_config.join_block_size)
        policy = plan.chunk_policy()
        assert (policy.initial_chunk, policy.max_chunk,
                policy.remote_max_chunk, policy.parallel_chunk,
                policy.adaptive_ramp) == (1, ChunkPolicy.DEFAULT_MAX_CHUNK,
                                          ChunkPolicy.REMOTE_MAX_CHUNK, 1,
                                          False)

    def test_compile_time_hooks_stay_silent_without_statistics(self):
        engine = KleisliEngine()
        engine.register_driver(RangeDriver())
        planner = engine.planner
        assert planner.join_block_size(_scan(), _scan(table="u")) is None
        loop = B.ext("x", _scan(), A.Const(CList(range(10))), kind="list")
        assert planner.parallel_workers(loop) is None

    def test_planning_off_skips_the_planner_entirely(self):
        engine = KleisliEngine(OptimizerConfig(planning=False))
        engine.register_driver(RangeDriver())
        engine.statistics_registry.register_latency("ranges", 0.05)
        plan = engine.plan_for(_chain())
        assert plan.is_default


class TestPlannerWithStatistics:
    def test_registered_latency_and_cardinality_change_the_knobs(self):
        engine = KleisliEngine()
        engine.register_driver(BatchRangeDriver(), latency=0.02)
        engine.statistics_registry.register_cardinality("batcher", "t", 4096)
        plan = engine.plan_for(_chain("batcher", count=4096))
        assert not plan.is_default
        assert plan.source == "statistics"
        assert plan.adaptive_ramp
        # The slow driver batches in one round-trip: the cap rises past the
        # bounded default so round-trip count stops dominating.
        assert plan.remote_max_chunk > ChunkPolicy.REMOTE_MAX_CHUNK
        # And the known-slow source gets a prefetch window hint at the cap.
        assert plan.prefetch_window == \
            engine.optimizer_config.parallel_max_workers
        # The estimate is load-bearing: a fetch whose round-trips already
        # bottom out at a small batch keeps the small (buffering-friendly)
        # cap instead of jumping to the largest candidate.
        engine.statistics_registry.register_cardinality("batcher", "t", 40)
        small = engine.plan_for(_chain("batcher", count=40))
        assert 32 < small.remote_max_chunk < plan.remote_max_chunk

    def test_default_looping_driver_keeps_the_bounded_remote_cap(self):
        """Without a native single-round-trip batch, a bigger batch is the
        same number of round-trips: the cap must stay at the default."""
        engine = KleisliEngine()
        engine.register_driver(RangeDriver(), latency=0.02)
        plan = engine.plan_for(_chain("ranges", count=4096))
        assert not plan.is_default
        assert plan.remote_max_chunk == ChunkPolicy.REMOTE_MAX_CHUNK

    def test_local_chunk_cap_is_raise_only(self):
        """The output estimate RAISES the local chunk cap for known-huge
        pipelines but never lowers it: the cap also governs the source
        scan's chunking, and a selective query's small output says nothing
        about the source it must chunk through."""
        engine = KleisliEngine()
        engine.register_driver(RangeDriver(), latency=0.0)  # pinned local
        engine.statistics_registry.register_cardinality("ranges", "t", 100)
        plan = engine.plan_for(_chain("ranges", count=100))
        assert not plan.is_default
        assert plan.max_chunk == ChunkPolicy.DEFAULT_MAX_CHUNK  # not lowered
        engine.statistics_registry.register_cardinality("ranges", "t", 50_000)
        big = engine.plan_for(_chain("ranges", count=50_000))
        assert big.max_chunk == QueryPlanner.MAX_LOCAL_CHUNK  # raised

    def test_join_block_size_is_cost_gated(self):
        registry = SourceStatisticsRegistry()
        registry.register_cardinality("outer", "t", 4096)
        registry.register_latency("inner", 0.0005)
        planner = QueryPlanner(registry)
        outer = A.Scan("outer", {"table": "t"}, kind="set")
        inner = A.Scan("inner", {"table": "t"}, kind="set")
        chosen = planner.join_block_size(outer, inner)
        assert chosen is not None and chosen > 256
        # Below the re-plan floor, or unregistered, the default stands.
        registry.register_cardinality("outer", "small", 500)
        small = A.Scan("outer", {"table": "small"}, kind="set")
        assert planner.join_block_size(small, inner) is None
        unknown = A.Scan("nobody", {"table": "t"}, kind="set")
        assert planner.join_block_size(unknown, inner) is None

    def test_streaming_hint_overrides_the_cost_gate(self):
        """A streamed plan needs per-element probing whatever the cost
        model prefers: block size 1 under the hint, planner or not."""
        registry = SourceStatisticsRegistry()
        registry.register_cardinality("outer", "t", 4096)
        planner = QueryPlanner(registry)
        condition = B.prim("lt", B.prim("mod", B.var("o"), B.const(7)),
                           B.prim("mod", B.var("i"), B.const(5)))
        nested = B.ext(
            "o", B.ext("i", B.if_then_else(condition,
                                           B.singleton(B.var("i")),
                                           B.empty()),
                       A.Scan("inner", {"table": "t"}, kind="set")),
            A.Scan("outer", {"table": "t"}, kind="set"))
        registry.register_cardinality("inner", "t", 64)
        # A cheap-to-rescan inner (no latency known) never clears the
        # material-saving gate: the default block stands even off-hint.
        cheap = make_join_rule_set(
            cardinality_of=lambda source: 4096,
            block_size_for=planner.join_block_size).apply(nested)
        assert isinstance(cheap, A.Join) and cheap.block_size == 256
        registry.register_latency("inner", 0.01)  # now rescans cost real time
        hinted = make_join_rule_set(
            cardinality_of=lambda source: 4096, streaming=True,
            block_size_for=planner.join_block_size).apply(nested)
        assert isinstance(hinted, A.Join) and hinted.block_size == 1
        eager = make_join_rule_set(
            cardinality_of=lambda source: 4096,
            block_size_for=planner.join_block_size).apply(nested)
        assert isinstance(eager, A.Join) and eager.block_size > 256

    def test_parallel_introduction_is_cost_gated(self):
        """A source known to hold one element cannot benefit from request
        overlap: the planner vetoes the rewrite; unknown sources keep the
        historical behaviour."""
        registry = SourceStatisticsRegistry()
        registry.register_latency("remote", 0.05)
        planner = QueryPlanner(registry)
        body = A.Scan("remote", {"table": "t"}, args={"key": B.var("x")},
                      kind="list")

        def loop(source):
            return B.ext("x", body, source, kind="list")

        gated = make_parallel_rule_set(lambda d: d == "remote", max_workers=4,
                                       workers_for=planner.parallel_workers)
        tiny = gated.apply(loop(A.Const(CList([42]))))
        assert not isinstance(tiny, ParallelExt)
        unknown = gated.apply(loop(B.var("XS")))
        assert isinstance(unknown, ParallelExt)
        assert unknown.max_workers == 4


# ---------------------------------------------------------------------------
# The feedback loop: record on drain, re-plan next compilation
# ---------------------------------------------------------------------------


class TestFeedbackLoop:
    def test_drained_chunked_run_records_and_replans(self):
        engine = KleisliEngine()
        engine.register_driver(RangeDriver())
        expr = _chain(count=32)
        first_plan = engine.plan_for(expr)
        assert first_plan.is_default  # nothing known yet

        assert len(list(engine.stream(expr, optimize=False))) == 32
        observation = engine.plan_feedback.observation(term_fingerprint(expr))
        assert observation is not None
        assert observation.cardinality == 32

        replanned = engine.plan_for(expr)
        assert not replanned.is_default
        assert replanned.source == "feedback"
        assert replanned.adaptive_ramp
        assert replanned.estimated_rows == 32  # the observed cardinality
        assert replanned.max_chunk == ChunkPolicy.DEFAULT_MAX_CHUNK

    def test_abandoned_run_records_nothing(self):
        engine = KleisliEngine()
        engine.register_driver(RangeDriver())
        expr = _chain(count=64)
        stream = engine.stream(expr, optimize=False)
        next(stream)
        stream.close()
        assert engine.plan_feedback.observation(
            term_fingerprint(expr)) is None

    def test_override_policy_runs_do_not_feed_the_ledger(self):
        """A run under an explicit chunk-policy override reflects the
        caller's forced knobs, not the planner's — it must not contaminate
        the observations future planned runs are chosen from."""
        engine = KleisliEngine()
        engine.register_driver(RangeDriver())
        expr = _chain(count=16)
        forced = list(engine.stream(expr, optimize=False,
                                    chunk_policy=ChunkPolicy(max_chunk=2)))
        assert len(forced) == 16
        assert engine.plan_feedback.observation(
            term_fingerprint(expr)) is None

    def test_structurally_similar_query_inherits_the_observation(self):
        feedback = PlanFeedback()
        expr = _chain(count=16)
        probe = feedback.probe(term_fingerprint(expr))
        probe.note_chunk("pipeline", 16, 0.05)
        probe.complete(16)

        # Same shape, different literal: the multiplier constant changed.
        sibling = B.ext("x", B.singleton(B.prim("mul", B.var("x"),
                                                B.const(9)), "list"),
                        _scan(count=16), kind="list")
        assert feedback.observation(term_fingerprint(sibling)) is None
        similar = feedback.similar(term_fingerprint(sibling))
        assert similar is not None and similar.cardinality == 16
        assert shape_fingerprint(term_fingerprint(expr)) == \
            shape_fingerprint(term_fingerprint(sibling))

    def test_parallel_chunk_is_auto_tuned_from_observed_unit_cost(self):
        """A measured cheap body gets chunk-granular prefetch tasks sized
        to amortize task overhead — the knob nothing auto-tuned before."""
        registry = SourceStatisticsRegistry()
        feedback = PlanFeedback()
        planner = QueryPlanner(registry, feedback)
        expr = _chain(count=2048)
        probe = feedback.probe(term_fingerprint(expr))
        probe.note_chunk("pipeline", 2048, 2048 * 2e-6)  # ~2us per element
        probe.complete(2048)
        plan = planner.plan_for(expr)
        assert plan.source == "feedback"
        assert plan.parallel_chunk > 1
        # An expensive body keeps element-granular prefetch.
        slow = _chain(count=100)
        slow_probe = feedback.probe(term_fingerprint(slow))
        slow_probe.note_chunk("pipeline", 100, 100 * 0.01)
        slow_probe.complete(100)
        assert planner.plan_for(slow).parallel_chunk == 1

    def test_ledger_is_lru_bounded(self):
        feedback = PlanFeedback(limit=4)
        for count in range(10):
            probe = feedback.probe(term_fingerprint(_chain(count=count + 1)))
            probe.note_chunk("pipeline", count + 1, 0.01)
            probe.complete(count + 1)
        assert len(feedback) == 4


# ---------------------------------------------------------------------------
# The cost-adaptive chunk ramp
# ---------------------------------------------------------------------------


class TestAdaptiveRamp:
    def test_cheap_chunks_keep_doubling_like_the_blind_ramp(self):
        ramp = _ChunkRamp(1, 64, adaptive=True)
        sizes = [len(chunk) for chunk in ramp.emit_pulled(iter(range(200)))]
        assert sizes[:7] == [1, 2, 4, 8, 16, 32, 64]

    def test_latency_bound_sources_stop_doubling(self):
        """Per-element latency means doubling cannot improve marginal cost:
        the ramp must freeze at a small chunk instead of buffering 1024
        elements of a slow cursor."""

        def slow():
            for i in range(40):
                time.sleep(0.003)
                yield i

        ramp = _ChunkRamp(1, 1024, adaptive=True)
        sizes = [len(chunk) for chunk in ramp.emit_pulled(slow())]
        assert sum(sizes) == 40
        assert max(sizes) <= 8, sizes

    def test_engine_stream_stays_value_correct_under_the_adaptive_ramp(self):
        engine = KleisliEngine()
        engine.register_driver(RangeDriver(), latency=0.0)
        engine.statistics_registry.register_cardinality("ranges", "t", 64)
        expr = _chain(count=64)
        assert engine.plan_for(expr).adaptive_ramp
        assert list(engine.stream(expr, optimize=False)) == \
            [2 * i for i in range(64)]


# ---------------------------------------------------------------------------
# Scheduler plan hints
# ---------------------------------------------------------------------------


class TestSchedulerPlanHint:
    def test_hint_sets_the_starting_level_clamped_to_the_cap(self):
        scheduler = AdaptiveScheduler(max_workers=5)
        scheduler.apply_plan_hint(12)
        assert scheduler.level == 5
        scheduler.apply_plan_hint(0)
        assert scheduler.level == 1

    def test_hint_respects_a_learned_rejection_ceiling(self):
        scheduler = AdaptiveScheduler(max_workers=8)
        scheduler._controller.on_rejection(6)
        scheduler.apply_plan_hint(8)
        assert scheduler.level <= 5  # never past the rejected level


# ---------------------------------------------------------------------------
# Estimator spot checks (the hypothesis suite covers the invariants)
# ---------------------------------------------------------------------------


class TestEstimator:
    def test_scan_and_const_leaves(self):
        registry = SourceStatisticsRegistry()
        registry.register_cardinality("gdb", "locus", 700)
        estimator = CardinalityEstimator(registry)
        assert estimator.estimate(
            A.Scan("gdb", {"table": "locus"}, kind="set")) == 700
        assert estimator.estimate(A.Const(CList(range(9)))) == 9
        assert estimator.estimate(
            A.Scan("nobody", {"table": "x"}, kind="set")) == \
            SourceStatisticsRegistry.DEFAULT_CARDINALITY

    def test_indexed_join_estimates_one_match_per_probe(self):
        registry = SourceStatisticsRegistry()
        estimator = CardinalityEstimator(registry)
        join = A.Join("indexed", "o", A.Const(CList(range(100))),
                      "i", A.Const(CList(range(50))), None,
                      B.singleton(B.var("o"), "list"),
                      B.var("o"), B.var("i"), "list", 256)
        assert estimator.estimate(join) == pytest.approx(100.0)
