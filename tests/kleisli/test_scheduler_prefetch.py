"""Scheduler pool reuse and the sliding-window prefetcher.

Two behaviors added for the streaming backend:

* one lazily-created executor per scheduler (``map`` used to build a fresh
  ``ThreadPoolExecutor`` per call — per *batch* for the adaptive scheduler),
  released by ``close()``/the context-manager protocol;
* ``prefetch``: the pipelined counterpart of ``map`` — a bounded window of
  in-flight requests refilled as the consumer drains results, preserving
  order and never running more than one window ahead of the consumer.
"""

import threading
import time

import pytest

from repro.core.errors import RemoteSourceError
from repro.kleisli.scheduler import AdaptiveScheduler, BoundedScheduler
from repro.net.remote import RemoteSource


class ThreadLocalClock:
    """A counter-based ``perf_counter`` stand-in for deterministic timing
    tests: each thread has its own timeline, advanced only by its *own*
    :meth:`advance` calls.  A worker's measured latency is then exactly the
    simulated service time — independent of scheduler jitter, GIL handoffs,
    and wall time — so window-controller assertions stop being flaky.
    (``AdaptiveScheduler(clock=...)`` injects it.)"""

    def __init__(self):
        self._local = threading.local()

    def __call__(self):
        return getattr(self._local, "now", 0.0)

    def advance(self, seconds):
        self._local.now = self() + seconds


class TestExecutorReuse:
    def test_map_reuses_one_pool_across_calls(self):
        scheduler = BoundedScheduler(max_workers=4)
        try:
            scheduler.map(lambda x: x + 1, range(8))
            pool = scheduler._pool
            assert pool is not None
            scheduler.map(lambda x: x + 1, range(8))
            assert scheduler._pool is pool, "map rebuilt the executor"
        finally:
            scheduler.close()

    def test_close_joins_worker_threads(self):
        baseline = threading.active_count()
        scheduler = BoundedScheduler(max_workers=4)
        scheduler.map(lambda x: x, range(8))
        assert threading.active_count() > baseline
        scheduler.close()
        assert threading.active_count() == baseline

    def test_context_manager_closes(self):
        baseline = threading.active_count()
        with BoundedScheduler(max_workers=3) as scheduler:
            scheduler.map(lambda x: x, range(6))
        assert threading.active_count() == baseline

    def test_adaptive_map_reuses_pool_across_batches(self):
        scheduler = AdaptiveScheduler(max_workers=4, initial_workers=2)
        try:
            scheduler.map(lambda x: x, range(20))
            assert scheduler.batches > 1
            pool = scheduler._pool
            scheduler.map(lambda x: x, range(20))
            assert scheduler._pool is pool
        finally:
            scheduler.close()

    def test_close_is_idempotent_and_map_recovers(self):
        scheduler = BoundedScheduler(max_workers=2)
        scheduler.map(lambda x: x, range(4))
        scheduler.close()
        scheduler.close()
        # A closed scheduler lazily re-creates its pool on next use.
        assert scheduler.map(lambda x: x * 2, range(3)) == [0, 2, 4]
        scheduler.close()


class TestBoundedPrefetch:
    def test_preserves_order(self):
        with BoundedScheduler(max_workers=4) as scheduler:
            results = list(scheduler.prefetch(lambda x: x * x, range(20)))
        assert results == [x * x for x in range(20)]

    def test_never_exceeds_the_window_in_flight(self):
        server = RemoteSource("S", lambda x: x, latency=0.002,
                              max_concurrent_requests=100)
        with BoundedScheduler(max_workers=3) as scheduler:
            list(scheduler.prefetch(server.call, range(30)))
        assert server.log.max_concurrency() <= 3

    def test_consumes_the_source_lazily(self):
        pulled = []

        def source():
            for i in range(100):
                pulled.append(i)
                yield i

        with BoundedScheduler(max_workers=3) as scheduler:
            iterator = scheduler.prefetch(lambda x: x, source())
            assert next(iterator) == 0
            # At most one window ahead of the consumer (plus the one yielded).
            assert len(pulled) <= 4
            iterator.close()
        assert len(pulled) <= 4, "prefetch kept pulling after close()"

    def test_early_close_leaves_no_threads(self):
        baseline = threading.active_count()
        scheduler = BoundedScheduler(max_workers=4)
        iterator = scheduler.prefetch(lambda x: x, range(50))
        next(iterator)
        iterator.close()
        scheduler.close()
        assert threading.active_count() == baseline

    def test_window_of_one_is_sequential(self):
        with BoundedScheduler(max_workers=1) as scheduler:
            assert list(scheduler.prefetch(lambda x: x + 1, range(5))) == [1, 2, 3, 4, 5]
            assert scheduler._pool is None, "window 1 should not build a pool"

    def test_overlaps_latency_with_consumption(self):
        """With a window of W, total wall clock for N latency-bound requests
        approaches N*latency/W even when the consumer does work per element."""
        latency = 0.01
        requests = 20

        def slow(x):
            time.sleep(latency)
            return x

        started = time.perf_counter()
        with BoundedScheduler(max_workers=5) as scheduler:
            for _ in scheduler.prefetch(slow, range(requests)):
                pass
        overlapped = time.perf_counter() - started
        assert overlapped < requests * latency * 0.6, \
            f"no overlap: {overlapped:.3f}s vs sequential {requests * latency:.3f}s"


class TestAdaptivePrefetch:
    def test_preserves_order_and_completes(self):
        with AdaptiveScheduler(max_workers=4, initial_workers=2) as scheduler:
            results = list(scheduler.prefetch(lambda x: x * 3, range(25)))
        assert results == [x * 3 for x in range(25)]

    def test_backs_off_on_overload_and_retries(self):
        server = RemoteSource("S", lambda x: x, latency=0.002,
                              max_concurrent_requests=2)
        with AdaptiveScheduler(max_workers=8, initial_workers=8) as scheduler:
            results = list(scheduler.prefetch(server.call, range(30)))
        assert results == list(range(30))
        assert scheduler.overload_events >= 1
        assert scheduler.level <= 2

    def test_one_burst_is_one_rejection_event(self):
        """All failures from a window submitted at one level count as ONE
        rejection — per-future halving would compound the decrease and pin
        the rejection ceiling at 1 for the rest of the stream (regression).
        The scheduler must recover to the server's actual capacity, like
        map's per-batch policy does."""
        cap = 4
        server = RemoteSource("S", lambda x: x, latency=0.002,
                              max_concurrent_requests=cap)
        with AdaptiveScheduler(max_workers=8, initial_workers=8) as scheduler:
            results = list(scheduler.prefetch(server.call, range(60)))
        assert results == list(range(60))
        assert scheduler.overload_events >= 1
        assert scheduler._rejection_ceiling >= cap - 1, \
            f"ceiling collapsed to {scheduler._rejection_ceiling} (compounded)"
        assert scheduler.level >= cap - 1, \
            f"level never recovered: {scheduler.level}"

    def test_ramps_up_on_success(self):
        with AdaptiveScheduler(max_workers=6, initial_workers=1) as scheduler:
            list(scheduler.prefetch(lambda x: x, range(40)))
            assert scheduler.level > 1, "level never ramped despite successes"

    def test_gives_up_after_max_retries(self):
        def always_reject(x):
            raise RemoteSourceError("S", "overloaded")

        with AdaptiveScheduler(max_workers=2, max_retries=1) as scheduler:
            with pytest.raises(RemoteSourceError):
                list(scheduler.prefetch(always_reject, range(4)))


class TestLatencyAwareWindow:
    """The window controller shared by map and prefetch: throughput AND
    per-item latency drive the prefetch window (map keeps its historical
    throughput-only batch policy through the same implementation)."""

    def test_throughput_policy_keeps_maps_thresholds(self):
        from repro.kleisli.scheduler import _WindowController

        controller = _WindowController(8, 1, 1.5)
        controller.on_sample(1, 100.0)      # baseline established → raise
        assert controller.level == 2
        controller.on_sample(2, 150.0)      # genuine improvement → raise
        assert controller.level == 3
        controller.on_sample(3, 50.0)       # collapse → back off one
        assert controller.level == 2
        # The best decays on a collapse (150 → 100): sustained low
        # throughput keeps walking the level down …
        controller.on_sample(2, 50.0)       # 50 < 100/1.5 → still degraded
        assert controller.level == 1
        # … but a recovery soon registers as improvement against the
        # decayed best (66.7) instead of being dwarfed by the stale 150.
        controller.on_sample(1, 80.0)
        assert controller.level == 2
        # Plateau holds, probing up periodically.
        for _ in range(controller.PROBE_INTERVAL - 1):
            controller.on_sample(2, 80.0)
            assert controller.level == 2
        controller.on_sample(2, 80.0)       # plateau probe
        assert controller.level == 3

    def test_sustained_degradation_keeps_backing_off(self):
        """A server that permanently degrades (no rejections) must pull the
        level down and keep it there — decaying the remembered best must
        not read sustained degradation as a fresh healthy baseline and
        ramp back up (regression)."""
        from repro.kleisli.scheduler import _WindowController

        controller = _WindowController(8, 3, 1.5)
        controller.on_sample(3, 100.0)      # baseline → 4
        controller.on_sample(4, 160.0)      # improvement → 5
        for _ in range(8):
            controller.on_sample(controller.level, 40.0)
        assert controller.level <= 3, \
            f"level ramped to {controller.level} under sustained degradation"

    def test_latency_degradation_shrinks_without_throughput_collapse(self):
        from repro.kleisli.scheduler import _WindowController

        controller = _WindowController(8, 2, 1.5)
        controller.on_sample(2, 100.0, latency=0.010)   # baseline → 3
        assert controller.level == 3
        # Throughput flat, but every request now takes 2x as long: the
        # extra requests are queueing at the server — shrink.
        controller.on_sample(3, 101.0, latency=0.022)
        assert controller.level == 2

    def test_sub_millisecond_samples_only_ramp(self):
        """Timer noise on instant functions must never shrink the window;
        with nothing to overlap, decreases come from rejections only."""
        from repro.kleisli.scheduler import _WindowController

        controller = _WindowController(6, 1, 1.5)
        controller.on_sample(1, 1e6, latency=1e-5)
        for throughput in [1e6, 1e3, 5e5, 2e2, 1e6, 1e4, 1e6, 1e5]:
            controller.on_sample(controller.level, throughput, latency=1e-5)
        assert controller.level == 6

    def test_noise_era_samples_do_not_poison_the_baseline(self):
        """Sub-millisecond windows (e.g. items served from a local cache)
        must not set best_throughput: when later items reach the real
        ~2ms server, its healthy windows would read as a collapse against
        the ~1e6/s noise baseline and serialize the stream (regression)."""
        from repro.kleisli.scheduler import _WindowController

        controller = _WindowController(8, 2, 1.5)
        for _ in range(6):                      # cache era: ~10us per item
            controller.on_sample(controller.level, 1e6, latency=1e-5)
        assert controller.level == 8
        assert controller.best_throughput is None, \
            "noise-era sample recorded as the throughput baseline"
        level_before = controller.level
        for _ in range(6):                      # real server: 2ms per item
            controller.on_sample(controller.level, 2500.0, latency=0.002)
        assert controller.level >= level_before - 1, \
            f"healthy real-latency windows collapsed the level to {controller.level}"

    def test_rejection_ceiling_binds_across_call_styles(self):
        """One controller per scheduler: a ceiling learned during prefetch
        keeps map from re-probing the rejected level (and vice versa)."""
        server = RemoteSource("S", lambda x: x, latency=0.002,
                              max_concurrent_requests=2)
        with AdaptiveScheduler(max_workers=8, initial_workers=8) as scheduler:
            assert list(scheduler.prefetch(server.call, range(12))) == list(range(12))
            ceiling = scheduler._rejection_ceiling
            assert ceiling is not None and ceiling < 8
            before = len(scheduler.level_history)
            assert scheduler.map(server.call, list(range(12))) == list(range(12))
            assert all(level <= ceiling
                       for level in scheduler.level_history[before:]), \
                "map re-probed a level prefetch learned was rejected"

    def test_queueing_server_caps_the_prefetch_window(self):
        """End-to-end: a server whose per-request latency grows linearly
        with concurrency (throughput flat) must keep the window far below
        the pool maximum — the signal per-item AIMD never saw.  The fake
        clock makes the latency-vs-level relation exact instead of
        sleep-jitter-approximate."""
        clock = ThreadLocalClock()
        scheduler = AdaptiveScheduler(max_workers=12, initial_workers=1,
                                      degradation_threshold=1.3, clock=clock)

        def queueing(x):
            clock.advance(0.004 * scheduler.level)
            return x

        with scheduler:
            results = list(scheduler.prefetch(queueing, range(50)))
        assert results == list(range(50))
        assert max(scheduler.level_history, default=1) < 12, \
            f"window ramped to {max(scheduler.level_history)} despite queueing"
        assert scheduler.level <= 6

    def test_fast_map_batches_do_not_poison_a_later_prefetch(self):
        """map passes its batch wall clock as the latency sample, so sub-ms
        local batches hit the noise guard instead of recording a ~1e5/s
        baseline that a later prefetch's healthy ~2ms windows would read
        as a collapse and serialize against (regression)."""
        clock = ThreadLocalClock()
        with AdaptiveScheduler(max_workers=6, initial_workers=2,
                               clock=clock) as scheduler:
            scheduler.map(lambda x: x, list(range(30)))   # zero fake time
            assert scheduler._controller.best_throughput is None, \
                "sub-ms map batch recorded as the throughput baseline"

            def remote(x):
                clock.advance(0.002)
                return x

            results = list(scheduler.prefetch(remote, range(36)))
        assert results == list(range(36))
        # The poisoned-baseline failure mode drives the window all the way
        # to 1 and keeps it there; with exact 2ms worker latencies a healthy
        # run ramps deterministically.
        assert scheduler.level > 1, \
            f"healthy prefetch serialized at level {scheduler.level}"

    def test_externally_capped_window_does_not_inflate_the_level(self):
        """prefetch(window=2) caps real concurrency below the level, so its
        samples carry no evidence about higher levels — they must be
        discarded, not fed to the controller as level/latency 'improvements'
        that ramp the shared level to max on a server never actually probed
        (regression)."""
        clock = ThreadLocalClock()

        def remote(x):
            clock.advance(0.002)
            return x

        with AdaptiveScheduler(max_workers=16, initial_workers=3,
                               clock=clock) as scheduler:
            results = list(scheduler.prefetch(remote, range(40), window=2))
        assert results == list(range(40))
        assert scheduler.level == 3, \
            f"capped prefetch moved the level to {scheduler.level}"


class TestChunkGranularPrefetch:
    """prefetch(chunked=True): items are chunks (lists), one task — one
    window slot — per chunk, and the adaptive controller samples per-chunk
    latency (a chunk amortizes enough work to clear the noise floor)."""

    @staticmethod
    def _chunks(total, size):
        return [list(range(start, min(start + size, total)))
                for start in range(0, total, size)]

    def test_preserves_chunk_order_and_contents(self):
        with BoundedScheduler(max_workers=4) as scheduler:
            results = list(scheduler.prefetch(
                lambda chunk: [x * x for x in chunk],
                self._chunks(50, 7), chunked=True))
        assert [x for chunk in results for x in chunk] == \
            [x * x for x in range(50)]

    def test_window_is_counted_in_chunks(self):
        """At most `level` chunk-tasks in flight: the source is consumed
        only one window of CHUNKS ahead, however many elements each holds."""
        pulled = []

        def chunk_source():
            for chunk in self._chunks(60, 5):
                pulled.append(chunk)
                yield chunk

        with BoundedScheduler(max_workers=3) as scheduler:
            iterator = scheduler.prefetch(
                lambda chunk: chunk, chunk_source(), chunked=True)
            next(iterator)
            # window (3) + the one being yielded + at most one refill
            assert len(pulled) <= 5, f"pulled {len(pulled)} chunks ahead"
            iterator.close()

    def test_adaptive_controller_samples_per_chunk_latency(self):
        """Chunks slow enough to clear the controller's noise floor feed it
        real samples: the level moves off its initial value (ramp), which
        per-item sub-millisecond latencies would not do reliably."""
        clock = ThreadLocalClock()
        scheduler = AdaptiveScheduler(max_workers=4, initial_workers=1,
                                      clock=clock)
        try:
            def slow_chunk(chunk):
                clock.advance(0.003)
                return chunk
            results = list(scheduler.prefetch(
                slow_chunk, self._chunks(120, 6), chunked=True))
            assert [x for chunk in results for x in chunk] == list(range(120))
            assert scheduler.level > 1, scheduler.level_history
        finally:
            scheduler.close()

    def test_rejected_chunks_are_retried_whole_in_order(self):
        attempts = {}

        def flaky(chunk):
            key = chunk[0]
            attempts[key] = attempts.get(key, 0) + 1
            if key == 12 and attempts[key] == 1:
                raise RemoteSourceError("chunk rejected")
            return chunk

        scheduler = AdaptiveScheduler(max_workers=3, initial_workers=3)
        try:
            results = list(scheduler.prefetch(
                flaky, self._chunks(30, 6), chunked=True))
        finally:
            scheduler.close()
        assert [x for chunk in results for x in chunk] == list(range(30))
        assert attempts[12] == 2
        assert scheduler.overload_events == 1
