"""Scheduler pool reuse and the sliding-window prefetcher.

Two behaviors added for the streaming backend:

* one lazily-created executor per scheduler (``map`` used to build a fresh
  ``ThreadPoolExecutor`` per call — per *batch* for the adaptive scheduler),
  released by ``close()``/the context-manager protocol;
* ``prefetch``: the pipelined counterpart of ``map`` — a bounded window of
  in-flight requests refilled as the consumer drains results, preserving
  order and never running more than one window ahead of the consumer.
"""

import threading
import time

import pytest

from repro.core.errors import RemoteSourceError
from repro.kleisli.scheduler import AdaptiveScheduler, BoundedScheduler
from repro.net.remote import RemoteSource


class TestExecutorReuse:
    def test_map_reuses_one_pool_across_calls(self):
        scheduler = BoundedScheduler(max_workers=4)
        try:
            scheduler.map(lambda x: x + 1, range(8))
            pool = scheduler._pool
            assert pool is not None
            scheduler.map(lambda x: x + 1, range(8))
            assert scheduler._pool is pool, "map rebuilt the executor"
        finally:
            scheduler.close()

    def test_close_joins_worker_threads(self):
        baseline = threading.active_count()
        scheduler = BoundedScheduler(max_workers=4)
        scheduler.map(lambda x: x, range(8))
        assert threading.active_count() > baseline
        scheduler.close()
        assert threading.active_count() == baseline

    def test_context_manager_closes(self):
        baseline = threading.active_count()
        with BoundedScheduler(max_workers=3) as scheduler:
            scheduler.map(lambda x: x, range(6))
        assert threading.active_count() == baseline

    def test_adaptive_map_reuses_pool_across_batches(self):
        scheduler = AdaptiveScheduler(max_workers=4, initial_workers=2)
        try:
            scheduler.map(lambda x: x, range(20))
            assert scheduler.batches > 1
            pool = scheduler._pool
            scheduler.map(lambda x: x, range(20))
            assert scheduler._pool is pool
        finally:
            scheduler.close()

    def test_close_is_idempotent_and_map_recovers(self):
        scheduler = BoundedScheduler(max_workers=2)
        scheduler.map(lambda x: x, range(4))
        scheduler.close()
        scheduler.close()
        # A closed scheduler lazily re-creates its pool on next use.
        assert scheduler.map(lambda x: x * 2, range(3)) == [0, 2, 4]
        scheduler.close()


class TestBoundedPrefetch:
    def test_preserves_order(self):
        with BoundedScheduler(max_workers=4) as scheduler:
            results = list(scheduler.prefetch(lambda x: x * x, range(20)))
        assert results == [x * x for x in range(20)]

    def test_never_exceeds_the_window_in_flight(self):
        server = RemoteSource("S", lambda x: x, latency=0.002,
                              max_concurrent_requests=100)
        with BoundedScheduler(max_workers=3) as scheduler:
            list(scheduler.prefetch(server.call, range(30)))
        assert server.log.max_concurrency() <= 3

    def test_consumes_the_source_lazily(self):
        pulled = []

        def source():
            for i in range(100):
                pulled.append(i)
                yield i

        with BoundedScheduler(max_workers=3) as scheduler:
            iterator = scheduler.prefetch(lambda x: x, source())
            assert next(iterator) == 0
            # At most one window ahead of the consumer (plus the one yielded).
            assert len(pulled) <= 4
            iterator.close()
        assert len(pulled) <= 4, "prefetch kept pulling after close()"

    def test_early_close_leaves_no_threads(self):
        baseline = threading.active_count()
        scheduler = BoundedScheduler(max_workers=4)
        iterator = scheduler.prefetch(lambda x: x, range(50))
        next(iterator)
        iterator.close()
        scheduler.close()
        assert threading.active_count() == baseline

    def test_window_of_one_is_sequential(self):
        with BoundedScheduler(max_workers=1) as scheduler:
            assert list(scheduler.prefetch(lambda x: x + 1, range(5))) == [1, 2, 3, 4, 5]
            assert scheduler._pool is None, "window 1 should not build a pool"

    def test_overlaps_latency_with_consumption(self):
        """With a window of W, total wall clock for N latency-bound requests
        approaches N*latency/W even when the consumer does work per element."""
        latency = 0.01
        requests = 20

        def slow(x):
            time.sleep(latency)
            return x

        started = time.perf_counter()
        with BoundedScheduler(max_workers=5) as scheduler:
            for _ in scheduler.prefetch(slow, range(requests)):
                pass
        overlapped = time.perf_counter() - started
        assert overlapped < requests * latency * 0.6, \
            f"no overlap: {overlapped:.3f}s vs sequential {requests * latency:.3f}s"


class TestAdaptivePrefetch:
    def test_preserves_order_and_completes(self):
        with AdaptiveScheduler(max_workers=4, initial_workers=2) as scheduler:
            results = list(scheduler.prefetch(lambda x: x * 3, range(25)))
        assert results == [x * 3 for x in range(25)]

    def test_backs_off_on_overload_and_retries(self):
        server = RemoteSource("S", lambda x: x, latency=0.002,
                              max_concurrent_requests=2)
        with AdaptiveScheduler(max_workers=8, initial_workers=8) as scheduler:
            results = list(scheduler.prefetch(server.call, range(30)))
        assert results == list(range(30))
        assert scheduler.overload_events >= 1
        assert scheduler.level <= 2

    def test_one_burst_is_one_rejection_event(self):
        """All failures from a window submitted at one level count as ONE
        rejection — per-future halving would compound the decrease and pin
        the rejection ceiling at 1 for the rest of the stream (regression).
        The scheduler must recover to the server's actual capacity, like
        map's per-batch policy does."""
        cap = 4
        server = RemoteSource("S", lambda x: x, latency=0.002,
                              max_concurrent_requests=cap)
        with AdaptiveScheduler(max_workers=8, initial_workers=8) as scheduler:
            results = list(scheduler.prefetch(server.call, range(60)))
        assert results == list(range(60))
        assert scheduler.overload_events >= 1
        assert scheduler._rejection_ceiling >= cap - 1, \
            f"ceiling collapsed to {scheduler._rejection_ceiling} (compounded)"
        assert scheduler.level >= cap - 1, \
            f"level never recovered: {scheduler.level}"

    def test_ramps_up_on_success(self):
        with AdaptiveScheduler(max_workers=6, initial_workers=1) as scheduler:
            list(scheduler.prefetch(lambda x: x, range(40)))
            assert scheduler.level > 1, "level never ramped despite successes"

    def test_gives_up_after_max_retries(self):
        def always_reject(x):
            raise RemoteSourceError("S", "overloaded")

        with AdaptiveScheduler(max_workers=2, max_retries=1) as scheduler:
            with pytest.raises(RemoteSourceError):
                list(scheduler.prefetch(always_reject, range(4)))
