"""Observability at the engine level: EXPLAIN ANALYZE, the hub, the pins.

The PR 10 acceptance criteria, as tests:

* **Federated EXPLAIN ANALYZE** — a profiled query over a fault-injecting
  driver shows per-stage timings, actual vs. planner-estimated rows, and
  retry/spill annotations, in all three lowerings, while producing values
  bit-identical to the unprofiled run.
* **Zero-recorder contract** — no hub + ``profile=False`` leaves every
  observability field ``None`` and reproduces the unobserved run exactly
  (values + ``elements_fetched``); attaching a hub changes observations,
  never results.
* **Sampled row width** — with zero samples ``engine.row_width`` returns
  ``NOMINAL_ROW_BYTES`` verbatim (the spill plan gate is bit-identical to
  the PR 9 constant); spilled runs feed it real bytes-per-row.
"""

import pytest

from fault_drivers import FaultInjectingDriver

from repro.core.errors import QueryCancelledError, TransientDriverError
from repro.core.nrc import ast as A
from repro.core.nrc import builder as B
from repro.core.nrc.eval import EvalScope
from repro.core.values import iter_collection
from repro.kleisli.drivers.base import Driver
from repro.kleisli.engine import KleisliEngine
from repro.kleisli.governance import NOMINAL_ROW_BYTES, CancellationToken
from repro.kleisli.resilience import RetryPolicy
from repro.obs import Observability
from repro.obs.metrics import RowWidthEstimator


class RangeDriver(Driver):
    def __init__(self, name="ranges"):
        super().__init__(name)

    def _execute(self, request):
        count = int(request.get("count", 5))

        def cursor():
            for i in range(count):
                yield i

        return cursor()


def _scan(count=50, driver="ranges"):
    return A.Scan(driver, {"table": "t", "count": count}, args={},
                  kind="bag")


def _doubling(count=50, driver="ranges"):
    return B.ext("x", B.singleton(B.prim("mul", B.var("x"), B.const(2)),
                                  "bag"),
                 _scan(count, driver), kind="bag")


def _dedup(count=1500):
    return B.ext("x", B.singleton(B.prim("mod", B.var("x"), B.const(1400)),
                                  "set"),
                 A.Scan("ranges", {"table": "t", "count": count}, args={},
                        kind="list"),
                 kind="set")


def _plain_engine():
    engine = KleisliEngine()
    engine.register_driver(RangeDriver())
    return engine


def _federated_engine():
    """A fault-injecting remote whose first faulting request self-heals."""
    engine = KleisliEngine()
    engine.register_driver(FaultInjectingDriver(
        name="Faulty", total=50, fail_on=(1,),
        fault_type=TransientDriverError))
    engine.resilience.set_policy(
        "Faulty", retry=RetryPolicy(max_attempts=4, backoff_base=0.0))
    return engine


def _run(engine, expr, lowering, **kwargs):
    if lowering == "eager":
        return sorted(iter_collection(engine.execute(expr, **kwargs)))
    chunked = lowering == "chunked"
    return sorted(engine.stream(expr, chunked=chunked, **kwargs))


LOWERINGS = ["eager", "per-element", "chunked"]


# -- EXPLAIN ANALYZE across the three lowerings -------------------------------

@pytest.mark.parametrize("lowering", LOWERINGS)
def test_profiled_federated_run_is_bit_identical_and_annotated(lowering):
    expr = _doubling(driver="Faulty")
    baseline = _run(_federated_engine(), expr, lowering)

    engine = _federated_engine()
    values = _run(engine, expr, lowering, profile=True)
    assert values == baseline

    profile = engine.last_profile
    assert profile is not None and profile.status == "ok"
    assert profile.actual_rows == 50.0
    assert profile.estimated_rows is not None  # eager recomputes, streams plan
    assert profile.elapsed is not None and profile.elapsed >= 0
    # the fault on request #0 was retried: the annotation survives
    assert "retries=1" in profile.annotations()
    # every remote round trip shows up as a per-driver span fold
    assert profile.drivers["Faulty"]["requests"] >= 1
    text = profile.render()
    assert "EXPLAIN ANALYZE" in text and "rows: actual=50" in text
    assert "retries=1" in text


def test_chunked_profile_reports_per_stage_timings():
    engine = _plain_engine()
    list(engine.stream(_doubling(), chunked=True, profile=True))
    profile = engine.last_profile
    stage = profile.stages["pipeline"]
    assert stage["rows"] == 50 and stage["chunks"] >= 1
    assert stage["seconds"] >= 0
    assert "stage pipeline: 50 rows" in profile.render()


def test_profiled_spilled_run_carries_spill_annotations():
    engine = _plain_engine()
    values = list(engine.stream(_dedup(), optimize=False, spill=True,
                                profile=True))
    plain = list(_plain_engine().stream(_dedup(), optimize=False))
    assert values == plain
    profile = engine.last_profile
    assert profile.books["spills"] > 0
    assert any(note.startswith("spills=") for note in profile.annotations())
    assert "spills=" in profile.render()


def test_profiled_cancelled_stream_finalizes_with_the_error_status():
    engine = _plain_engine()
    token = CancellationToken()
    stream = engine.stream(_doubling(count=500), cancellation=token,
                           profile=True)
    for _ in range(3):
        next(stream)
    token.cancel("mid-stream")
    with pytest.raises(QueryCancelledError):
        list(stream)
    profile = engine.last_profile
    assert profile is not None
    assert profile.status == "QueryCancelledError"
    assert EvalScope.live_count() == 0


def test_profile_is_thread_local_and_session_safe():
    engine = _plain_engine()
    engine.execute(_doubling(), profile=True)
    assert engine.thread_profile() is engine.last_profile

    import threading
    seen = []

    def other_thread():
        seen.append(engine.thread_profile())

    t = threading.Thread(target=other_thread)
    t.start()
    t.join()
    assert seen == [None]  # another thread never sees this thread's profile


# -- the zero-recorder contract ------------------------------------------------

def test_zero_recorder_engine_has_no_observability_state():
    engine = _plain_engine()
    assert engine.observability is None
    list(engine.stream(_doubling()))
    engine.execute(_doubling())
    assert engine.last_profile is None
    assert engine.thread_profile() is None
    assert engine.health()["observability"] == {"attached": False}


@pytest.mark.parametrize("lowering", LOWERINGS)
def test_attached_hub_changes_observations_never_results(lowering):
    expr = _doubling(driver="Faulty")
    bare = _federated_engine()
    baseline = _run(bare, expr, lowering)
    bare_fetched = bare.last_eval_statistics.elements_fetched

    observed = _federated_engine()
    hub = observed.attach_observability(Observability())
    assert _run(observed, expr, lowering) == baseline
    assert observed.last_eval_statistics.elements_fetched == bare_fetched
    # ... but the hub really did observe the run
    assert hub.queries.value == 1
    assert hub.driver_requests.value >= 1
    assert hub.tracer.snapshot()["finished"] == 1


def test_hub_counts_retries_and_failures():
    engine = _federated_engine()
    hub = engine.attach_observability(Observability())
    list(engine.stream(_doubling(driver="Faulty"), chunked=True))
    assert hub.retries.value == 1
    assert hub.driver_failures.value == 1
    assert hub.request_latency.count >= 2  # the failed try + the retry


def test_hub_slow_query_log_records_profiles():
    engine = _plain_engine()
    hub = engine.attach_observability(Observability(slow_query_threshold=0.0))
    engine.execute(_doubling())
    assert hub.slow_queries.snapshot()["logged"] == 1
    entry = hub.slow_queries.entries()[0]
    assert entry["actual_rows"] == 50.0


def test_hub_governance_counters_feed_from_the_books():
    engine = _plain_engine()
    hub = engine.attach_observability(Observability())
    list(engine.stream(_dedup(), optimize=False, spill=True))
    assert hub.spills.value > 0
    assert hub.spilled_bytes.count >= 1
    assert engine.health()["observability"]["attached"] is True


# -- sampled row width (the PR 9 constant-gate differential pin) ----------------

def test_zero_samples_reproduce_the_nominal_constant_bit_for_bit():
    engine = _plain_engine()
    estimator = engine.row_width
    assert isinstance(estimator, RowWidthEstimator)
    assert estimator.row_bytes() == NOMINAL_ROW_BYTES
    # stays pinned across unspilled runs: nothing feeds the estimator
    list(engine.stream(_doubling(), chunked=True))
    engine.execute(_doubling())
    assert estimator.snapshot()["sampled_rows"] == 0
    assert estimator.row_bytes() == NOMINAL_ROW_BYTES


def test_spilled_runs_feed_the_row_width_estimator():
    engine = _plain_engine()
    list(engine.stream(_dedup(), optimize=False, spill=True))
    snap = engine.row_width.snapshot()
    assert snap["sampled_rows"] > 0
    assert snap["row_bytes"] >= 1.0
    assert engine.health()["row_width"]["sampled_rows"] > 0
