"""Tests for adaptive concurrency (the paper's [43]: "techniques to
automatically adjust the level of concurrency based on the capability of
servers and on resource availability are being developed")."""

import threading
import time

import pytest

from repro.core.errors import RemoteSourceError
from repro.core.nrc import ast as A
from repro.core.nrc import builder as B
from repro.core.nrc.eval import EvalContext, Environment, Evaluator
from repro.core.optimizer.parallel import ParallelExt, make_parallel_rule_set
from repro.core.values import CSet
from repro.kleisli.scheduler import AdaptiveScheduler, BoundedScheduler
from repro.net.remote import RemoteSource


class TestAdaptiveSchedulerPolicy:
    def test_empty_input(self):
        assert AdaptiveScheduler().map(lambda x: x, []) == []

    def test_results_preserve_order(self):
        scheduler = AdaptiveScheduler(max_workers=4)
        assert scheduler.map(lambda x: x * x, list(range(25))) == [x * x for x in range(25)]

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            AdaptiveScheduler(max_workers=0)
        with pytest.raises(ValueError):
            AdaptiveScheduler(max_workers=2, initial_workers=5)
        with pytest.raises(ValueError):
            AdaptiveScheduler(degradation_threshold=0.9)

    def test_ramps_up_against_a_capable_server(self):
        server = RemoteSource("fast", lambda x: x * 2, latency=0.01,
                              max_concurrent_requests=32)
        scheduler = AdaptiveScheduler(max_workers=6, initial_workers=1)
        results = scheduler.map(server.call, list(range(36)))
        assert results == [x * 2 for x in range(36)]
        assert max(scheduler.level_history) == 6
        # The ramp is monotone while throughput keeps improving.
        assert scheduler.level_history[:3] == [1, 2, 3]

    def test_backs_off_when_the_server_rejects_requests(self):
        server = RemoteSource("capped", lambda x: x + 1, latency=0.004,
                              max_concurrent_requests=3)
        scheduler = AdaptiveScheduler(max_workers=10, initial_workers=8)
        results = scheduler.map(server.call, list(range(40)))
        assert results == [x + 1 for x in range(40)]
        assert scheduler.overload_events >= 1
        assert scheduler.retries >= 1
        # Every request eventually succeeded and the server's own log confirms
        # its capacity was never exceeded after the backoff settled.
        assert server.log.max_concurrency() <= 3
        assert scheduler.level_history[-1] <= 3

    def test_rejection_ceiling_prevents_re_probing_a_rejected_level(self):
        server = RemoteSource("capped", lambda x: x, latency=0.002,
                              max_concurrent_requests=2)
        scheduler = AdaptiveScheduler(max_workers=8, initial_workers=6)
        scheduler.map(server.call, list(range(40)))
        rejected_at = scheduler.level_history[0]
        settled = scheduler.level_history[scheduler.level_history.index(
            max(1, rejected_at // 2)) + 1:]
        assert all(level < rejected_at for level in settled)

    def test_persistent_rejection_raises_after_max_retries(self):
        def always_busy(_):
            raise RemoteSourceError("server busy")

        scheduler = AdaptiveScheduler(max_workers=4, initial_workers=2, max_retries=2)
        with pytest.raises(RemoteSourceError):
            scheduler.map(always_busy, list(range(6)))

    def test_non_overload_errors_propagate_immediately(self):
        def broken(_):
            raise ValueError("not an overload")

        scheduler = AdaptiveScheduler(max_workers=3)
        with pytest.raises(ValueError):
            scheduler.map(broken, [1, 2, 3])
        assert scheduler.retries == 0

    def test_degrading_server_caps_the_level(self):
        """A server whose latency grows with load should stop the ramp well
        below the pool maximum."""
        lock = threading.Lock()
        in_flight = [0]

        def degrading(x):
            with lock:
                in_flight[0] += 1
                load = in_flight[0]
            time.sleep(0.004 * load)
            with lock:
                in_flight[0] -= 1
            return x

        scheduler = AdaptiveScheduler(max_workers=12, initial_workers=1,
                                      degradation_threshold=1.3)
        results = scheduler.map(degrading, list(range(48)))
        assert results == list(range(48))
        assert max(scheduler.level_history) < 12

    def test_plateau_probing_escapes_a_slow_first_batch(self):
        # First call is artificially slow (cold cache); the scheduler must not
        # stay pinned at one worker forever.
        calls = []

        def handler(x):
            if not calls:
                calls.append(x)
                time.sleep(0.05)
            else:
                time.sleep(0.005)
            return x

        scheduler = AdaptiveScheduler(max_workers=4, initial_workers=1)
        scheduler.map(handler, list(range(30)))
        assert max(scheduler.level_history) >= 2

    def test_statistics_counters(self):
        scheduler = AdaptiveScheduler(max_workers=3)
        scheduler.map(lambda x: x, list(range(10)))
        assert scheduler.tasks_submitted == 10
        assert scheduler.batches == len(scheduler.level_history)
        assert sum(1 for _ in scheduler.level_history) >= 10 // 3


class TestBoundedVersusAdaptive:
    def test_bounded_scheduler_never_exceeds_cap(self):
        server = RemoteSource("s", lambda x: x, latency=0.003, max_concurrent_requests=5)
        BoundedScheduler(max_workers=5).map(server.call, list(range(25)))
        assert server.log.max_concurrency() <= 5

    def test_adaptive_matches_bounded_results(self):
        items = list(range(40))
        server = RemoteSource("s", lambda x: x % 7, latency=0.002,
                              max_concurrent_requests=16)
        bounded = BoundedScheduler(max_workers=4).map(server.call, items)
        adaptive = AdaptiveScheduler(max_workers=4).map(server.call, items)
        assert bounded == adaptive


class TestAdaptiveParallelExt:
    def _remote_loop(self, adaptive):
        scan = A.Scan("REMOTE", {"db": "na"}, {"select": B.project(B.var("x"), "acc")})
        body = B.singleton(B.record(acc=B.project(B.var("x"), "acc"),
                                    hits=B.prim("count", scan)))
        expr = B.ext("x", body, B.var("OUTER"))
        rule_set = make_parallel_rule_set(lambda driver: driver == "REMOTE",
                                          max_workers=4, adaptive=adaptive)
        return rule_set.apply(expr)

    def test_rule_set_propagates_the_adaptive_flag(self):
        assert self._remote_loop(adaptive=True).adaptive is True
        assert self._remote_loop(adaptive=False).adaptive is False

    def test_adaptive_flag_is_part_of_structural_identity(self):
        fixed = self._remote_loop(adaptive=False)
        adaptive = self._remote_loop(adaptive=True)
        assert fixed != adaptive

    def _run(self, expr, source_rows, latency=0.004, cap=8):
        server = RemoteSource("REMOTE", lambda request: CSet([request["select"]]),
                              latency=latency, max_concurrent_requests=cap)

        def executor(driver, request):
            return server.call(request)

        context = EvalContext(driver_executor=executor)
        value = Evaluator(context).evaluate(expr, Environment({"OUTER": source_rows}))
        return value, server

    def test_adaptive_and_fixed_evaluation_agree(self):
        from repro.core.values import Record

        rows = CSet([Record({"acc": f"M{i:03}"}) for i in range(20)])
        fixed_value, _ = self._run(self._remote_loop(adaptive=False), rows)
        adaptive_value, server = self._run(self._remote_loop(adaptive=True), rows)
        assert fixed_value == adaptive_value
        assert server.request_count == 20
