"""Tests for the SQL subset: parser, planner and executor."""

import pytest

from repro.core.errors import SQLExecutionError, SQLSyntaxError
from repro.relational import Database
from repro.relational.sql.ast import Comparison, SelectStatement
from repro.relational.sql.parser import parse_sql
from repro.relational.sql.planner import HashJoinNode, ScanNode, explain_query, plan_query


@pytest.fixture()
def gdb():
    """A small GDB-shaped database with the three Loci22 tables."""
    database = Database("GDB")
    locus = database.create_table_from_spec(
        "locus", {"locus_id": "int", "locus_symbol": "string"}, primary_key=["locus_id"])
    gref = database.create_table_from_spec(
        "object_genbank_eref",
        {"object_id": "int", "genbank_ref": "string", "object_class_key": "int"})
    cyto = database.create_table_from_spec(
        "locus_cyto_location",
        {"locus_cyto_location_id": "int", "loc_cyto_chrom_num": "string"})
    for i in range(1, 101):
        locus.insert({"locus_id": i, "locus_symbol": f"D22S{i}"})
        gref.insert({"object_id": i, "genbank_ref": f"M{81000 + i}",
                     "object_class_key": 1 if i % 4 else 2})
        cyto.insert({"locus_cyto_location_id": i,
                     "loc_cyto_chrom_num": "22" if i % 2 == 0 else "21"})
    locus.create_hash_index("locus_id")
    gref.create_hash_index("object_id")
    cyto.create_hash_index("locus_cyto_location_id")
    database.analyze()
    return database


LOCI22_SQL = """
    select locus_symbol, genbank_ref
    from locus, object_genbank_eref, locus_cyto_location
    where locus.locus_id = locus_cyto_location.locus_cyto_location_id
      and locus.locus_id = object_genbank_eref.object_id
      and object_class_key = 1
      and loc_cyto_chrom_num = '22'
"""


class TestParser:
    def test_simple_select(self):
        statement = parse_sql("select a, b from t where a = 1")
        assert isinstance(statement, SelectStatement)
        assert len(statement.select_items) == 2
        assert len(statement.predicates) == 1

    def test_star_and_alias(self):
        statement = parse_sql("select * from locus l")
        assert statement.select_items[0].star
        assert statement.tables[0].alias == "l"

    def test_string_escaping(self):
        statement = parse_sql("select a from t where a = 'it''s'")
        assert statement.predicates[0].right == "it's"

    def test_in_like_null(self):
        statement = parse_sql(
            "select a from t where a in (1, 2) and b like 'D22%' and c is not null")
        assert len(statement.predicates) == 3

    def test_order_limit_distinct(self):
        statement = parse_sql("select distinct a from t order by a desc limit 5")
        assert statement.distinct
        assert statement.order_by[0].descending
        assert statement.limit == 5

    def test_paper_query_parses(self):
        statement = parse_sql(LOCI22_SQL)
        assert len(statement.tables) == 3
        assert len(statement.predicates) == 4

    def test_syntax_errors(self):
        with pytest.raises(SQLSyntaxError):
            parse_sql("select from t")
        with pytest.raises(SQLSyntaxError):
            parse_sql("select a from t where a = 'unterminated")
        with pytest.raises(SQLSyntaxError):
            parse_sql("select a from t where a = 1 or b = 2")
        with pytest.raises(SQLSyntaxError):
            parse_sql("select a from t extra junk")


class TestPlanner:
    def test_single_table_equality_uses_index(self, gdb):
        plan = plan_query(gdb, parse_sql("select * from locus where locus_id = 7"))
        explanation = plan.explain()
        assert "index lookup on locus_id" in explanation

    def test_unindexed_predicate_full_scan(self, gdb):
        explanation = explain_query(gdb, "select * from locus where locus_symbol = 'D22S7'")
        assert "full scan" in explanation

    def test_join_uses_hash_join(self, gdb):
        explanation = explain_query(gdb, LOCI22_SQL)
        assert explanation.count("HashJoin") == 2

    def test_unknown_column_rejected(self, gdb):
        with pytest.raises(SQLExecutionError):
            plan_query(gdb, parse_sql("select nosuch from locus"))

    def test_ambiguous_column_rejected(self, gdb):
        database = Database("x")
        database.create_table_from_spec("a", {"k": "int"})
        database.create_table_from_spec("b", {"k": "int"})
        with pytest.raises(SQLExecutionError):
            plan_query(database, parse_sql("select k from a, b"))


class TestExecutor:
    def test_projection_and_selection(self, gdb):
        rows = gdb.sql("select locus_symbol from locus where locus_id = 7")
        assert rows == [{"locus_symbol": "D22S7"}]

    def test_comparison_operators(self, gdb):
        assert len(gdb.sql("select * from locus where locus_id <= 10")) == 10
        assert len(gdb.sql("select * from locus where locus_id <> 1")) == 99
        assert len(gdb.sql("select * from locus where locus_id > 95")) == 5

    def test_in_and_like(self, gdb):
        assert len(gdb.sql("select * from locus where locus_id in (1, 2, 3)")) == 3
        assert len(gdb.sql("select * from locus where locus_symbol like 'D22S1%'")) == 12

    def test_order_by_and_limit(self, gdb):
        rows = gdb.sql("select locus_id from locus order by locus_id desc limit 3")
        assert [row["locus_id"] for row in rows] == [100, 99, 98]

    def test_distinct(self, gdb):
        rows = gdb.sql("select distinct loc_cyto_chrom_num from locus_cyto_location")
        assert sorted(row["loc_cyto_chrom_num"] for row in rows) == ["21", "22"]

    def test_column_alias(self, gdb):
        rows = gdb.sql("select locus_symbol sym from locus where locus_id = 1")
        assert rows == [{"sym": "D22S1"}]

    def test_qualified_star(self, gdb):
        rows = gdb.sql("select locus.* from locus, object_genbank_eref "
                       "where locus.locus_id = object_genbank_eref.object_id "
                       "and object_class_key = 2 and locus_id <= 8")
        assert {row["locus_id"] for row in rows} == {4, 8}

    def test_paper_join_query_results(self, gdb):
        rows = gdb.sql(LOCI22_SQL)
        # Even locus ids on chromosome 22, excluding multiples of 4 with class key 2.
        expected = [i for i in range(1, 101) if i % 2 == 0 and i % 4 != 0]
        assert sorted(int(row["genbank_ref"][1:]) - 81000 for row in rows) == expected
        assert set(rows[0]) == {"locus_symbol", "genbank_ref"}

    def test_join_equivalent_to_manual_nested_loop(self, gdb):
        joined = gdb.sql("select locus_symbol, genbank_ref from locus, object_genbank_eref "
                         "where locus.locus_id = object_genbank_eref.object_id")
        assert len(joined) == 100

    def test_cross_join_without_predicate(self, gdb):
        rows = gdb.sql("select locus.locus_id from locus, locus_cyto_location "
                       "where locus.locus_id <= 2 and locus_cyto_location_id <= 3")
        assert len(rows) == 6

    def test_null_comparison_is_false(self):
        database = Database("n")
        table = database.create_table_from_spec("t", {"a": "int", "b": "int"})
        table.insert({"a": 1, "b": None})
        assert database.sql("select * from t where b > 0") == []
        assert len(database.sql("select * from t where b is null")) == 1
