"""Tests for the relational substrate: schemas, tables, indexes, statistics."""

import pytest

from repro.core.errors import SchemaError, SQLExecutionError
from repro.relational import Column, Database, TableSchema


@pytest.fixture()
def loci_table():
    database = Database("GDB")
    table = database.create_table_from_spec(
        "locus", {"locus_id": "int", "locus_symbol": "string", "chromosome": "string"},
        primary_key=["locus_id"])
    for i in range(1, 51):
        table.insert({"locus_id": i, "locus_symbol": f"D22S{i}",
                      "chromosome": "22" if i % 2 == 0 else "21"})
    return database, table


class TestSchema:
    def test_column_type_validation(self):
        column = Column("year", "int", nullable=False)
        assert column.validate(1989) == 1989
        with pytest.raises(SchemaError):
            column.validate("1989")
        with pytest.raises(SchemaError):
            column.validate(None)

    def test_bool_is_not_an_int(self):
        with pytest.raises(SchemaError):
            Column("n", "int").validate(True)

    def test_unknown_column_type_rejected(self):
        with pytest.raises(SchemaError):
            Column("x", "varchar")

    def test_duplicate_column_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [Column("a"), Column("a")])

    def test_primary_key_must_be_a_column(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [Column("a")], primary_key=["b"])

    def test_validate_row_orders_and_fills(self):
        schema = TableSchema.from_spec("t", {"a": "int", "b": "string"})
        assert schema.validate_row({"b": "x", "a": 1}) == (1, "x")
        assert schema.validate_row({"a": 1}) == (1, None)
        with pytest.raises(SchemaError):
            schema.validate_row({"a": 1, "zz": 2})


class TestTable:
    def test_insert_and_scan(self, loci_table):
        _, table = loci_table
        assert len(table) == 50
        rows = list(table.scan())
        assert rows[0]["locus_symbol"] == "D22S1"

    def test_primary_key_uniqueness(self, loci_table):
        _, table = loci_table
        with pytest.raises(SchemaError):
            table.insert({"locus_id": 1, "locus_symbol": "dup", "chromosome": "22"})

    def test_hash_index_lookup(self, loci_table):
        _, table = loci_table
        table.create_hash_index("chromosome")
        rows = table.lookup("chromosome", "22")
        assert len(rows) == 25
        assert all(row["chromosome"] == "22" for row in rows)

    def test_lookup_without_index_scans(self, loci_table):
        _, table = loci_table
        assert len(table.lookup("locus_symbol", "D22S7")) == 1

    def test_sorted_index_range(self, loci_table):
        _, table = loci_table
        table.create_sorted_index("locus_id")
        rows = table.range_lookup("locus_id", low=10, high=12)
        assert sorted(row["locus_id"] for row in rows) == [10, 11, 12]
        rows = table.range_lookup("locus_id", low=48, include_low=False)
        assert sorted(row["locus_id"] for row in rows) == [49, 50]

    def test_index_maintained_on_insert(self, loci_table):
        _, table = loci_table
        index = table.create_hash_index("chromosome")
        table.insert({"locus_id": 99, "locus_symbol": "new", "chromosome": "22"})
        assert len(table.lookup("chromosome", "22")) == 26
        assert len(index) == 51

    def test_statistics(self, loci_table):
        _, table = loci_table
        stats = table.analyze()
        assert stats.row_count == 50
        assert stats.column("chromosome").distinct_values == 2
        assert stats.column("locus_id").minimum == 1
        assert stats.column("locus_id").maximum == 50
        assert stats.estimate_equality_matches("chromosome") == pytest.approx(25.0)


class TestDatabase:
    def test_catalog_operations(self, loci_table):
        database, _ = loci_table
        assert database.table_names() == ["locus"]
        assert database.has_table("locus")
        with pytest.raises(SQLExecutionError):
            database.table("nonexistent")

    def test_duplicate_table_rejected(self, loci_table):
        database, _ = loci_table
        with pytest.raises(SchemaError):
            database.create_table_from_spec("locus", {"x": "int"})

    def test_drop_table(self, loci_table):
        database, _ = loci_table
        database.drop_table("locus")
        assert not database.has_table("locus")
        with pytest.raises(SchemaError):
            database.drop_table("locus")

    def test_analyze_summary(self, loci_table):
        database, _ = loci_table
        summary = database.analyze()
        assert summary["locus"]["rows"] == 50
