"""Tests for the value model: collections, variants, refs, conversions, type inference."""

import pytest

from repro.core import types as T
from repro.core.errors import EvaluationError
from repro.core.values import (
    CBag,
    CList,
    CSet,
    Record,
    Ref,
    UNIT_VALUE,
    Unit,
    Variant,
    from_python,
    infer_type,
    iter_collection,
    make_collection,
    to_python,
)


class TestCollections:
    def test_set_eliminates_duplicates(self):
        assert len(CSet([1, 2, 2, 3, 3, 3])) == 3

    def test_set_equality_ignores_order(self):
        assert CSet([1, 2, 3]) == CSet([3, 2, 1])
        assert hash(CSet([1, 2, 3])) == hash(CSet([3, 1, 2]))

    def test_bag_keeps_duplicates_and_ignores_order(self):
        assert len(CBag([1, 1, 2])) == 3
        assert CBag([1, 1, 2]) == CBag([2, 1, 1])
        assert CBag([1, 1, 2]) != CBag([1, 2, 2])

    def test_list_is_order_sensitive(self):
        assert CList([1, 2]) != CList([2, 1])
        assert CList([1, 2])[1] == 2

    def test_nested_collections_are_hashable(self):
        nested = CSet([CList([Record({"a": 1})]), CList([Record({"a": 2})])])
        assert len(nested) == 2
        assert CList([Record({"a": 1})]) in nested

    def test_union_semantics(self):
        assert CSet([1]).union(CSet([1, 2])) == CSet([1, 2])
        assert CBag([1]).union(CBag([1])) == CBag([1, 1])
        assert CList([1]).union(CList([2])) == CList([1, 2])

    def test_map_and_filter(self):
        assert CSet([1, 2, 3]).map(lambda x: x * 2) == CSet([2, 4, 6])
        assert CList([1, 2, 3]).filter(lambda x: x > 1) == CList([2, 3])

    def test_set_of_records_deduplicates_structurally(self):
        a = Record({"x": 1, "y": "s"})
        b = Record({"y": "s", "x": 1})
        assert len(CSet([a, b])) == 1

    def test_collection_kind_helpers(self):
        assert make_collection("set", [1, 1]) == CSet([1])
        assert make_collection("bag", [1, 1]) == CBag([1, 1])
        assert list(iter_collection(CList([1, 2]))) == [1, 2]
        with pytest.raises(EvaluationError):
            make_collection("tuple", [1])
        with pytest.raises(EvaluationError):
            iter_collection(42)


class TestVariantAndRef:
    def test_variant_equality(self):
        assert Variant("giim", 5) == Variant("giim", 5)
        assert Variant("giim", 5) != Variant("genbank", 5)

    def test_variant_default_payload_is_unit(self):
        assert Variant("flag").value == UNIT_VALUE

    def test_unit_is_a_singleton(self):
        assert Unit() is Unit()
        assert Unit() == UNIT_VALUE

    def test_ref_identity_and_deref_requires_store(self):
        ref = Ref("Locus", "D22S1")
        assert ref == Ref("Locus", "D22S1")
        with pytest.raises(EvaluationError):
            ref.deref()

    def test_ref_resolves_through_store(self):
        class Store:
            def resolve(self, ref):
                return Record({"name": ref.identifier})

        ref = Ref("Locus", "D22S1", Store())
        assert ref.deref() == Record({"name": "D22S1"})


class TestConversions:
    def test_from_python_dict_becomes_record(self):
        value = from_python({"title": "x", "year": 1989})
        assert isinstance(value, Record)
        assert value.project("year") == 1989

    def test_from_python_nested(self):
        value = from_python({"keywd": {"a", "b"}, "authors": [{"name": "x"}]}, list_as="list")
        assert isinstance(value.project("keywd"), CSet)
        assert isinstance(value.project("authors"), CList)

    def test_from_python_list_as_set(self):
        value = from_python([1, 2, 2], list_as="set")
        assert value == CSet([1, 2])

    def test_from_python_rejects_unknown(self):
        with pytest.raises(EvaluationError):
            from_python(object())

    def test_roundtrip_to_python(self):
        original = {"title": "x", "tags": ["a", "b"], "count": 3}
        assert to_python(from_python(original)) == original

    def test_to_python_variant_and_ref(self):
        assert to_python(Variant("giim", 5)) == {"<tag>": "giim", "<value>": 5}
        assert to_python(Ref("Locus", "D22S1")) == {"<ref>": "Locus", "<id>": "D22S1"}

    def test_none_becomes_unit(self):
        assert from_python(None) == UNIT_VALUE
        assert to_python(UNIT_VALUE) is None


class TestInferType:
    def test_scalars(self):
        assert infer_type(True) == T.BOOL
        assert infer_type(3) == T.INT
        assert infer_type(2.5) == T.FLOAT
        assert infer_type("x") == T.STRING

    def test_record_type(self):
        ty = infer_type(Record({"title": "x", "year": 1989}))
        assert ty == T.RecordType({"title": T.STRING, "year": T.INT})

    def test_homogeneous_set_type(self):
        ty = infer_type(CSet([Record({"a": 1}), Record({"a": 2})]))
        assert ty == T.SetType(T.RecordType({"a": T.INT}))

    def test_variant_elements_merge_into_open_variant(self):
        ty = infer_type(CSet([Variant("uncontrolled", "x"),
                              Variant("controlled", "y")]))
        assert isinstance(ty, T.SetType)
        assert isinstance(ty.element, T.VariantType)
        assert set(ty.element.cases) >= {"uncontrolled", "controlled"}

    def test_empty_collection_gets_type_variable(self):
        ty = infer_type(CSet())
        assert isinstance(ty, T.SetType)
        assert isinstance(ty.element, T.TypeVar)

    def test_list_and_bag_constructors(self):
        assert infer_type(CList([1])) == T.ListType(T.INT)
        assert infer_type(CBag(["a"])) == T.BagType(T.STRING)
