"""Tests for Remy records: directories, projection, and the homogeneity cursor."""

import pytest

from repro.core.errors import EvaluationError
from repro.core.records import (
    ProjectionCursor,
    Record,
    RecordDirectory,
    cursor_project,
    directory_for,
    plain_project,
)


class TestRecordDirectory:
    def test_directories_are_interned_by_field_set(self):
        a = directory_for(["title", "year"])
        b = directory_for(["year", "title"])
        assert a is b

    def test_different_field_sets_get_different_directories(self):
        assert directory_for(["a"]) is not directory_for(["a", "b"])

    def test_slot_lookup_and_errors(self):
        directory = directory_for(["x", "y"])
        assert directory.slot_of("x") != directory.slot_of("y")
        assert "x" in directory
        with pytest.raises(EvaluationError):
            directory.slot_of("missing")


class TestRecord:
    def test_records_with_same_fields_share_a_directory(self):
        a = Record({"title": "A", "year": 1989})
        b = Record({"year": 1992, "title": "B"})
        assert a.directory is b.directory

    def test_projection(self):
        record = Record({"title": "A", "year": 1989})
        assert record.project("title") == "A"
        assert record["year"] == 1989
        with pytest.raises(EvaluationError):
            record.project("missing")

    def test_get_with_default(self):
        record = Record({"a": 1})
        assert record.get("a") == 1
        assert record.get("b", "fallback") == "fallback"

    def test_equality_is_by_content(self):
        assert Record({"a": 1, "b": 2}) == Record({"b": 2, "a": 1})
        assert Record({"a": 1}) != Record({"a": 2})
        assert Record({"a": 1}) != Record({"a": 1, "b": 2})

    def test_from_directory_fast_path(self):
        directory = directory_for(["a", "b"])
        record = Record.from_directory(directory, [1, 2])
        assert record.to_dict() == {"a": 1, "b": 2}
        with pytest.raises(EvaluationError):
            Record.from_directory(directory, [1])

    def test_with_without_restrict(self):
        record = Record({"a": 1, "b": 2, "c": 3})
        assert record.with_fields(d=4).project("d") == 4
        assert record.without_fields("b").labels == ("a", "c")
        assert record.restrict(["a", "c"]) == Record({"a": 1, "c": 3})

    def test_records_are_hashable_set_elements(self):
        records = {Record({"a": 1}), Record({"a": 1}), Record({"a": 2})}
        assert len(records) == 2


class TestProjectionCursor:
    def _homogeneous(self, count=100):
        return [Record({"locus": f"D22S{i}", "chromosome": "22", "length": i})
                for i in range(count)]

    def test_cursor_matches_plain_projection(self):
        records = self._homogeneous()
        assert cursor_project(records, "locus") == plain_project(records, "locus")

    def test_cursor_hits_after_first_record(self):
        records = self._homogeneous(50)
        cursor = ProjectionCursor("length")
        values = [cursor.project(record) for record in records]
        assert values == list(range(50))
        assert cursor.misses == 1
        assert cursor.hits == 49

    def test_cursor_falls_back_on_heterogeneous_input(self):
        mixed = [Record({"a": 1, "b": 2}), Record({"a": 3}), Record({"a": 4, "b": 5})]
        cursor = ProjectionCursor("a")
        assert [cursor.project(record) for record in mixed] == [1, 3, 4]
        assert cursor.misses >= 2  # directory changed along the way

    def test_cursor_error_on_missing_field(self):
        cursor = ProjectionCursor("missing")
        with pytest.raises(EvaluationError):
            cursor.project(Record({"a": 1}))
