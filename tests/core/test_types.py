"""Tests for the CPL type system: construction, parsing, unification, rows."""

import pytest

from repro.core import types as T
from repro.core.errors import CPLTypeError


class TestTypeConstruction:
    def test_base_types_are_singleton_like(self):
        assert T.IntType() == T.INT
        assert T.StringType() == T.STRING
        assert hash(T.BoolType()) == hash(T.BOOL)

    def test_base_types_are_distinct(self):
        assert T.INT != T.FLOAT
        assert T.STRING != T.BOOL

    def test_collection_types_compare_structurally(self):
        assert T.SetType(T.INT) == T.SetType(T.INT)
        assert T.SetType(T.INT) != T.BagType(T.INT)
        assert T.ListType(T.SetType(T.STRING)) == T.ListType(T.SetType(T.STRING))

    def test_record_type_field_order_is_irrelevant(self):
        left = T.RecordType({"a": T.INT, "b": T.STRING})
        right = T.RecordType({"b": T.STRING, "a": T.INT})
        assert left == right
        assert hash(left) == hash(right)

    def test_record_field_lookup(self):
        record = T.RecordType({"title": T.STRING, "year": T.INT})
        assert record.field("year") == T.INT
        with pytest.raises(CPLTypeError):
            record.field("missing")

    def test_variant_case_lookup(self):
        variant = T.VariantType({"uncontrolled": T.STRING})
        assert variant.case("uncontrolled") == T.STRING
        with pytest.raises(CPLTypeError):
            variant.case("controlled")

    def test_function_and_ref_types(self):
        fn = T.FunctionType(T.INT, T.SetType(T.STRING))
        assert fn.argument == T.INT
        assert "->" in str(fn)
        assert T.RefType(T.INT) == T.RefType(T.INT)
        assert T.RefType(T.INT) != T.RefType(T.STRING)

    def test_string_rendering_matches_paper_notation(self):
        ty = T.SetType(T.RecordType({"title": T.STRING, "keywd": T.SetType(T.STRING)}))
        assert str(ty) == "{[keywd: {string}, title: string]}"
        assert str(T.BagType(T.INT)) == "{|int|}"
        assert str(T.ListType(T.INT)) == "[|int|]"

    def test_open_record_renders_ellipsis(self):
        ty = T.RecordType({"title": T.STRING}, row=T.fresh_row_var())
        assert str(ty).endswith(", ...]")


class TestTypeParsing:
    def test_parse_base_types(self):
        assert T.parse_type("int") == T.INT
        assert T.parse_type("string") == T.STRING
        assert T.parse_type("bool") == T.BOOL

    def test_parse_nested_publication_like_type(self):
        ty = T.parse_type(
            "{[title: string, authors: [|[name: string, initial: string]|],"
            " year: int, keywd: {string}]}")
        assert isinstance(ty, T.SetType)
        element = ty.element
        assert element.field("year") == T.INT
        assert element.field("authors") == T.ListType(
            T.RecordType({"name": T.STRING, "initial": T.STRING}))

    def test_parse_variant_type(self):
        ty = T.parse_type("<uncontrolled: string, controlled: <medline-jta: string>>")
        assert isinstance(ty, T.VariantType)
        assert ty.case("uncontrolled") == T.STRING
        assert isinstance(ty.case("controlled"), T.VariantType)

    def test_parse_bag_and_list(self):
        assert T.parse_type("{|int|}") == T.BagType(T.INT)
        assert T.parse_type("[|{string}|]") == T.ListType(T.SetType(T.STRING))

    def test_parse_ref(self):
        assert T.parse_type("ref [name: string]") == T.RefType(T.RecordType({"name": T.STRING}))

    def test_parse_open_record(self):
        ty = T.parse_type("[title: string, ...]")
        assert ty.is_open

    def test_parse_errors(self):
        with pytest.raises(CPLTypeError):
            T.parse_type("{int")
        with pytest.raises(CPLTypeError):
            T.parse_type("unknown_base")
        with pytest.raises(CPLTypeError):
            T.parse_type("[a: int] extra")


class TestUnification:
    def test_unify_identical(self):
        subst = T.unify(T.SetType(T.INT), T.SetType(T.INT))
        assert subst == {}

    def test_unify_variable_binds(self):
        var = T.fresh_type_var()
        subst = T.unify(var, T.INT)
        assert T.apply_substitution(var, subst) == T.INT

    def test_unify_mismatch_raises(self):
        with pytest.raises(CPLTypeError):
            T.unify(T.INT, T.STRING)
        with pytest.raises(CPLTypeError):
            T.unify(T.SetType(T.INT), T.ListType(T.INT))

    def test_occurs_check(self):
        var = T.fresh_type_var()
        with pytest.raises(CPLTypeError):
            T.unify(var, T.SetType(var))

    def test_open_record_absorbs_extra_fields(self):
        open_record = T.RecordType({"title": T.STRING}, row=T.fresh_row_var())
        closed = T.RecordType({"title": T.STRING, "year": T.INT})
        subst = T.unify(open_record, closed)
        resolved = T.apply_substitution(open_record, subst)
        assert resolved.fields["year"] == T.INT

    def test_closed_record_rejects_extra_fields(self):
        closed = T.RecordType({"title": T.STRING})
        wider = T.RecordType({"title": T.STRING, "year": T.INT})
        with pytest.raises(CPLTypeError):
            T.unify(closed, wider)

    def test_shared_field_types_must_unify(self):
        left = T.RecordType({"year": T.INT}, row=T.fresh_row_var())
        right = T.RecordType({"year": T.STRING}, row=T.fresh_row_var())
        with pytest.raises(CPLTypeError):
            T.unify(left, right)

    def test_open_variants_merge_cases(self):
        left = T.VariantType({"uncontrolled": T.STRING}, row=T.fresh_row_var())
        right = T.VariantType({"controlled": T.STRING}, row=T.fresh_row_var())
        subst = T.unify(left, right)
        merged = T.apply_substitution(left, subst)
        assert set(merged.cases) == {"uncontrolled", "controlled"}

    def test_function_types_unify_componentwise(self):
        a = T.fresh_type_var()
        subst = T.unify(T.FunctionType(a, T.INT), T.FunctionType(T.STRING, T.INT))
        assert T.apply_substitution(a, subst) == T.STRING

    def test_free_type_vars(self):
        a = T.fresh_type_var()
        row = T.fresh_row_var()
        ty = T.SetType(T.RecordType({"x": a}, row=row))
        free = T.free_type_vars(ty)
        assert a in free and row in free

    def test_common_element_type(self):
        merged = T.common_element_type([
            T.RecordType({"a": T.INT}, row=T.fresh_row_var()),
            T.RecordType({"b": T.STRING}, row=T.fresh_row_var()),
        ])
        assert set(merged.fields) == {"a", "b"}
