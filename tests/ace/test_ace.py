"""Tests for the ACE substrate: object model, database, .ace parse/dump, references."""

import pytest

from repro.ace import AceDatabase, dump_ace, parse_ace
from repro.ace.model import AceObject, AceObjectRef
from repro.ace.printer import record_to_ace_object
from repro.core.errors import ACEError, ACEParseError
from repro.core.values import CList, Record, Ref

ACE_TEXT = '''
Locus : "D22S1"
GDB_id 101
Genbank_ref "M81101"
Contig Contig:"ctg22_1"

Sequence : "M81101"
Organism "Homo sapiens"
Length 1234

// a comment line
Contig : "ctg22_1"
Chromosome "22"
Length_kb 540.5
'''


class TestAceModel:
    def test_object_tags_and_values(self):
        obj = AceObject("Locus", "D22S1")
        obj.add("Remark", "first").add("Remark", "second")
        assert obj.values("Remark") == ["first", "second"]
        assert obj.first("Remark") == "first"
        assert obj.first("Missing", default="none") == "none"

    def test_class_rejects_foreign_objects(self):
        from repro.ace.model import AceClass

        ace_class = AceClass("Locus")
        with pytest.raises(ACEError):
            ace_class.add_object(AceObject("Clone", "c1"))

    def test_to_record_converts_refs(self):
        obj = AceObject("Locus", "D22S1")
        obj.add("Contig", AceObjectRef("Contig", "ctg1"))
        record = obj.to_record()
        assert record.project("class") == "Locus"
        assert record.project("Contig") == Ref("Contig", "ctg1")


class TestAceParser:
    def test_parse_objects(self):
        objects = parse_ace(ACE_TEXT)
        assert len(objects) == 3
        locus = objects[0]
        assert (locus.class_name, locus.name) == ("Locus", "D22S1")
        assert locus.first("GDB_id") == 101
        assert locus.first("Contig") == AceObjectRef("Contig", "ctg22_1")

    def test_numeric_values(self):
        objects = parse_ace(ACE_TEXT)
        contig = objects[2]
        assert contig.first("Length_kb") == 540.5

    def test_bad_header_raises(self):
        with pytest.raises(ACEParseError):
            parse_ace("NotAHeaderLine without colon\nTag 1\n")

    def test_roundtrip_through_dump(self):
        objects = parse_ace(ACE_TEXT)
        text = dump_ace(objects)
        reparsed = parse_ace(text)
        assert len(reparsed) == 3
        assert reparsed[0].first("Genbank_ref") == "M81101"
        assert reparsed[2].first("Length_kb") == 540.5

    def test_dump_from_cpl_records(self):
        """CPL transformations can emit .ace bulk-load text directly (the paper's point)."""
        record = Record({"class": "Locus", "name": "D22S9",
                         "Genbank_ref": "M81109",
                         "Contig": Ref("Contig", "ctg22_2"),
                         "Keywords": CList(["mapping", "cosmid"])})
        text = dump_ace([record])
        reparsed = parse_ace(text)[0]
        assert reparsed.name == "D22S9"
        assert reparsed.first("Contig") == AceObjectRef("Contig", "ctg22_2")
        assert reparsed.values("Keywords") == ["mapping", "cosmid"]

    def test_record_without_identity_rejected(self):
        with pytest.raises(ACEError):
            record_to_ace_object(Record({"Genbank_ref": "M1"}))


class TestAceDatabase:
    @pytest.fixture()
    def database(self):
        database = AceDatabase("test")
        database.load(parse_ace(ACE_TEXT))
        return database

    def test_class_scan_returns_records(self, database):
        loci = database.scan("Locus")
        assert len(loci) == 1
        record = next(iter(loci))
        assert record.project("name") == "D22S1"

    def test_reference_resolution_through_store(self, database):
        locus = next(iter(database.scan("Locus")))
        contig_ref = locus.project("Contig")
        assert isinstance(contig_ref, Ref)
        contig = contig_ref.deref()
        assert contig.project("Chromosome") == "22"

    def test_unknown_class_and_object(self, database):
        with pytest.raises(ACEError):
            database.scan("NoSuchClass")
        with pytest.raises(ACEError):
            database.get("Locus", "missing")

    def test_size_and_class_names(self, database):
        assert len(database) == 3
        assert database.class_names() == ["Contig", "Locus", "Sequence"]
