"""Tests for native OODB loader-program generation (Section 2, "Object Identity")."""

import pytest

from repro.ace import AceDatabase, dump_ace, execute_oodb_program, generate_oodb_program, parse_ace
from repro.ace.model import AceObject, AceObjectRef
from repro.core.errors import ACEError
from repro.core.values import CSet, Record, Ref


def _sample_objects():
    locus = (AceObject("Locus", "D22S1")
             .add("Map", "22q11.2")
             .add("GenBank", AceObjectRef("Sequence", "M81409")))
    sequence = AceObject("Sequence", "M81409").add("Length", 420).add("Organism", "human")
    return [locus, sequence]


class TestPythonDialect:
    def test_generated_program_round_trips(self):
        program = generate_oodb_program(_sample_objects())
        database = execute_oodb_program(program)
        assert set(database.class_names()) == {"Locus", "Sequence"}
        locus = database.get("Locus", "D22S1")
        assert locus.first("Map") == "22q11.2"
        reference = locus.first("GenBank")
        assert isinstance(reference, AceObjectRef)
        assert (reference.class_name, reference.object_name) == ("Sequence", "M81409")
        assert database.get("Sequence", "M81409").first("Length") == 420

    def test_objects_are_constructed_before_links(self):
        # Forward reference: the first object links to one declared later.
        program = generate_oodb_program(_sample_objects())
        creation = program.index("new_object(db, 'Sequence', 'M81409')")
        linking = program.index("add_reference(locus_d22s1")
        assert creation < linking

    def test_cpl_records_are_accepted(self):
        record = Record({"class": "Locus", "name": "X1", "Map": "22q12",
                         "GenBank": Ref("Sequence", "M81001"),
                         "keywd": CSet(["Exons", "Genes"])})
        database = execute_oodb_program(generate_oodb_program([record]))
        obj = database.get("Locus", "X1")
        assert obj.first("Map") == "22q12"
        assert sorted(obj.values("keywd")) == ["Exons", "Genes"]
        assert isinstance(obj.first("GenBank"), AceObjectRef)

    def test_record_without_identity_is_rejected(self):
        with pytest.raises(ACEError):
            generate_oodb_program([Record({"Map": "22q12"})])

    def test_unknown_dialect_rejected(self):
        with pytest.raises(ACEError):
            generate_oodb_program(_sample_objects(), dialect="smalltalk")

    def test_duplicate_variable_names_are_disambiguated(self):
        # Two objects whose class/name mangle to the same identifier.
        first = AceObject("Locus", "D22-S1").add("Map", "a")
        second = AceObject("Locus", "D22 S1").add("Map", "b")
        program = generate_oodb_program([first, second])
        database = execute_oodb_program(program)
        assert len(database) == 2

    def test_awkward_names_are_mangled_to_identifiers(self):
        obj = AceObject("Sequence", "123-45.6/7").add("Length", 1)
        program = generate_oodb_program([obj])
        database = execute_oodb_program(program)
        assert database.get("Sequence", "123-45.6/7").first("Length") == 1

    def test_program_that_never_creates_a_database_is_an_error(self):
        with pytest.raises(ACEError):
            execute_oodb_program("x = 1")

    def test_loader_matches_ace_bulk_load(self):
        """The two routes the paper describes — .ace bulk load and generated
        native code — must build the same database contents."""
        objects = _sample_objects()
        via_loader = execute_oodb_program(generate_oodb_program(objects))
        via_bulk = AceDatabase("acedb")
        via_bulk.load(parse_ace(dump_ace(objects)))
        assert set(via_loader.class_names()) == set(via_bulk.class_names())
        for class_name in via_loader.class_names():
            loader_names = {obj.name for obj in via_loader.ace_class(class_name)}
            bulk_names = {obj.name for obj in via_bulk.ace_class(class_name)}
            assert loader_names == bulk_names
        assert (via_loader.get("Locus", "D22S1").first("Map")
                == via_bulk.get("Locus", "D22S1").first("Map"))


class TestCxxDialect:
    def test_program_shape(self):
        program = generate_oodb_program(_sample_objects(), dialect="cxx",
                                        database_name="chr22")
        assert program.startswith("// OODB loader program")
        assert 'Database db("chr22");' in program
        assert 'db.new_object("Locus", "D22S1");' in program
        assert 'add_reference("GenBank", db.object("Sequence", "M81409"));' in program
        assert program.rstrip().endswith("}")

    def test_strings_are_escaped(self):
        obj = AceObject("Publication", 'A "quoted" title').add("Note", 'say "hi"')
        program = generate_oodb_program([obj], dialect="cxx")
        assert '\\"quoted\\"' in program and '\\"hi\\"' in program

    def test_numeric_values_are_not_quoted(self):
        program = generate_oodb_program(_sample_objects(), dialect="cxx")
        assert '->add("Length", 420);' in program
