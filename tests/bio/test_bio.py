"""Tests for the synthetic bio data generators and the similarity search."""

import pytest

from repro.bio.gdb import GDB_BANDS, accession_for_locus, build_gdb
from repro.bio.genbank import build_genbank, seq_entry_schema
from repro.bio.publications import PUBLICATION_TYPE, build_publications, perforin_publication
from repro.bio.sequences import SequenceGenerator, gc_content, reverse_complement
from repro.bio.similarity import align_local, kmer_prefilter, similarity_search
from repro.asn1.values import conforms
from repro.core.values import CSet, Variant


class TestSequences:
    def test_generation_is_deterministic_per_seed(self):
        a = SequenceGenerator(7).random_sequence(100)
        b = SequenceGenerator(7).random_sequence(100)
        c = SequenceGenerator(8).random_sequence(100)
        assert a == b
        assert a != c
        assert set(a) <= set("ACGT")

    def test_mutation_keeps_most_of_the_sequence(self):
        generator = SequenceGenerator(1)
        original = generator.random_sequence(400)
        mutated = generator.mutate(original, substitution_rate=0.05, indel_rate=0.0)
        same = sum(1 for a, b in zip(original, mutated) if a == b)
        assert same > 300

    def test_family_members_are_similar_to_ancestor(self):
        generator = SequenceGenerator(2)
        family = generator.family(200, 3)
        assert len(family) == 3
        assert kmer_prefilter(family[0], family[1]) > kmer_prefilter(
            family[0], SequenceGenerator(99).random_sequence(200))

    def test_reverse_complement_and_gc(self):
        assert reverse_complement("ACGT") == "ACGT"
        assert reverse_complement("AACC") == "GGTT"
        assert gc_content("GGCC") == 1.0
        assert gc_content("") == 0.0


class TestSimilarity:
    def test_identical_sequences_align_perfectly(self):
        result = align_local("ACGTACGTAC", "ACGTACGTAC")
        assert result.score == 20
        assert result.identity == 1.0

    def test_unrelated_sequences_score_low(self):
        a = "A" * 30
        b = "C" * 30
        assert align_local(a, b).score == 0

    def test_local_alignment_finds_embedded_match(self):
        core = "ACGTACGTGGCCTTAACGT"
        subject = "TTTTTTT" + core + "GGGGGGG"
        result = align_local(core, subject)
        assert result.score >= len(core) * 2 - 4
        assert result.identity > 0.9

    def test_similarity_search_ranks_homologues_first(self):
        generator = SequenceGenerator(3)
        query = generator.random_sequence(200)
        homolog = generator.mutate(query, substitution_rate=0.08)
        unrelated = SequenceGenerator(4).random_sequence(200)
        hits = similarity_search(query, {"homolog": homolog, "unrelated": unrelated},
                                 min_score=20)
        assert hits and hits[0].subject_id == "homolog"

    def test_prefilter_skips_unrelated_subjects(self):
        query = SequenceGenerator(5).random_sequence(150)
        unrelated = SequenceGenerator(6).random_sequence(150)
        hits = similarity_search(query, {"u": unrelated}, min_kmer_hits=5)
        assert hits == []

    def test_max_hits_limits_results(self):
        generator = SequenceGenerator(7)
        query = generator.random_sequence(150)
        library = {f"h{i}": generator.mutate(query) for i in range(5)}
        assert len(similarity_search(query, library, min_score=10, max_hits=2)) == 2


class TestGdbBuilder:
    def test_tables_and_indexes_exist(self):
        gdb = build_gdb(locus_count=100)
        assert set(gdb.table_names()) == {"locus", "object_genbank_eref", "locus_cyto_location"}
        assert gdb.table("locus").has_index("locus_id")
        assert gdb.table("locus").statistics.row_count == 100

    def test_chromosome22_fraction_is_respected(self):
        gdb = build_gdb(locus_count=400, chromosome22_fraction=0.5)
        rows = gdb.sql("select locus_id from locus where chromosome = '22'")
        assert 120 <= len(rows) <= 280

    def test_chr22_loci_have_genbank_references_and_bands(self):
        gdb = build_gdb(locus_count=100)
        rows = gdb.sql(
            "select locus.locus_id, loc_cyto_band_start from locus, locus_cyto_location,"
            " object_genbank_eref"
            " where locus.locus_id = locus_cyto_location.locus_cyto_location_id"
            " and locus.locus_id = object_genbank_eref.object_id"
            " and chromosome = '22'")
        chr22 = gdb.sql("select locus_id from locus where chromosome = '22'")
        assert len(rows) == len(chr22)
        assert all(row["loc_cyto_band_start"] in GDB_BANDS for row in rows)

    def test_accession_mapping_is_stable(self):
        assert accession_for_locus(5) == "M81005"


class TestGenBankBuilder:
    @pytest.fixture(scope="class")
    def genbank(self):
        return build_genbank([1, 2, 3], homologues_per_entry=2, sequence_length=150)

    def test_entries_conform_to_schema(self, genbank):
        entry_type = seq_entry_schema().cpl_type("Seq-entry")
        division = genbank.division("na")
        for uid in list(division.entries)[:5]:
            assert conforms(division.fetch(uid), entry_type)

    def test_human_entries_indexed_by_accession_and_chromosome(self, genbank):
        assert len(genbank.query_uids("na", "chromosome 22")) == 3
        assert len(genbank.query_uids("na", "accession M81002")) == 1

    def test_homologues_exist_for_other_organisms(self, genbank):
        division = genbank.division("na")
        assert len(division) == 3 * (1 + 2)

    def test_links_point_to_non_human_homologues(self, genbank):
        division = genbank.division("na")
        uid = genbank.query_uids("na", "accession M81001")[0]
        links = division.neighbours(uid)
        assert links, "every human entry should have at least one precomputed link"
        assert all(link["organism"] != "Homo sapiens" for link in links)
        assert all(link["score"] > 0 for link in links)


class TestPublications:
    def test_first_record_is_the_paper_example(self):
        publications = build_publications(10)
        assert perforin_publication() in publications

    def test_records_conform_to_publication_type(self):
        publications = build_publications(30)
        assert conforms(publications, PUBLICATION_TYPE)

    def test_journal_variants_use_both_tags(self):
        publications = build_publications(100)
        tags = {record.project("journal").tag for record in publications}
        assert tags == {"controlled", "uncontrolled"}

    def test_generation_is_deterministic(self):
        assert build_publications(20) == build_publications(20)


class TestChromosome22Dataset:
    def test_sources_are_consistent(self, chr22_dataset):
        locus_ids = chr22_dataset.chromosome22_locus_ids()
        assert locus_ids, "there must be chromosome-22 loci with GenBank references"
        # Every such locus has a GenBank entry under its accession.
        division = chr22_dataset.genbank.division("na")
        for locus_id in locus_ids[:10]:
            accession = accession_for_locus(locus_id)
            assert chr22_dataset.genbank.query_uids("na", f"accession {accession}")

    def test_ace_database_references_gdb_loci(self, chr22_dataset):
        loci = chr22_dataset.acedb.scan("Locus")
        symbols = {record.project("name") for record in loci}
        rows = chr22_dataset.gdb.sql("select locus_symbol from locus where chromosome = '22'")
        assert symbols == {row["locus_symbol"] for row in rows}

    def test_fasta_library_covers_all_genbank_entries(self, chr22_dataset):
        assert len(chr22_dataset.fasta_library) == len(chr22_dataset.genbank.division("na"))
