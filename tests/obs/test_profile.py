"""EXPLAIN ANALYZE building blocks: collector, tee, folds, render, slow log."""

import pytest

from repro.obs.profile import (
    ProbeTee,
    QueryProfile,
    SlowQueryLog,
    StageCollector,
    aggregate_driver_spans,
)


class RecordingProbe:
    def __init__(self) -> None:
        self.chunks = []
        self.completed = None

    def note_chunk(self, stage, rows, seconds):
        self.chunks.append((stage, rows, seconds))

    def complete(self, cardinality=None):
        self.completed = cardinality


class TestStageCollector:
    def test_accumulates_per_stage_and_cardinality(self):
        collector = StageCollector()
        collector.note_chunk("pipeline", 10, 0.5)
        collector.note_chunk("pipeline", 5, 0.25)
        collector.note_chunk("scan:GDB", 15, 1.0)
        collector.complete(15.0)
        assert collector.stages() == {
            "pipeline": {"rows": 15, "seconds": 0.75, "chunks": 2},
            "scan:GDB": {"rows": 15, "seconds": 1.0, "chunks": 1},
        }
        assert collector.cardinality == 15.0


class TestProbeTee:
    def test_inner_probe_sees_the_identical_call_stream(self):
        inner, sink = RecordingProbe(), StageCollector()
        tee = ProbeTee(inner, sink)
        tee.note_chunk("pipeline", 8, 0.125)
        tee.complete(8.0)
        assert inner.chunks == [("pipeline", 8, 0.125)]
        assert inner.completed == 8.0
        assert sink.cardinality == 8.0

    def test_none_inner_is_tolerated(self):
        sink = StageCollector()
        tee = ProbeTee(None, sink)
        tee.note_chunk("pipeline", 3, 0.0)
        tee.complete()
        assert sink.stages()["pipeline"]["rows"] == 3


class TestDriverSpanFold:
    def test_driver_and_batch_spans_fold_per_driver(self):
        trace_dict = {
            "trace": {
                "name": "query", "kind": "query", "duration": 5.0,
                "children": [
                    {"name": "scope", "kind": "scope", "duration": 4.0,
                     "children": [
                         {"name": "GDB", "kind": "driver", "duration": 1.0},
                         {"name": "GDB", "kind": "driver", "duration": 2.0},
                         {"name": "Entrez", "kind": "driver-batch",
                          "duration": 0.5},
                         {"name": "retry", "kind": "event", "duration": 0.0},
                     ]},
                ],
            }
        }
        assert aggregate_driver_spans(trace_dict) == {
            "GDB": {"requests": 2, "seconds": 3.0},
            "Entrez": {"requests": 1, "seconds": 0.5},
        }

    def test_empty_or_malformed_trace_folds_to_nothing(self):
        assert aggregate_driver_spans({}) == {}
        assert aggregate_driver_spans({"trace": None}) == {}


class TestQueryProfile:
    def _profile(self, **overrides):
        kwargs = dict(
            mode="compiled",
            plan={"source": "statistics", "join_block_size": 256,
                  "estimated_rows": 50.0},
            estimated_rows=40.0,
            actual_rows=50.0,
            elapsed=0.125,
            stages={"pipeline": {"rows": 50, "seconds": 0.1, "chunks": 4}},
            drivers={"GDB": {"requests": 2, "seconds": 0.05}},
            statistics={"retries": 2, "recovered_faults": 0, "warnings": []},
            books={"spills": 1, "bytes_spilled": 4096},
        )
        kwargs.update(overrides)
        return QueryProfile(**kwargs)

    def test_cardinality_error_is_signed_relative(self):
        assert self._profile().cardinality_error() == pytest.approx(0.25)
        assert self._profile(actual_rows=None).cardinality_error() is None
        assert self._profile(estimated_rows=0.0).cardinality_error() is None

    def test_annotations_list_only_nonzero_deviations(self):
        notes = self._profile().annotations()
        assert "retries=2" in notes
        assert "spills=1" in notes
        assert "bytes_spilled=4096" in notes
        assert not any(n.startswith("recovered_faults") for n in notes)
        assert not any(n.startswith("warnings") for n in notes)

    def test_render_is_an_annotated_tree(self):
        text = self._profile().render()
        lines = text.splitlines()
        assert lines[0].startswith("EXPLAIN ANALYZE (compiled)")
        assert "status=ok" in lines[0]
        assert any("rows: actual=50 estimated=40 (error +25.0%)" in l
                   for l in lines)
        assert any("stage pipeline: 50 rows / 4 chunks" in l for l in lines)
        assert any("driver GDB: 2 requests" in l for l in lines)
        assert lines[-1].startswith("└─ annotations:")
        assert all(l.startswith(("├─ ", "└─ ")) for l in lines[1:])

    def test_render_tolerates_a_minimal_profile(self):
        text = QueryProfile("interpreted").render()
        assert "rows: actual=? estimated=?" in text
        assert "annotations: none" in text

    def test_as_dict_is_wire_safe_plain_data(self):
        payload = self._profile().as_dict()
        assert payload["mode"] == "compiled"
        assert payload["cardinality_error"] == pytest.approx(0.25)
        assert payload["annotations"] == self._profile().annotations()


class TestSlowQueryLog:
    def test_only_profiles_over_the_threshold_are_kept(self):
        log = SlowQueryLog(threshold=0.5, keep=8)
        assert log.record(QueryProfile("compiled", elapsed=0.4)) is False
        assert log.record(QueryProfile("compiled", elapsed=0.6)) is True
        assert log.record(QueryProfile("compiled", elapsed=None)) is False
        snap = log.snapshot()
        assert snap == {"threshold": 0.5, "considered": 3, "logged": 1,
                        "kept": 1}
        assert len(log.entries()) == 1

    def test_ring_is_bounded_and_entries_limit_takes_the_newest(self):
        log = SlowQueryLog(threshold=0.0, keep=2)
        for elapsed in (1.0, 2.0, 3.0):
            log.record(QueryProfile("compiled", elapsed=elapsed))
        entries = log.entries()
        assert [e["elapsed"] for e in entries] == [2.0, 3.0]
        assert [e["elapsed"] for e in log.entries(limit=1)] == [3.0]
