"""The metrics registry, one behaviour at a time.

Counters/gauges/histograms (thread-safe, typed), the fixed-exponential
bucket ladder builder, Prometheus-style text exposition, and the sampled
row-width estimator whose zero-sample behaviour reproduces the
``NOMINAL_ROW_BYTES`` constant bit-for-bit (the PR 9 budget gate's
differential pin).
"""

import threading

import pytest

from repro.kleisli.governance import NOMINAL_ROW_BYTES
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    RowWidthEstimator,
    exponential_buckets,
)


class TestBucketLadder:
    def test_ladder_is_start_times_powers_of_growth(self):
        assert exponential_buckets(1.0, 2.0, 4) == (1.0, 2.0, 4.0, 8.0)

    def test_invalid_parameters_raise(self):
        with pytest.raises(ValueError):
            exponential_buckets(0.0, 2.0, 4)
        with pytest.raises(ValueError):
            exponential_buckets(1.0, 1.0, 4)
        with pytest.raises(ValueError):
            exponential_buckets(1.0, 2.0, 0)


class TestCounterAndGauge:
    def test_counter_accumulates_and_rejects_negative(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_sets_and_adds(self):
        gauge = Gauge("g")
        gauge.set(10)
        gauge.add(-3)
        assert gauge.value == 7

    def test_counter_is_thread_safe(self):
        counter = Counter("c")

        def work():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 8000


class TestHistogram:
    def test_observations_land_in_le_buckets(self):
        h = Histogram("h", (1.0, 2.0, 4.0))
        for value in (0.5, 1.0, 1.5, 3.0, 100.0):
            h.observe(value)
        snap = h.snapshot()
        # le semantics: 0.5 and 1.0 <= 1.0; 1.5 <= 2.0; 3.0 <= 4.0; 100 overflows
        assert snap["counts"] == [2, 1, 1, 1]
        assert snap["count"] == 5
        assert snap["sum"] == pytest.approx(106.0)

    def test_merge_requires_identical_bounds(self):
        a = Histogram("h", (1.0, 2.0))
        b = Histogram("h", (1.0, 2.0))
        c = Histogram("h", (1.0, 3.0))
        a.observe(0.5)
        b.observe(5.0)
        a.merge(b)
        assert a.count == 2
        with pytest.raises(ValueError):
            a.merge(c)


class TestRegistry:
    def test_get_or_create_is_idempotent_and_kind_checked(self):
        registry = MetricsRegistry()
        counter = registry.counter("requests", "help")
        assert registry.counter("requests") is counter
        with pytest.raises(ValueError):
            registry.gauge("requests")
        with pytest.raises(ValueError):
            registry.histogram("requests", (1.0,))

    def test_histogram_bounds_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.histogram("lat", (1.0, 2.0))
        with pytest.raises(ValueError):
            registry.histogram("lat", (1.0, 3.0))

    def test_render_is_prometheus_text(self):
        registry = MetricsRegistry()
        registry.counter("reqs_total", "Requests").inc(3)
        registry.histogram("lat_seconds", (0.1, 1.0), "Latency").observe(0.05)
        text = registry.render()
        assert "# TYPE reqs_total counter" in text
        assert "reqs_total 3" in text
        # cumulative le buckets, +Inf, _sum/_count
        assert 'lat_seconds_bucket{le="0.1"} 1' in text
        assert 'lat_seconds_bucket{le="1"} 1' in text
        assert 'lat_seconds_bucket{le="+Inf"} 1' in text
        assert "lat_seconds_count 1" in text
        assert text.endswith("\n")

    def test_snapshot_lists_every_metric(self):
        registry = MetricsRegistry()
        registry.counter("a")
        registry.gauge("b")
        registry.histogram("c", (1.0,))
        snap = registry.snapshot()
        assert set(snap) == {"a", "b", "c"}
        assert snap["c"]["kind"] == "histogram"


class TestRowWidthEstimator:
    def test_zero_samples_reproduce_the_constant_bit_for_bit(self):
        estimator = RowWidthEstimator(NOMINAL_ROW_BYTES)
        # Identity, not approximate equality: the PR 9 spill gate multiplies
        # by this value, so the zero-sample engine must plan bit-identically.
        assert estimator.row_bytes() == NOMINAL_ROW_BYTES

    def test_samples_move_the_width(self):
        estimator = RowWidthEstimator(NOMINAL_ROW_BYTES)
        estimator.observe(nbytes=1000, rows=10)
        assert estimator.row_bytes() == pytest.approx(100.0)
        estimator.observe(nbytes=1000, rows=10)
        assert estimator.row_bytes() == pytest.approx(100.0)

    def test_degenerate_samples_are_ignored(self):
        estimator = RowWidthEstimator(NOMINAL_ROW_BYTES)
        estimator.observe(nbytes=100, rows=0)
        estimator.observe(nbytes=-5, rows=3)
        assert estimator.row_bytes() == NOMINAL_ROW_BYTES

    def test_width_never_collapses_below_one_byte(self):
        estimator = RowWidthEstimator(NOMINAL_ROW_BYTES)
        estimator.observe(nbytes=1, rows=1000)
        assert estimator.row_bytes() == 1.0
