"""Query traces: nesting, fault-path closure, span budget, the tracer ring."""

import pytest

from repro.obs.trace import DEFAULT_MAX_SPANS, QueryTrace, Span, Tracer


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def tick(self, dt: float = 1.0) -> None:
        self.now += dt


class TestSpanLifecycle:
    def test_nested_spans_build_a_tree_with_clock_durations(self):
        clock = FakeClock()
        trace = QueryTrace("q", clock=clock)
        outer = trace.begin("outer", "scope")
        clock.tick()
        inner = trace.begin("inner", "driver")
        clock.tick()
        trace.end(inner)
        trace.end(outer)
        assert trace.root.children == [outer]
        assert outer.children == [inner]
        assert inner.duration == pytest.approx(1.0)
        assert outer.duration == pytest.approx(2.0)
        assert trace.open_spans() == 0

    def test_span_contextmanager_marks_errors_and_reraises(self):
        trace = QueryTrace("q", clock=FakeClock())
        with pytest.raises(RuntimeError):
            with trace.span("work", "scope"):
                raise RuntimeError("boom")
        span = trace.root.children[0]
        assert span.status == "error"
        assert span.attributes["error"] == "RuntimeError"
        assert span.ended is not None
        assert trace.open_spans() == 0

    def test_fault_unwinding_closes_skipped_inner_spans_as_errored(self):
        trace = QueryTrace("q", clock=FakeClock())
        outer = trace.begin("outer")
        inner = trace.begin("inner")
        # A fault path ends the OUTER span while inner is still open.
        trace.end(outer, status="error")
        assert inner.ended is not None and inner.status == "error"
        assert trace.open_spans() == 0

    def test_event_is_a_closed_zero_duration_span(self):
        trace = QueryTrace("q", clock=FakeClock())
        trace.event("retry", driver="GDB", attempt=2)
        span = trace.root.children[0]
        assert span.duration == 0.0
        assert span.attributes == {"driver": "GDB", "attempt": 2}
        assert trace.open_spans() == 0

    def test_finish_is_idempotent_and_closes_the_root(self):
        clock = FakeClock()
        trace = QueryTrace("q", clock=clock)
        clock.tick(3.0)
        trace.finish()
        first_end = trace.root.ended
        clock.tick(5.0)
        trace.finish()
        assert trace.root.ended == first_end
        assert trace.duration == pytest.approx(3.0)


class TestSpanBudget:
    def test_begin_past_the_budget_hands_out_dropped_spans(self):
        trace = QueryTrace("q", clock=FakeClock(), max_spans=3)
        real = [trace.begin(f"s{i}") for i in range(2)]  # root + 2 == budget
        for span in real:
            trace.end(span)
        extras = [trace.begin(f"x{i}") for i in range(5)]
        # distinct objects: identity stays unambiguous on fault unwinds
        assert len({id(s) for s in extras}) == 5
        for span in reversed(extras):
            trace.end(span)
        assert trace.span_count() == 3
        assert trace.dropped == 5
        assert trace.open_spans() == 0
        # dropped spans never enter the tree and ignore annotations
        assert all(s not in trace.root.children for s in extras)
        assert extras[0].annotate(huge="attr").attributes == {}

    def test_fault_unwind_through_stacked_dropped_spans_balances(self):
        trace = QueryTrace("q", clock=FakeClock(), max_spans=1)
        outer = trace.begin("outer")   # dropped: budget is just the root
        trace.begin("inner")           # dropped too, left open
        trace.end(outer, status="error")
        assert trace.open_spans() == 0

    def test_default_budget_is_bounded(self):
        assert QueryTrace("q").max_spans == DEFAULT_MAX_SPANS

    def test_begin_after_finish_is_dropped(self):
        trace = QueryTrace("q", clock=FakeClock())
        trace.finish()
        span = trace.begin("late")
        trace.end(span)
        assert trace.span_count() == 1
        assert trace.dropped == 1


class TestAsDict:
    def test_as_dict_is_recursive_plain_data(self):
        clock = FakeClock()
        trace = QueryTrace("q", clock=clock)
        with trace.span("driver-call", "driver", driver="GDB"):
            clock.tick()
        trace.finish()
        payload = trace.as_dict()
        assert payload["span_count"] == 2
        assert payload["finished"] is True
        root = payload["trace"]
        assert root["name"] == "q" and root["kind"] == "query"
        child = root["children"][0]
        assert child["kind"] == "driver"
        assert child["duration"] == pytest.approx(1.0)
        assert child["attributes"] == {"driver": "GDB"}


class TestTracer:
    def test_finished_traces_land_in_the_ring(self):
        tracer = Tracer(clock=FakeClock(), keep=2)
        for i in range(3):
            trace = tracer.start(f"q{i}")
            trace.finish()
        snap = tracer.snapshot()
        assert snap["started"] == 3 and snap["finished"] == 3
        recent = tracer.recent()
        assert [t["trace"]["name"] for t in recent] == ["q1", "q2"]
        assert tracer.recent(limit=1)[0]["trace"]["name"] == "q2"

    def test_dropped_spans_aggregate_across_traces(self):
        tracer = Tracer(clock=FakeClock(), max_spans=2)
        trace = tracer.start("q")
        for _ in range(4):
            trace.end(trace.begin("s"))
        trace.finish()
        assert tracer.snapshot()["spans_dropped"] == 3
